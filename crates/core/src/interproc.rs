//! Interprocedural side-effect analysis (Section IV-C of the paper).
//!
//! For every function the analysis summarizes how it accesses data visible
//! to its callers: data reached through pointer parameters and global
//! variables, split by whether the access happens on the host or inside an
//! offloaded region. Summaries are propagated through call sites with a
//! fixed-point iteration bounded by the maximum call depth (with early
//! termination once a pass makes no changes), and call sites are then
//! augmented with *maximally pessimistic* assumptions for callees whose
//! definitions are not visible (external translation units), exactly as the
//! paper prescribes: `const` pointer parameters are assumed read-only, other
//! pointers read-write.

use crate::access::{Access, AccessKind, AccessOrigin, CallSite, FunctionAccesses, SymbolTable};
use ompdart_frontend::ast::{FunctionDef, TranslationUnit};
use ompdart_frontend::Symbol;
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// The effect of a function on one externally visible datum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Effect {
    pub host_read: bool,
    pub host_write: bool,
    pub device_read: bool,
    pub device_write: bool,
}

impl Effect {
    /// True if no access was recorded.
    pub fn is_empty(&self) -> bool {
        !(self.host_read || self.host_write || self.device_read || self.device_write)
    }

    /// Merge another effect into this one; returns true if anything changed.
    pub fn merge(&mut self, other: Effect) -> bool {
        let before = *self;
        self.host_read |= other.host_read;
        self.host_write |= other.host_write;
        self.device_read |= other.device_read;
        self.device_write |= other.device_write;
        *self != before
    }

    /// Record a single access.
    pub fn record(&mut self, kind: AccessKind, on_device: bool) -> bool {
        let mut add = Effect::default();
        if kind.may_read() {
            if on_device {
                add.device_read = true;
            } else {
                add.host_read = true;
            }
        }
        if kind.may_write() {
            if on_device {
                add.device_write = true;
            } else {
                add.host_write = true;
            }
        }
        self.merge(add)
    }

    /// Convert to the access kinds this effect implies, as (host, device).
    pub fn as_access_kinds(&self) -> (Option<AccessKind>, Option<AccessKind>) {
        let combine = |read: bool, write: bool| match (read, write) {
            (false, false) => None,
            (true, false) => Some(AccessKind::Read),
            (false, true) => Some(AccessKind::Write),
            (true, true) => Some(AccessKind::ReadWrite),
        };
        (
            combine(self.host_read, self.host_write),
            combine(self.device_read, self.device_write),
        )
    }

    /// The maximally pessimistic effect (read + write on the host).
    pub fn pessimistic_host() -> Effect {
        Effect {
            host_read: true,
            host_write: true,
            ..Default::default()
        }
    }

    /// A host read-only effect (used for `const` pointer parameters).
    pub fn read_only_host() -> Effect {
        Effect {
            host_read: true,
            ..Default::default()
        }
    }
}

/// Summary of one function's externally visible effects.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FunctionSummary {
    pub name: Symbol,
    /// Effect on the data reached through each pointer/array parameter,
    /// indexed by parameter position.
    pub param_effects: Vec<Effect>,
    /// Effect on each global variable. A `BTreeMap` so every iteration over
    /// the summary — fingerprinting, call-site propagation, augmentation —
    /// is deterministic regardless of insertion order or thread scheduling.
    pub global_effects: BTreeMap<Symbol, Effect>,
    /// True if the function (transitively) launches offload kernels.
    pub has_kernels: bool,
}

/// Summaries for every function definition in the translation unit.
#[derive(Clone, Debug, Default)]
pub struct ProgramSummaries {
    functions: HashMap<Symbol, FunctionSummary>,
    /// Optional fall-through layer for [`Self::summary`] lookups: an
    /// [`Self::overlay`] view holds only its own (shadowing) entries and
    /// resolves everything else here, so building a per-unit view over a
    /// whole-program summary set costs the few shadowed entries instead of
    /// cloning every function's summary. Overlays are *lookup-only* views:
    /// `iter`/`len`/`is_empty`/`same_summaries` see just the own layer.
    base: Option<Arc<ProgramSummaries>>,
    /// Number of propagation passes performed before reaching a fixed point.
    pub passes: usize,
}

/// Functions from the C standard library (and the OpenMP runtime) that are
/// known not to modify caller-visible data through their pointer arguments
/// beyond their documented behaviour.
const PURE_BUILTINS: &[&str] = &[
    "exp",
    "expf",
    "exp2",
    "log",
    "logf",
    "log2",
    "log10",
    "sqrt",
    "sqrtf",
    "cbrt",
    "fabs",
    "fabsf",
    "abs",
    "labs",
    "pow",
    "powf",
    "sin",
    "sinf",
    "cos",
    "cosf",
    "tan",
    "floor",
    "ceil",
    "fmax",
    "fmin",
    "fmod",
    "rand",
    "srand",
    "omp_get_wtime",
    "omp_get_num_threads",
    "omp_get_max_threads",
    "omp_get_thread_num",
    "omp_get_num_devices",
    "printf",
    "fprintf",
    "assert",
    "exit",
];

/// The *local* (direct-effect) summary of one function: what its own
/// expressions do to parameters and globals, before any call-site
/// propagation. This is the per-function seed of the interprocedural fixed
/// point — and the unit the function-granular summary cache stores, because
/// it depends only on the function's own text and the unit environment.
pub fn seed_summary(
    func: &FunctionDef,
    acc: &FunctionAccesses,
    sym: &SymbolTable,
) -> FunctionSummary {
    let mut summary = FunctionSummary {
        name: func.name,
        param_effects: vec![Effect::default(); func.params.len()],
        global_effects: BTreeMap::new(),
        has_kernels: acc.accesses.iter().any(|a| a.on_device)
            || acc.calls.iter().any(|c| c.on_device),
    };
    for access in &acc.accesses {
        if let Some(idx) = param_index(func, access.var) {
            if sym.is_aggregate(access.var) {
                summary.param_effects[idx].record(access.kind, access.on_device);
            }
        } else if sym.is_global(access.var) {
            summary
                .global_effects
                .entry(access.var)
                .or_default()
                .record(access.kind, access.on_device);
        }
    }
    summary
}

/// Everything the call-site propagation reads from one function, decoupled
/// from the owning [`TranslationUnit`] so the link stage can run the fixed
/// point over functions from *several* units (with unit-private `static`
/// names already resolved in `calls`).
#[derive(Clone, Debug)]
pub struct PropagationNode<'a> {
    /// The function's name under which its seed (and converged summary) is
    /// keyed — for cross-unit `static` functions this is the mangled
    /// unit-private symbol, not the source-level name.
    pub name: Symbol,
    /// Parameter names, in declaration order. Borrowed when the caller
    /// memoized the resolved list (the link stage does, per unit content),
    /// owned when built fresh.
    pub params: Cow<'a, [Symbol]>,
    /// The function's symbol table (aggregate/global classification of
    /// call-argument base variables).
    pub sym: &'a SymbolTable,
    /// The function's call sites, callee names fully resolved.
    pub calls: Cow<'a, [CallSite]>,
}

impl<'a> PropagationNode<'a> {
    /// Build the node for one function from its per-unit artifacts,
    /// resolving callee names through `resolve` (identity for a single
    /// unit; the link stage maps unit-private statics to mangled names).
    pub fn build(
        name: Symbol,
        func: &FunctionDef,
        acc: &FunctionAccesses,
        sym: &'a SymbolTable,
        resolve: impl Fn(Symbol) -> Symbol,
    ) -> PropagationNode<'a> {
        let mut calls = acc.calls.clone();
        for call in &mut calls {
            call.callee = resolve(call.callee);
        }
        PropagationNode {
            name,
            params: Cow::Owned(func.params.iter().map(|p| p.name).collect()),
            sym,
            calls: Cow::Owned(calls),
        }
    }
}

impl ProgramSummaries {
    /// Compute summaries by fixed-point iteration over the call graph.
    pub fn compute(
        unit: &TranslationUnit,
        accesses: &HashMap<Symbol, FunctionAccesses>,
        symbols: &HashMap<Symbol, SymbolTable>,
        max_passes: usize,
    ) -> ProgramSummaries {
        let mut seeds = HashMap::new();
        let mut nodes = Vec::new();
        for func in unit.functions() {
            let Some(acc) = accesses.get(&func.name) else {
                continue;
            };
            let Some(sym) = symbols.get(&func.name) else {
                continue;
            };
            seeds.insert(func.name, seed_summary(func, acc, sym));
            nodes.push(PropagationNode::build(func.name, func, acc, sym, |c| c));
        }
        ProgramSummaries::propagate(&nodes, &seeds, max_passes)
    }

    /// Run the call-site propagation to a fixed point over pre-computed
    /// per-function seeds — extracted from [`Self::compute`] so the
    /// per-function seeds can come from a cache and so the link stage can
    /// feed it nodes spanning several translation units.
    pub fn propagate(
        nodes: &[PropagationNode<'_>],
        seeds: &HashMap<Symbol, FunctionSummary>,
        max_passes: usize,
    ) -> ProgramSummaries {
        ProgramSummaries::propagate_opts(nodes, seeds, max_passes, false)
    }

    /// [`Self::propagate`] with the opt-in pessimistic-globals mode: when
    /// `clobber_globals` is set, a call to a function with no summary (and
    /// not a pure builtin) merges a pessimistic host read+write of every
    /// visible global into the *caller's* summary, so the clobber is
    /// transitive — callers of a function that calls an unknown extern see
    /// the globals clobbered too, not just the direct call site.
    pub fn propagate_opts(
        nodes: &[PropagationNode<'_>],
        seeds: &HashMap<Symbol, FunctionSummary>,
        max_passes: usize,
        clobber_globals: bool,
    ) -> ProgramSummaries {
        ProgramSummaries::propagate_parallel(nodes, seeds, max_passes, clobber_globals, 1)
    }

    /// The SCC-wavefront fixed point with up to `threads` workers.
    ///
    /// The call graph is condensed into strongly connected components
    /// ([`crate::scc::condense`]); components within one wavefront share no
    /// edges and converge in parallel, and only genuinely recursive
    /// components iterate internally (an acyclic component converges in a
    /// single visit once its callees are final, because its summary is a
    /// fixed union of already-converged values). Effects form a finite
    /// monotone lattice, so the least fixed point is unique: the result is
    /// bitwise identical for every `threads` value and identical to
    /// [`Self::propagate_sequential`] whenever the sequential sweep is
    /// given enough passes to converge.
    ///
    /// `max_passes` bounds only the *inner* iteration of recursive
    /// components (bounded by the component's size in practice); acyclic
    /// components never consume more than one pass regardless, which is
    /// what makes thousand-deep cross-unit call chains converge in one
    /// wavefront sweep instead of a thousand whole-program passes.
    pub fn propagate_parallel(
        nodes: &[PropagationNode<'_>],
        seeds: &HashMap<Symbol, FunctionSummary>,
        max_passes: usize,
        clobber_globals: bool,
        threads: usize,
    ) -> ProgramSummaries {
        ProgramSummaries::propagate_parallel_owned(
            nodes,
            seeds.clone(),
            max_passes,
            clobber_globals,
            threads,
        )
    }

    /// [`Self::propagate_parallel`] taking ownership of the seed map — the
    /// converged result is built in place, so a caller that constructs
    /// seeds per link (as [`crate::Program::relink`] does) avoids cloning
    /// every summary a second time.
    pub fn propagate_parallel_owned(
        nodes: &[PropagationNode<'_>],
        seeds: HashMap<Symbol, FunctionSummary>,
        max_passes: usize,
        clobber_globals: bool,
        threads: usize,
    ) -> ProgramSummaries {
        let mut result = ProgramSummaries {
            functions: seeds,
            base: None,
            passes: 0,
        };
        result.run_wavefronts(nodes, max_passes, None, clobber_globals, threads);
        result
    }

    /// The pre-condensation engine: a whole-program `while changed` sweep,
    /// kept as the executable reference the SCC-wavefront engine is pinned
    /// against (parity tests, the `link_scale` bench). Unlike
    /// [`Self::propagate_parallel`], convergence on a call chain of depth
    /// `d` needs `max_passes >= d` here.
    pub fn propagate_sequential(
        nodes: &[PropagationNode<'_>],
        seeds: &HashMap<Symbol, FunctionSummary>,
        max_passes: usize,
        clobber_globals: bool,
    ) -> ProgramSummaries {
        let mut result = ProgramSummaries {
            functions: seeds.clone(),
            base: None,
            passes: 0,
        };
        result.run_passes(nodes, max_passes, None, clobber_globals);
        result
    }

    /// Incremental propagation: start from a *previously converged* summary
    /// set, re-seed only the functions in `dirty` (plus their transitive
    /// callers — the reverse call-graph cone, the only summaries that can
    /// depend on a dirty function), and iterate the cone to convergence
    /// against the stable out-of-cone values. Returns the summaries and the
    /// cone — exactly the functions whose summaries were re-derived from
    /// their seeds.
    ///
    /// Because the out-of-cone summaries depend only on out-of-cone seeds
    /// (no transitive call reaches a dirty function), they are already at
    /// the least fixed point and the result is identical to a cold
    /// [`Self::propagate`] over all nodes.
    pub fn propagate_incremental(
        nodes: &[PropagationNode<'_>],
        seeds: &HashMap<Symbol, FunctionSummary>,
        previous: &ProgramSummaries,
        dirty: &BTreeSet<Symbol>,
        max_passes: usize,
        clobber_globals: bool,
    ) -> (ProgramSummaries, BTreeSet<Symbol>) {
        ProgramSummaries::propagate_incremental_parallel(
            nodes,
            seeds,
            previous,
            dirty,
            max_passes,
            clobber_globals,
            1,
        )
    }

    /// [`Self::propagate_incremental`] with up to `threads` workers for the
    /// cone's wavefront sweep. The dirty cone is closed under "calls into
    /// the cone", and every strongly connected component is a set of mutual
    /// transitive callers — so the cone always covers whole components and
    /// the wavefront engine re-converges exactly the cone, reading stable
    /// out-of-cone summaries.
    #[allow(clippy::too_many_arguments)]
    pub fn propagate_incremental_parallel(
        nodes: &[PropagationNode<'_>],
        seeds: &HashMap<Symbol, FunctionSummary>,
        previous: &ProgramSummaries,
        dirty: &BTreeSet<Symbol>,
        max_passes: usize,
        clobber_globals: bool,
        threads: usize,
    ) -> (ProgramSummaries, BTreeSet<Symbol>) {
        // Reverse call-graph closure of the dirty set: summaries flow from
        // callee to caller, so only transitive callers of a dirty function
        // can observe the change. Removed functions stay in `dirty` (their
        // callers still name them in call sites of the new graph). A
        // worklist over a reverse-adjacency index keeps this O(V + E) —
        // a fixed-point sweep here would cost O(cone-depth * E) and make a
        // mid-chain edit *slower* than a cold link on deep call chains.
        let index: HashMap<Symbol, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| (node.name, i as u32))
            .collect();
        let mut callers: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            for call in node.calls.iter() {
                if let Some(&callee) = index.get(&call.callee) {
                    callers[callee as usize].push(i as u32);
                }
            }
        }
        let mut in_cone = vec![false; nodes.len()];
        let mut worklist: Vec<u32> = Vec::new();
        for name in dirty {
            if let Some(&i) = index.get(name) {
                if !in_cone[i as usize] {
                    in_cone[i as usize] = true;
                    worklist.push(i);
                }
            }
        }
        while let Some(i) = worklist.pop() {
            for &caller in &callers[i as usize] {
                if !in_cone[caller as usize] {
                    in_cone[caller as usize] = true;
                    worklist.push(caller);
                }
            }
        }
        let mut cone: BTreeSet<Symbol> = dirty.clone();
        for (i, node) in nodes.iter().enumerate() {
            if in_cone[i] {
                cone.insert(node.name);
            }
        }

        // Start from the previous fixed point; reset the cone to its fresh
        // seeds (a shrunk seed must not keep stale effects alive).
        let mut functions = previous.functions.clone();
        for name in &cone {
            match seeds.get(name) {
                Some(seed) => {
                    functions.insert(*name, seed.clone());
                }
                None => {
                    functions.remove(name);
                }
            }
        }
        // Functions that exist now but not before (and are not dirty by
        // value) still need their converged entry.
        for (name, seed) in seeds {
            functions.entry(*name).or_insert_with(|| seed.clone());
        }
        // Drop entries for functions that no longer exist.
        functions.retain(|name, _| seeds.contains_key(name));

        let mut result = ProgramSummaries {
            functions,
            base: None,
            passes: 0,
        };
        if !cone.is_empty() {
            result.run_wavefronts(nodes, max_passes, Some(&cone), clobber_globals, threads);
        }
        (result, cone)
    }

    /// The SCC-wavefront engine shared by the cold and incremental fixed
    /// points. With `only` set, updates are restricted to that set of
    /// functions (reads still see every summary).
    ///
    /// Wavefront levels are processed in ascending order; within one level
    /// the components share no edges, so up to `threads` workers converge
    /// them concurrently against an immutable snapshot of the summaries and
    /// their (disjoint) results are merged back between levels. `passes`
    /// reports the deepest inner iteration any single component needed —
    /// the wavefront analogue of the old whole-program pass count.
    fn run_wavefronts(
        &mut self,
        nodes: &[PropagationNode<'_>],
        max_passes: usize,
        only: Option<&BTreeSet<Symbol>>,
        clobber_globals: bool,
        threads: usize,
    ) {
        let index: HashMap<Symbol, usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, node)| (node.name, i))
            .collect();
        let adj: Vec<Vec<usize>> = nodes
            .iter()
            .map(|node| {
                node.calls
                    .iter()
                    .filter_map(|call| index.get(&call.callee).copied())
                    .collect()
            })
            .collect();
        let cond = crate::scc::condense(&adj);

        let mut deepest = 0usize;
        for wavefront in &cond.wavefronts {
            // The incremental cone covers whole components (see
            // `propagate_incremental_parallel`), so a component is either
            // entirely in the cone or entirely stable.
            let work: Vec<usize> = wavefront
                .iter()
                .copied()
                .filter(|&c| {
                    only.is_none_or(|set| {
                        cond.members[c]
                            .iter()
                            .any(|&v| set.contains(&nodes[v].name))
                    })
                })
                .collect();
            if work.is_empty() {
                continue;
            }
            let results = {
                let base = &self.functions;
                crate::pipeline::parallel_map_indexed(threads, work.len(), |slot| {
                    let c = work[slot];
                    converge_component(
                        nodes,
                        base,
                        &cond.members[c],
                        cond.cyclic[c],
                        max_passes,
                        only,
                        clobber_globals,
                    )
                })
            };
            for (updates, inner) in results {
                deepest = deepest.max(inner);
                for (name, summary) in updates {
                    self.functions.insert(name, summary);
                }
            }
        }
        self.passes = deepest;
    }

    /// The pre-condensation pass loop: a whole-program sweep until no
    /// summary changes, backing [`Self::propagate_sequential`].
    fn run_passes(
        &mut self,
        nodes: &[PropagationNode<'_>],
        max_passes: usize,
        only: Option<&BTreeSet<Symbol>>,
        clobber_globals: bool,
    ) {
        for pass in 0..max_passes.max(1) {
            self.passes = pass + 1;
            let mut changed = false;
            for node in nodes {
                if only.is_some_and(|set| !set.contains(&node.name)) {
                    continue;
                }
                for call in node.calls.iter() {
                    let Some(callee_summary) = self.functions.get(&call.callee).cloned() else {
                        if clobber_globals && !PURE_BUILTINS.contains(&call.callee.as_str()) {
                            let mut caller =
                                self.functions.get(&node.name).cloned().unwrap_or_default();
                            if merge_unknown_call(&mut caller, node, call.on_device) {
                                self.functions.insert(node.name, caller);
                                changed = true;
                            }
                        }
                        continue;
                    };
                    let mut caller = self.functions.get(&node.name).cloned().unwrap_or_default();
                    if merge_known_call(&mut caller, node, call, &callee_summary) {
                        self.functions.insert(node.name, caller);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// A lookup-only view over `base`: [`Self::summary`] resolves names
    /// first in the view's own (initially empty) layer, then in `base`.
    /// [`Self::insert`] writes into the own layer, shadowing `base` without
    /// touching it — the link stage's per-unit static views cost the few
    /// shadowed `static` entries instead of a full clone of the
    /// whole-program summary set.
    pub fn overlay(base: Arc<ProgramSummaries>) -> ProgramSummaries {
        ProgramSummaries {
            functions: HashMap::new(),
            passes: base.passes,
            base: Some(base),
        }
    }

    /// The summary for a function, if it was analyzed. Overlay views fall
    /// through to their base layer for names they do not shadow.
    pub fn summary(&self, name: impl Into<Symbol>) -> Option<&FunctionSummary> {
        self.summary_sym(name.into())
    }

    fn summary_sym(&self, name: Symbol) -> Option<&FunctionSummary> {
        self.functions
            .get(&name)
            .or_else(|| self.base.as_ref().and_then(|base| base.summary_sym(name)))
    }

    /// Iterate all summaries (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &FunctionSummary)> {
        self.functions.iter()
    }

    /// Insert (or replace) one summary under an explicit key. The link
    /// stage uses this to build per-unit views where unit-private `static`
    /// symbols appear under their source-level names.
    pub fn insert(&mut self, name: impl Into<Symbol>, summary: FunctionSummary) {
        self.functions.insert(name.into(), summary);
    }

    /// Number of summarized functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// True when both sides converged to identical summaries. `passes` — a
    /// diagnostic count whose value depends on the engine — is ignored;
    /// every effect, parameter slot, and global entry must match exactly.
    pub fn same_summaries(&self, other: &ProgramSummaries) -> bool {
        self.functions == other.functions
    }
}

/// Merge one known callee's summary into `caller` across `call`. Returns
/// true when anything changed. Shared verbatim by the sequential reference
/// engine and the SCC-wavefront workers so the two cannot drift apart.
fn merge_known_call(
    caller: &mut FunctionSummary,
    node: &PropagationNode<'_>,
    call: &CallSite,
    callee_summary: &FunctionSummary,
) -> bool {
    let mut local_changed = false;
    if callee_summary.has_kernels && !caller.has_kernels {
        caller.has_kernels = true;
        local_changed = true;
    }
    // Parameter effects flow to the caller's own params/globals.
    for (arg_idx, arg) in call.args.iter().enumerate() {
        if !arg.by_ref {
            continue;
        }
        let Some(var) = &arg.base_var else { continue };
        let mut effect = callee_summary
            .param_effects
            .get(arg_idx)
            .copied()
            .unwrap_or_default();
        if call.on_device {
            effect = device_shifted(effect);
        }
        if let Some(pidx) = node.params.iter().position(|p| p == var) {
            if node.sym.is_aggregate(*var) {
                local_changed |= caller.param_effects[pidx].merge(effect);
            }
        } else if node.sym.is_global(*var) {
            local_changed |= caller
                .global_effects
                .entry(*var)
                .or_default()
                .merge(effect);
        }
    }
    // Global effects propagate directly.
    for (global, effect) in &callee_summary.global_effects {
        let mut effect = *effect;
        if call.on_device {
            effect = device_shifted(effect);
        }
        local_changed |= caller
            .global_effects
            .entry(*global)
            .or_default()
            .merge(effect);
    }
    local_changed
}

/// Merge the pessimistic-globals clobber of an unknown callee into
/// `caller`: every global the caller can see becomes host read+written
/// (device-shifted inside offloaded regions), so the clobber is part of
/// the *summary* and propagates transitively to the caller's own callers.
/// The symbol table's name order is unordered, but merging into the
/// `BTreeMap` of global effects is commutative, so the result is
/// deterministic regardless.
fn merge_unknown_call(
    caller: &mut FunctionSummary,
    node: &PropagationNode<'_>,
    on_device: bool,
) -> bool {
    let mut effect = Effect::pessimistic_host();
    if on_device {
        effect = device_shifted(effect);
    }
    let mut local_changed = false;
    for var in node.sym.names() {
        if node.sym.is_global(var) {
            local_changed |= caller
                .global_effects
                .entry(var)
                .or_default()
                .merge(effect);
        }
    }
    local_changed
}

/// Converge one strongly connected component against an immutable snapshot
/// of every previously converged summary. Returns the component's updated
/// entries plus the number of inner passes it took.
///
/// An acyclic component's converged summary is its seed unioned with fixed
/// (already converged) callee contributions; unions are idempotent and
/// commutative, so a single visit reaches the fixed point. Recursive
/// components iterate until no summary changes, bounded by `max_passes`.
fn converge_component(
    nodes: &[PropagationNode<'_>],
    base: &HashMap<Symbol, FunctionSummary>,
    members: &[usize],
    cyclic: bool,
    max_passes: usize,
    only: Option<&BTreeSet<Symbol>>,
    clobber_globals: bool,
) -> (Vec<(Symbol, FunctionSummary)>, usize) {
    // Working copies exist only for members whose summary actually changes;
    // unchanged members keep their `base` entry verbatim, so the common
    // acyclic component converges with zero summary clones.
    let mut local: HashMap<Symbol, FunctionSummary> = HashMap::new();
    let inner_max = if cyclic { max_passes.max(1) } else { 1 };
    let mut passes = 0usize;
    for pass in 0..inner_max {
        passes = pass + 1;
        let mut changed = false;
        for &v in members {
            let node = &nodes[v];
            if only.is_some_and(|set| !set.contains(&node.name)) {
                continue;
            }
            if node.calls.is_empty() {
                continue;
            }
            // Hoist the caller's working summary out of the maps once per
            // visit instead of cloning it per call edge; it goes back only
            // if this visit (or an earlier pass) changed it.
            let (mut caller, was_local) = match local.remove(&node.name) {
                Some(summary) => (summary, true),
                None => (base.get(&node.name).cloned().unwrap_or_default(), false),
            };
            let mut caller_changed = false;
            for call in node.calls.iter() {
                if call.callee == node.name {
                    // A self-recursive edge reads the caller while mutating
                    // it; merge against a snapshot.
                    let snapshot = caller.clone();
                    if merge_known_call(&mut caller, node, call, &snapshot) {
                        caller_changed = true;
                    }
                    continue;
                }
                // In-component callees live in `local` (and shadow their
                // stale `base` snapshot); everything else is final in `base`.
                match local.get(&call.callee).or_else(|| base.get(&call.callee)) {
                    Some(callee_summary) => {
                        if merge_known_call(&mut caller, node, call, callee_summary) {
                            caller_changed = true;
                        }
                    }
                    None => {
                        if clobber_globals
                            && !PURE_BUILTINS.contains(&call.callee.as_str())
                            && merge_unknown_call(&mut caller, node, call.on_device)
                        {
                            caller_changed = true;
                        }
                    }
                }
            }
            if caller_changed || was_local {
                local.insert(node.name, caller);
            }
            changed |= caller_changed;
        }
        if !changed {
            break;
        }
    }
    (local.into_iter().collect(), passes)
}

/// Move every host effect to the device (used when the call site itself
/// executes inside an offloaded region).
fn device_shifted(e: Effect) -> Effect {
    Effect {
        host_read: false,
        host_write: false,
        device_read: e.host_read || e.device_read,
        device_write: e.host_write || e.device_write,
    }
}

fn param_index(func: &FunctionDef, var: Symbol) -> Option<usize> {
    func.params.iter().position(|p| p.name == var)
}

/// Augment a function's access list with the side effects of its call sites,
/// using computed summaries for known callees and maximally pessimistic
/// assumptions for unknown ones. Synthetic accesses record their
/// [`AccessOrigin`] so downstream provenance can distinguish a real summary
/// (possibly from another translation unit) from the pessimistic fallback.
///
/// Returns the number of call sites that hit the pessimistic
/// unknown-callee fallback (zero when every non-builtin callee resolved to
/// a real summary, as in a fully linked whole-program analysis).
///
/// **Default assumption:** an unknown extern callee is assumed to read and
/// write the data reached through its non-`const` pointer arguments — and
/// *nothing else*. In particular it is assumed **not** to touch global
/// variables it was not handed a pointer to. The opt-in
/// [`augment_with_call_effects_opts`] `clobber_globals` mode drops that
/// assumption and treats every global as host-read+written at the call
/// site.
pub fn augment_with_call_effects(
    acc: &mut FunctionAccesses,
    unit: &TranslationUnit,
    summaries: &ProgramSummaries,
) -> usize {
    augment_with_call_effects_opts(acc, unit, summaries, false)
}

/// [`augment_with_call_effects`] with the opt-in pessimistic-globals mode:
/// when `clobber_globals` is set, an unknown extern callee is additionally
/// assumed to read and write **every global variable** of the translation
/// unit on the host (the synthesized accesses carry
/// [`AccessOrigin::UnknownCallee`] with `clobbers_global`, so the
/// `unknown_callee_pessimistic` provenance explains them at the call site).
pub fn augment_with_call_effects_opts(
    acc: &mut FunctionAccesses,
    unit: &TranslationUnit,
    summaries: &ProgramSummaries,
    clobber_globals: bool,
) -> usize {
    // Detach the call list while synthesizing accesses (which only appends
    // to `acc.accesses`) instead of deep-cloning every call site.
    let calls: Vec<CallSite> = std::mem::take(&mut acc.calls);
    let mut fallbacks = 0usize;
    for call in &calls {
        // Known callee with a body: apply its summary. The summary may come
        // from this unit or — in a linked whole-program analysis — from
        // another translation unit; record which.
        if let Some(summary) = summaries.summary(call.callee) {
            let origin = AccessOrigin::Callee {
                callee: call.callee,
                cross_unit: !unit.functions().any(|f| f.name == call.callee),
            };
            for (arg_idx, arg) in call.args.iter().enumerate() {
                if !arg.by_ref {
                    continue;
                }
                let Some(var) = &arg.base_var else { continue };
                let effect = summary
                    .param_effects
                    .get(arg_idx)
                    .copied()
                    .unwrap_or_default();
                push_effect_accesses(acc, *var, effect, call, &origin);
            }
            // Deterministic order: the synthetic accesses decide the
            // mapped-variable order of the caller's plan, so iterate the
            // globals sorted — never in HashMap order. (`BTreeMap<Symbol>`
            // orders by resolved string, same as the old `String` keys.)
            for (global, effect) in summary.global_effects.iter() {
                push_effect_accesses(acc, *global, *effect, call, &origin);
            }
            continue;
        }
        // Pure/standard library functions: reads only.
        if PURE_BUILTINS.contains(&call.callee.as_str()) {
            let origin = AccessOrigin::Callee {
                callee: call.callee,
                cross_unit: false,
            };
            for arg in &call.args {
                if arg.by_ref {
                    if let Some(var) = &arg.base_var {
                        push_effect_accesses(acc, *var, Effect::read_only_host(), call, &origin);
                    }
                }
            }
            continue;
        }
        // Unknown external function: maximally pessimistic assumptions,
        // refined by `const` pointer parameters on a visible prototype.
        let proto = unit.all_functions().find(|f| f.name == call.callee);
        let origin = AccessOrigin::UnknownCallee {
            callee: call.callee,
            clobbers_global: false,
        };
        let mut fell_back = false;
        for (arg_idx, arg) in call.args.iter().enumerate() {
            if !arg.by_ref {
                continue;
            }
            let Some(var) = &arg.base_var else { continue };
            let is_const = proto
                .and_then(|p| p.params.get(arg_idx))
                .map(|p| p.is_const_pointee)
                .unwrap_or(false);
            let effect = if is_const {
                Effect::read_only_host()
            } else {
                fell_back = true;
                Effect::pessimistic_host()
            };
            push_effect_accesses(acc, *var, effect, call, &origin);
        }
        // Opt-in: the unknown callee may also touch any global it can name,
        // not just the data it was handed a pointer to.
        if clobber_globals {
            let mut globals: Vec<Symbol> = unit.globals().map(|g| g.name).collect();
            globals.sort_unstable();
            globals.dedup();
            if !globals.is_empty() {
                fell_back = true;
                let origin = AccessOrigin::UnknownCallee {
                    callee: call.callee,
                    clobbers_global: true,
                };
                for global in globals {
                    push_effect_accesses(acc, global, Effect::pessimistic_host(), call, &origin);
                }
            }
        }
        if fell_back {
            fallbacks += 1;
        }
    }
    acc.calls = calls;
    fallbacks
}

fn push_effect_accesses(
    acc: &mut FunctionAccesses,
    var: Symbol,
    effect: Effect,
    call: &CallSite,
    origin: &AccessOrigin,
) {
    let mut effect = effect;
    if call.on_device {
        effect = device_shifted(effect);
    }
    let (host_kind, device_kind) = effect.as_access_kinds();
    if let Some(kind) = host_kind {
        acc.add_synthetic(Access {
            var,
            kind,
            stmt: call.stmt,
            on_device: false,
            span: call.span,
            indices: Vec::new(),
            origin: origin.clone(),
        });
    }
    if let Some(kind) = device_kind {
        acc.add_synthetic(Access {
            var,
            kind,
            stmt: call.stmt,
            on_device: true,
            span: call.span,
            indices: Vec::new(),
            origin: origin.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{FunctionAccesses, SymbolTable};
    use ompdart_frontend::parser::parse_str;
    use ompdart_graph::ProgramGraphs;

    fn analyze(
        src: &str,
    ) -> (
        ProgramSummaries,
        HashMap<Symbol, FunctionAccesses>,
        ompdart_frontend::TranslationUnit,
    ) {
        let (_file, result) = parse_str("t.c", src);
        assert!(result.is_ok(), "{:?}", result.diagnostics);
        let unit = result.unit;
        let graphs = ProgramGraphs::build(&unit);
        let mut accesses = HashMap::new();
        let mut symbols = HashMap::new();
        for f in unit.functions() {
            let sym = SymbolTable::build(&unit, f);
            let g = graphs.function(f.name.as_str()).unwrap();
            accesses.insert(f.name, FunctionAccesses::collect(f, &g.index, &sym));
            symbols.insert(f.name, sym);
        }
        let summaries = ProgramSummaries::compute(&unit, &accesses, &symbols, 8);
        (summaries, accesses, unit)
    }

    const LAYERED: &str = "\
double weights[64];
void scale_buffer(double *buf, int n) {
  for (int i = 0; i < n; i++) buf[i] *= 0.5;
}
void read_weights(const double *w, double *out, int n) {
  for (int i = 0; i < n; i++) out[i] = w[i];
}
void outer(double *data, int n) {
  scale_buffer(data, n);
  read_weights(weights, data, n);
  weights[0] = 1.0;
}
void top(double *data, int n) {
  outer(data, n);
}
";

    #[test]
    fn direct_param_effects() {
        let (summaries, _acc, _unit) = analyze(LAYERED);
        let s = summaries.summary("scale_buffer").unwrap();
        assert!(s.param_effects[0].host_read);
        assert!(s.param_effects[0].host_write);
        let r = summaries.summary("read_weights").unwrap();
        assert!(r.param_effects[0].host_read);
        assert!(!r.param_effects[0].host_write);
        assert!(r.param_effects[1].host_write);
    }

    #[test]
    fn effects_propagate_transitively() {
        let (summaries, _acc, _unit) = analyze(LAYERED);
        // `outer` writes its param through scale_buffer and read_weights.
        let o = summaries.summary("outer").unwrap();
        assert!(o.param_effects[0].host_write);
        assert!(o.param_effects[0].host_read);
        // ...and reads/writes the global `weights` both directly and through
        // read_weights.
        let weights = Symbol::intern("weights");
        assert!(o.global_effects.get(&weights).unwrap().host_read);
        assert!(o.global_effects.get(&weights).unwrap().host_write);
        // `top` inherits everything through one more level of calls.
        let t = summaries.summary("top").unwrap();
        assert!(t.param_effects[0].host_write);
        assert!(t.global_effects.get(&Symbol::intern("weights")).unwrap().host_read);
    }

    #[test]
    fn fixed_point_terminates_early() {
        let (summaries, _acc, _unit) = analyze(LAYERED);
        assert!(
            summaries.passes <= 4,
            "expected early termination, took {}",
            summaries.passes
        );
        assert_eq!(summaries.len(), 4);
    }

    #[test]
    fn kernels_detected_transitively() {
        let src = "\
double field[32];
void launch(double *f, int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; i++) f[i] += 1.0;
}
void driver(int n) {
  launch(field, n);
}
";
        let (summaries, _acc, _unit) = analyze(src);
        assert!(summaries.summary("launch").unwrap().has_kernels);
        assert!(summaries.summary("driver").unwrap().has_kernels);
        // The kernel access is a device write of the parameter.
        assert!(summaries.summary("launch").unwrap().param_effects[0].device_write);
    }

    #[test]
    fn augmentation_applies_summary_at_call_site() {
        let (summaries, mut accesses, unit) = analyze(LAYERED);
        let outer = accesses.get_mut(&Symbol::intern("outer")).unwrap();
        let before = outer.accesses.len();
        augment_with_call_effects(outer, &unit, &summaries);
        assert!(outer.accesses.len() > before);
        // After augmentation, `outer` has a write access to `data` at the
        // scale_buffer call site.
        assert!(outer
            .accesses
            .iter()
            .any(|a| a.var == "data" && a.kind.may_write() && !a.on_device));
    }

    #[test]
    fn unknown_callee_is_pessimistic_but_const_is_read_only() {
        let src = "\
void external_fill(double *buf, int n);
void external_inspect(const double *buf, int n);
void f(double *data, int n) {
  external_fill(data, n);
  external_inspect(data, n);
}
";
        let (summaries, mut accesses, unit) = analyze(src);
        let f = accesses.get_mut(&Symbol::intern("f")).unwrap();
        augment_with_call_effects(f, &unit, &summaries);
        let writes: Vec<_> = f
            .accesses
            .iter()
            .filter(|a| a.var == "data" && a.kind.may_write())
            .collect();
        let reads: Vec<_> = f
            .accesses
            .iter()
            .filter(|a| a.var == "data" && a.kind == AccessKind::Read)
            .collect();
        // external_fill: pessimistic read+write; external_inspect: read only.
        assert_eq!(writes.len(), 1);
        assert!(!reads.is_empty());
    }

    #[test]
    fn pure_builtins_do_not_add_writes() {
        let src = "\
double buf[8];
void f() {
  printf(\"%f\\n\", buf[0]);
}
";
        let (summaries, mut accesses, unit) = analyze(src);
        let f = accesses.get_mut(&Symbol::intern("f")).unwrap();
        augment_with_call_effects(f, &unit, &summaries);
        assert!(!f
            .accesses
            .iter()
            .any(|a| a.var == "buf" && a.kind.may_write()));
    }

    #[test]
    fn effect_merge_and_kinds() {
        let mut e = Effect::default();
        assert!(e.is_empty());
        assert!(e.record(AccessKind::Read, false));
        assert!(!e.record(AccessKind::Read, false));
        assert!(e.record(AccessKind::Write, true));
        let (host, dev) = e.as_access_kinds();
        assert_eq!(host, Some(AccessKind::Read));
        assert_eq!(dev, Some(AccessKind::Write));
        assert!(device_shifted(Effect::pessimistic_host()).device_write);
    }
}
