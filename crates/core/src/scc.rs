//! Strongly-connected-component condensation of the call graph.
//!
//! The interprocedural fixed point ([`crate::interproc::ProgramSummaries`])
//! is a monotone data-flow problem over the call graph: summaries flow from
//! callee to caller, and the only reason the classic algorithm iterates the
//! *whole* program to convergence is recursion. Condensing the graph into
//! strongly connected components turns it into a DAG, and on a DAG every
//! node converges in a **single** visit once all of its callees have
//! converged. Only genuinely recursive components (a self-loop or a
//! mutual-recursion cycle) need inner fixed-point iteration — and those are
//! small in real programs.
//!
//! [`condense`] computes the condensation with an iterative Tarjan walk
//! (an explicit frame stack, so thousand-deep call chains cannot overflow
//! the thread stack) and groups the components into *wavefronts*: level 0
//! holds components with no callees outside themselves, level *k* holds
//! components whose deepest callee chain through the condensation has
//! length *k*. All components in one wavefront are pairwise edge-free, so
//! they can be converged in parallel; processing wavefronts in ascending
//! level order guarantees every cross-component callee summary is final
//! before any caller reads it.
//!
//! Everything here is deterministic: component ids follow Tarjan's emission
//! order (reverse topological — a cross edge always points to a smaller
//! id), members and wavefronts are sorted, and none of it depends on hash
//! iteration order or thread scheduling.

/// The condensation of a directed graph given as adjacency lists.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `comp[v]` — the component id of node `v`. Ids are assigned in
    /// Tarjan's emission order, which is reverse topological: for every
    /// edge `v -> w` crossing components, `comp[w] < comp[v]`.
    pub comp: Vec<usize>,
    /// `members[c]` — the node indices of component `c`, ascending.
    pub members: Vec<Vec<usize>>,
    /// `levels[c]` — the wavefront of component `c`: 0 when every edge of
    /// the component stays inside it, otherwise 1 + the maximum level among
    /// its cross-component callees.
    pub levels: Vec<usize>,
    /// `wavefronts[l]` — the component ids at level `l`, ascending. No
    /// edge connects two components of one wavefront.
    pub wavefronts: Vec<Vec<usize>>,
    /// `cyclic[c]` — true when component `c` contains a cycle (two or more
    /// members, or a self-loop) and therefore needs inner fixed-point
    /// iteration instead of a single converging visit.
    pub cyclic: Vec<bool>,
}

impl Condensation {
    /// Number of strongly connected components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for the condensation of the empty graph.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Condense `adj` (adjacency lists over nodes `0..adj.len()`) into its
/// strongly connected components and wavefront levels.
///
/// Runs in O(nodes + edges). The Tarjan walk keeps its own frame stack on
/// the heap, so recursion depth is bounded by a constant regardless of how
/// deep the input's call chains are.
pub fn condense(adj: &[Vec<usize>]) -> Condensation {
    let n = adj.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNVISITED; n];
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;
    // (node, next child offset) — the explicit recursion frames.
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, 0));
        while let Some(&(v, child)) = frames.last() {
            if child < adj[v].len() {
                frames.last_mut().expect("frame just read").1 += 1;
                let w = adj[v][child];
                if index[w] == UNVISITED {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let id = members.len();
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds the component");
                        on_stack[w] = false;
                        comp[w] = id;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    members.push(scc);
                }
            }
        }
    }

    // Levels in emission order: every cross edge points at an
    // already-leveled (smaller-id) component.
    let mut levels = vec![0usize; members.len()];
    let mut cyclic: Vec<bool> = members.iter().map(|m| m.len() > 1).collect();
    for (c, scc) in members.iter().enumerate() {
        for &v in scc {
            for &w in &adj[v] {
                if comp[w] == c {
                    cyclic[c] = true;
                } else {
                    debug_assert!(comp[w] < c, "cross edges must point backwards");
                    levels[c] = levels[c].max(levels[comp[w]] + 1);
                }
            }
        }
    }
    let depth = levels.iter().copied().max().map_or(0, |d| d + 1);
    let mut wavefronts: Vec<Vec<usize>> = vec![Vec::new(); depth];
    for (c, &level) in levels.iter().enumerate() {
        wavefronts[level].push(c);
    }

    Condensation {
        comp,
        members,
        levels,
        wavefronts,
        cyclic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let c = condense(&[]);
        assert!(c.is_empty());
        assert!(c.wavefronts.is_empty());
    }

    #[test]
    fn chain_is_singletons_in_reverse_topological_levels() {
        // 0 -> 1 -> 2 -> 3
        let adj = vec![vec![1], vec![2], vec![3], vec![]];
        let c = condense(&adj);
        assert_eq!(c.len(), 4);
        assert!(c.cyclic.iter().all(|&cy| !cy));
        // The sink is level 0, the source the deepest level.
        assert_eq!(c.levels[c.comp[3]], 0);
        assert_eq!(c.levels[c.comp[2]], 1);
        assert_eq!(c.levels[c.comp[1]], 2);
        assert_eq!(c.levels[c.comp[0]], 3);
        // Every cross edge points at a smaller component id.
        for (v, outs) in adj.iter().enumerate() {
            for &w in outs {
                assert!(c.comp[w] < c.comp[v]);
            }
        }
    }

    #[test]
    fn mutual_recursion_collapses_into_one_cyclic_component() {
        // 0 -> 1, 1 -> 0 (cycle); 2 -> 0 (caller of the cycle); 3 isolated.
        let adj = vec![vec![1], vec![0], vec![0], vec![]];
        let c = condense(&adj);
        assert_eq!(c.len(), 3);
        let cycle = c.comp[0];
        assert_eq!(c.comp[1], cycle);
        assert_eq!(c.members[cycle], vec![0, 1]);
        assert!(c.cyclic[cycle]);
        assert!(!c.cyclic[c.comp[2]]);
        assert_eq!(c.levels[cycle], 0);
        assert_eq!(c.levels[c.comp[2]], 1);
        assert_eq!(c.levels[c.comp[3]], 0);
    }

    #[test]
    fn self_loop_is_cyclic_singleton() {
        let adj = vec![vec![0], vec![0]];
        let c = condense(&adj);
        assert_eq!(c.len(), 2);
        assert!(c.cyclic[c.comp[0]]);
        assert!(!c.cyclic[c.comp[1]]);
        assert_eq!(c.levels[c.comp[1]], 1);
    }

    #[test]
    fn diamond_shares_one_wavefront_for_independent_components() {
        // 0 -> {1, 2}; {1, 2} -> 3. Components 1 and 2 are edge-free peers.
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let c = condense(&adj);
        assert_eq!(c.levels[c.comp[1]], 1);
        assert_eq!(c.levels[c.comp[2]], 1);
        let mid: Vec<usize> = c.wavefronts[1].clone();
        assert_eq!(mid.len(), 2);
        // Ascending ids inside a wavefront.
        assert!(mid.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 100k-node chain: the recursive formulation would blow the stack.
        let n = 100_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| if v + 1 < n { vec![v + 1] } else { vec![] })
            .collect();
        let c = condense(&adj);
        assert_eq!(c.len(), n);
        assert_eq!(c.levels[c.comp[0]], n - 1);
        assert_eq!(c.wavefronts.len(), n);
    }

    #[test]
    fn condensation_is_deterministic() {
        let adj = vec![vec![1, 2], vec![0, 3], vec![3], vec![4], vec![3]];
        let a = condense(&adj);
        let b = condense(&adj);
        assert_eq!(a.comp, b.comp);
        assert_eq!(a.members, b.members);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.wavefronts, b.wavefronts);
        assert_eq!(a.cyclic, b.cyclic);
    }
}
