//! Memory-access classification (Section IV-B of the paper).
//!
//! OMPDart begins by parsing the AST to identify the memory accesses
//! associated with each variable reference, grouped by parent function and
//! classified as read, write, read/write, or unknown. Each access records
//! whether it happens on the host or inside an offloaded region, and — for
//! array subscripts — the index expressions, which the access-pattern
//! analysis of Section IV-E consumes.

use ompdart_frontend::ast::*;
use ompdart_frontend::source::Span;
use ompdart_frontend::Symbol;
use ompdart_graph::StmtIndex;
use std::collections::{HashMap, HashSet};

/// How a variable is accessed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
    ReadWrite,
    /// The effect cannot be determined (e.g. the address escapes to an
    /// unknown function); treated pessimistically as a read+write.
    Unknown,
}

impl AccessKind {
    /// True if the access may read the current value.
    pub fn may_read(&self) -> bool {
        matches!(
            self,
            AccessKind::Read | AccessKind::ReadWrite | AccessKind::Unknown
        )
    }

    /// True if the access may modify the value.
    pub fn may_write(&self) -> bool {
        matches!(
            self,
            AccessKind::Write | AccessKind::ReadWrite | AccessKind::Unknown
        )
    }

    /// Combine two access kinds affecting the same variable.
    pub fn merge(self, other: AccessKind) -> AccessKind {
        use AccessKind::*;
        match (self, other) {
            (Unknown, _) | (_, Unknown) => Unknown,
            (Read, Read) => Read,
            (Write, Write) => Write,
            _ => ReadWrite,
        }
    }
}

/// Where an [`Access`] record came from. Mapping decisions keep this around
/// so their provenance can say *why* a conservative assumption was made —
/// in particular when the deciding access was never observed in the source
/// but synthesized from the pessimistic unknown-callee fallback.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum AccessOrigin {
    /// The function's own expression performed the access.
    #[default]
    Direct,
    /// Synthesized from the interprocedural summary of a known callee.
    /// `cross_unit` is true when the callee's definition lives in another
    /// translation unit of a linked whole-program analysis.
    Callee { callee: Symbol, cross_unit: bool },
    /// Synthesized from the maximally pessimistic fallback for a callee
    /// whose definition is not visible (at best a prototype).
    /// `clobbers_global` is true when the access models the opt-in
    /// "unknown callees clobber globals" mode rather than the default
    /// by-reference-argument fallback.
    UnknownCallee {
        callee: Symbol,
        clobbers_global: bool,
    },
}

/// One classified memory access.
#[derive(Clone, Debug)]
pub struct Access {
    pub var: Symbol,
    pub kind: AccessKind,
    /// Statement in which the access occurs.
    pub stmt: NodeId,
    /// True if the access executes inside an offloaded region.
    pub on_device: bool,
    pub span: Span,
    /// Array subscript index expressions (outermost dimension first), empty
    /// for scalar accesses.
    pub indices: Vec<Expr>,
    /// Whether the access was observed directly or synthesized from a
    /// callee's (possibly assumed) side effects.
    pub origin: AccessOrigin,
}

/// A call site observed during classification; the interprocedural analysis
/// (Section IV-C) expands these into the callee's side effects.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub callee: Symbol,
    pub stmt: NodeId,
    pub on_device: bool,
    pub span: Span,
    /// For every argument: the base variable passed (if the argument is a
    /// simple lvalue or its address) and whether it is passed by reference
    /// (pointer, array, or explicit `&`).
    pub args: Vec<CallArg>,
}

/// One argument of a call site.
#[derive(Clone, Debug)]
pub struct CallArg {
    pub base_var: Option<Symbol>,
    pub by_ref: bool,
}

/// Lightweight per-function symbol table (parameters, locals, globals).
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    vars: HashMap<Symbol, Type>,
    params: HashSet<Symbol>,
    const_pointee_params: HashSet<Symbol>,
    globals: HashSet<Symbol>,
}

impl SymbolTable {
    /// Build the symbol table for one function within a translation unit.
    pub fn build(unit: &TranslationUnit, func: &FunctionDef) -> SymbolTable {
        let mut table = SymbolTable::default();
        for g in unit.globals() {
            table.vars.insert(g.name, g.ty.clone());
            table.globals.insert(g.name);
        }
        for p in &func.params {
            table.vars.insert(p.name, p.ty.clone());
            table.params.insert(p.name);
            if p.is_const_pointee {
                table.const_pointee_params.insert(p.name);
            }
        }
        if let Some(body) = &func.body {
            body.walk(&mut |s| {
                let decls: Vec<&VarDecl> = match &s.kind {
                    StmtKind::Decl(d) => d.iter().collect(),
                    StmtKind::For { init: Some(fi), .. } => match fi.as_ref() {
                        ForInit::Decl(d) => d.iter().collect(),
                        _ => Vec::new(),
                    },
                    _ => Vec::new(),
                };
                for d in decls {
                    table.vars.entry(d.name).or_insert_with(|| d.ty.clone());
                }
            });
        }
        table
    }

    /// The declared type of a variable, if known.
    pub fn type_of(&self, name: impl Into<Symbol>) -> Option<&Type> {
        self.vars.get(&name.into())
    }

    /// True if the variable's data is an aggregate OpenMP would map as a
    /// block (array, struct, or pointer target).
    pub fn is_aggregate(&self, name: impl Into<Symbol>) -> bool {
        self.type_of(name)
            .map(|t| t.is_mappable_aggregate())
            .unwrap_or(false)
    }

    /// True for plain scalar variables.
    pub fn is_scalar(&self, name: impl Into<Symbol>) -> bool {
        self.type_of(name).map(|t| t.is_scalar()).unwrap_or(false)
    }

    /// True for pointer-typed variables (mapping them requires an array
    /// section because the extent is not part of the type).
    pub fn is_pointer(&self, name: impl Into<Symbol>) -> bool {
        self.type_of(name).map(|t| t.is_pointer()).unwrap_or(false)
    }

    /// True if the variable is a function parameter.
    pub fn is_param(&self, name: impl Into<Symbol>) -> bool {
        self.params.contains(&name.into())
    }

    /// True if the parameter points to `const` data.
    pub fn is_const_pointee_param(&self, name: impl Into<Symbol>) -> bool {
        self.const_pointee_params.contains(&name.into())
    }

    /// True if the variable is a global.
    pub fn is_global(&self, name: impl Into<Symbol>) -> bool {
        self.globals.contains(&name.into())
    }

    /// True if the variable's lifetime extends beyond the function (globals
    /// and data reachable through parameters) so that device-written values
    /// must be copied back before the function returns.
    pub fn escapes(&self, name: impl Into<Symbol>) -> bool {
        let name = name.into();
        self.is_global(name) || (self.is_param(name) && self.is_aggregate(name))
    }

    /// All known variable names.
    pub fn names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.vars.keys().copied()
    }
}

/// The direct (intra-procedural) accesses of one function plus its call
/// sites.
#[derive(Clone, Debug, Default)]
pub struct FunctionAccesses {
    pub function: Symbol,
    pub accesses: Vec<Access>,
    pub calls: Vec<CallSite>,
    by_stmt: HashMap<NodeId, StmtIndices>,
}

/// Access-index list of one statement: up to [`STMT_IDX_INLINE`] entries
/// live inline, so typical statements cost no heap allocation for their
/// side table — and, crucially, neither does *cloning* it, which the plan
/// stage does once per function per round to layer synthetic call-effect
/// accesses over the cached artifact.
const STMT_IDX_INLINE: usize = 6;

#[derive(Clone, Debug)]
enum StmtIndices {
    Inline { len: u8, buf: [u32; STMT_IDX_INLINE] },
    Spilled(Vec<u32>),
}

impl Default for StmtIndices {
    fn default() -> StmtIndices {
        StmtIndices::Inline {
            len: 0,
            buf: [0; STMT_IDX_INLINE],
        }
    }
}

impl StmtIndices {
    fn push(&mut self, idx: usize) {
        let idx = idx as u32;
        match self {
            StmtIndices::Inline { len, buf } => {
                if (*len as usize) < STMT_IDX_INLINE {
                    buf[*len as usize] = idx;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(STMT_IDX_INLINE * 2);
                    spilled.extend_from_slice(&buf[..]);
                    spilled.push(idx);
                    *self = StmtIndices::Spilled(spilled);
                }
            }
            StmtIndices::Spilled(spilled) => spilled.push(idx),
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            StmtIndices::Inline { len, buf } => &buf[..*len as usize],
            StmtIndices::Spilled(spilled) => spilled,
        }
    }
}

impl FunctionAccesses {
    /// Collect accesses for a function.
    pub fn collect(
        func: &FunctionDef,
        index: &StmtIndex,
        symbols: &SymbolTable,
    ) -> FunctionAccesses {
        let mut out = FunctionAccesses {
            function: func.name,
            ..Default::default()
        };
        if let Some(body) = &func.body {
            body.walk(&mut |stmt| {
                let on_device = index.info(stmt.id).map(|i| i.offloaded).unwrap_or(false);
                for expr in stmt.direct_exprs() {
                    let mut ctx = Classifier {
                        out: &mut out,
                        symbols,
                        stmt: stmt.id,
                        on_device,
                    };
                    ctx.classify(expr, false);
                }
                // Variable declarations with initializers read the initializer.
                if let StmtKind::Decl(decls) = &stmt.kind {
                    for d in decls {
                        if let Some(Init::List(_)) = &d.init {
                            // Initializer lists contain only constants in the
                            // benchmarks; nothing to record.
                        }
                    }
                }
            });
        }
        for (i, access) in out.accesses.iter().enumerate() {
            out.by_stmt.entry(access.stmt).or_default().push(i);
        }
        out
    }

    /// Reassemble a function's access artifact from its parts, rebuilding
    /// the statement-index side table. Used by the relocation layer
    /// ([`crate::relocate`]) when a cached artifact is rebased onto the
    /// coordinates of a fresh parse.
    pub fn from_parts(
        function: Symbol,
        accesses: Vec<Access>,
        calls: Vec<CallSite>,
    ) -> FunctionAccesses {
        let mut out = FunctionAccesses {
            function,
            accesses,
            calls,
            by_stmt: HashMap::new(),
        };
        for (i, access) in out.accesses.iter().enumerate() {
            out.by_stmt.entry(access.stmt).or_default().push(i);
        }
        out
    }

    /// Add a synthetic access (used by the interprocedural analysis to model
    /// callee side effects at call sites).
    pub fn add_synthetic(&mut self, access: Access) {
        let idx = self.accesses.len();
        self.by_stmt.entry(access.stmt).or_default().push(idx);
        self.accesses.push(access);
    }

    /// Accesses performed by a specific statement.
    pub fn for_stmt(&self, id: NodeId) -> impl Iterator<Item = &Access> + '_ {
        self.by_stmt
            .get(&id)
            .map(StmtIndices::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|i| &self.accesses[*i as usize])
    }

    /// Names of variables accessed inside offloaded regions.
    pub fn device_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for a in self.accesses.iter().filter(|a| a.on_device) {
            if !out.contains(&a.var) {
                out.push(a.var);
            }
        }
        out
    }

    /// The merged access kind of a variable on the given execution space.
    pub fn merged_kind(&self, var: &str, on_device: bool) -> Option<AccessKind> {
        let mut merged: Option<AccessKind> = None;
        for a in self
            .accesses
            .iter()
            .filter(|a| a.var == var && a.on_device == on_device)
        {
            merged = Some(match merged {
                Some(k) => k.merge(a.kind),
                None => a.kind,
            });
        }
        merged
    }

    /// True if the variable is only ever read inside offloaded regions.
    pub fn device_read_only(&self, var: &str) -> bool {
        matches!(self.merged_kind(var, true), Some(AccessKind::Read))
    }
}

struct Classifier<'a> {
    out: &'a mut FunctionAccesses,
    symbols: &'a SymbolTable,
    stmt: NodeId,
    on_device: bool,
}

impl Classifier<'_> {
    fn record(&mut self, var: Symbol, kind: AccessKind, span: Span, indices: Vec<Expr>) {
        self.out.accesses.push(Access {
            var,
            kind,
            stmt: self.stmt,
            on_device: self.on_device,
            span,
            indices,
            origin: AccessOrigin::Direct,
        });
    }

    /// Classify an expression; `writing` is true when the expression is the
    /// target of an assignment.
    fn classify(&mut self, expr: &Expr, writing: bool) {
        match &expr.kind {
            ExprKind::Ident(name) => {
                let kind = if writing {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                self.record(*name, kind, expr.span, Vec::new());
            }
            ExprKind::Index { .. } => {
                let (base, indices) = flatten_subscripts(expr);
                if let Some(var) = base.and_then(|b| b.base_symbol()) {
                    let kind = if writing {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    self.record(
                        var,
                        kind,
                        expr.span,
                        indices.iter().map(|e| (*e).clone()).collect(),
                    );
                }
                for idx in indices {
                    self.classify(idx, false);
                }
            }
            ExprKind::Member { base, .. } => {
                if let Some(var) = base.base_symbol() {
                    let kind = if writing {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    self.record(var, kind, expr.span, Vec::new());
                }
            }
            ExprKind::Unary { op, operand, .. } => match op {
                UnaryOp::Inc | UnaryOp::Dec => {
                    if let Some(var) = operand.base_symbol() {
                        self.record(var, AccessKind::ReadWrite, expr.span, Vec::new());
                    }
                    // Subscript indices inside the operand are reads.
                    if let ExprKind::Index { .. } = &operand.kind {
                        let (_, indices) = flatten_subscripts(operand);
                        for idx in indices {
                            self.classify(idx, false);
                        }
                    }
                }
                UnaryOp::Deref => {
                    if let Some(var) = operand.base_symbol() {
                        let kind = if writing {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        };
                        self.record(var, kind, expr.span, Vec::new());
                    }
                    self.classify(operand, false);
                }
                UnaryOp::AddrOf => {
                    // Taking an address is not by itself an access; if the
                    // address escapes through a call the call site handles
                    // it. A bare `&x` elsewhere is treated as unknown.
                    if let Some(var) = operand.base_symbol() {
                        self.record(var, AccessKind::Unknown, expr.span, Vec::new());
                    }
                }
                _ => self.classify(operand, false),
            },
            ExprKind::Assign { op, lhs, rhs } => {
                self.classify(rhs, false);
                let kind = if op.binary_op().is_some() {
                    AccessKind::ReadWrite
                } else {
                    AccessKind::Write
                };
                // Record the write on the lvalue base.
                match &lhs.kind {
                    ExprKind::Index { .. } => {
                        let (base, indices) = flatten_subscripts(lhs);
                        if let Some(var) = base.and_then(|b| b.base_symbol()) {
                            self.record(
                                var,
                                kind,
                                lhs.span,
                                indices.iter().map(|e| (*e).clone()).collect(),
                            );
                        }
                        for idx in indices {
                            self.classify(idx, false);
                        }
                    }
                    _ => {
                        if let Some(var) = lhs.base_symbol() {
                            self.record(var, kind, lhs.span, Vec::new());
                        }
                    }
                }
            }
            ExprKind::Call {
                callee,
                args,
                callee_span,
            } => {
                let mut call_args = Vec::new();
                for arg in args {
                    let (base_var, by_ref) = argument_info(arg, self.symbols);
                    if by_ref {
                        // The callee's effect is added by the interprocedural
                        // pass; nothing recorded here.
                    } else {
                        // Scalars passed by value are reads.
                        self.classify(arg, false);
                    }
                    call_args.push(CallArg { base_var, by_ref });
                }
                self.out.calls.push(CallSite {
                    callee: *callee,
                    stmt: self.stmt,
                    on_device: self.on_device,
                    span: *callee_span,
                    args: call_args,
                });
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.classify(lhs, false);
                self.classify(rhs, false);
            }
            ExprKind::Conditional {
                cond,
                then_expr,
                else_expr,
            } => {
                self.classify(cond, false);
                self.classify(then_expr, false);
                self.classify(else_expr, false);
            }
            ExprKind::Comma(items) => {
                for e in items {
                    self.classify(e, false);
                }
            }
            ExprKind::Paren(inner) | ExprKind::Cast { expr: inner, .. } => {
                self.classify(inner, writing)
            }
            ExprKind::SizeofExpr(_)
            | ExprKind::SizeofType(_)
            | ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::StrLit(_) => {}
        }
    }
}

/// Flatten `a[i][j]` into its base expression and the list of index
/// expressions (outermost dimension first).
fn flatten_subscripts(expr: &Expr) -> (Option<&Expr>, Vec<&Expr>) {
    let mut indices = Vec::new();
    let mut cur = expr;
    loop {
        match &cur.kind {
            ExprKind::Index { base, index } => {
                indices.push(index.as_ref());
                cur = base;
            }
            ExprKind::Paren(inner) => cur = inner,
            _ => break,
        }
    }
    indices.reverse();
    (Some(cur), indices)
}

/// Determine whether an argument passes data by reference and which variable
/// it is rooted at.
fn argument_info(arg: &Expr, symbols: &SymbolTable) -> (Option<Symbol>, bool) {
    match &arg.kind {
        ExprKind::Unary {
            op: UnaryOp::AddrOf,
            operand,
            ..
        } => (operand.base_symbol(), true),
        ExprKind::Ident(name) => {
            let by_ref = symbols.is_aggregate(*name);
            (Some(*name), by_ref)
        }
        ExprKind::Index { .. } => {
            // Passing `a[i]` or a row `grid[i]` of a multidimensional array:
            // by reference when the element itself is still an aggregate.
            let (base, indices) = flatten_subscripts(arg);
            let var = base.and_then(|b| b.base_symbol());
            let by_ref = var
                .and_then(|v| symbols.type_of(v))
                .map(|t| {
                    // count array/pointer levels deeper than the subscripts
                    let mut ty = t;
                    let mut depth = 0usize;
                    while let Type::Array(inner, _) | Type::Pointer(inner) = ty {
                        depth += 1;
                        ty = inner;
                    }
                    depth > indices.len()
                })
                .unwrap_or(false);
            (var, by_ref)
        }
        ExprKind::Cast { expr, .. } | ExprKind::Paren(expr) => argument_info(expr, symbols),
        _ => (arg.base_symbol(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompdart_frontend::parser::parse_str;
    use ompdart_graph::ProgramGraphs;

    fn collect(src: &str, func: &str) -> (FunctionAccesses, SymbolTable) {
        let (_file, result) = parse_str("t.c", src);
        assert!(result.is_ok(), "{:?}", result.diagnostics);
        let graphs = ProgramGraphs::build(&result.unit);
        let f = result.unit.function(func).unwrap();
        let symbols = SymbolTable::build(&result.unit, f);
        let accesses =
            FunctionAccesses::collect(f, &graphs.function(func).unwrap().index.clone(), &symbols);
        (accesses, symbols)
    }

    const KERNEL_SRC: &str = "\
#define N 128
double a[N];
double b[N];
void compute(int n) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < n; i++) {
    a[i] = b[i] * 2.0 + a[i];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s += a[i];
  }
}
";

    #[test]
    fn classifies_reads_and_writes() {
        let (acc, _sym) = collect(KERNEL_SRC, "compute");
        assert_eq!(acc.merged_kind("a", true), Some(AccessKind::ReadWrite));
        assert_eq!(acc.merged_kind("b", true), Some(AccessKind::Read));
        assert!(acc.device_read_only("b"));
        assert!(!acc.device_read_only("a"));
        // On the host, `a` is only read (by the summation).
        assert_eq!(acc.merged_kind("a", false), Some(AccessKind::Read));
        assert_eq!(acc.merged_kind("s", false), Some(AccessKind::ReadWrite));
    }

    #[test]
    fn device_vars_exclude_host_only() {
        let (acc, _sym) = collect(KERNEL_SRC, "compute");
        let dv = acc.device_vars();
        assert!(dv.iter().any(|v| v == "a"));
        assert!(dv.iter().any(|v| v == "b"));
        assert!(dv.iter().any(|v| v == "i") || dv.iter().any(|v| v == "n"));
        assert!(!dv.iter().any(|v| v == "s"));
    }

    #[test]
    fn subscript_indices_are_captured() {
        let (acc, _sym) = collect(KERNEL_SRC, "compute");
        let a_access = acc
            .accesses
            .iter()
            .find(|x| x.var == "a" && x.on_device && x.kind.may_write())
            .unwrap();
        assert_eq!(a_access.indices.len(), 1);
        assert_eq!(a_access.indices[0].referenced_vars(), vec!["i"]);
    }

    #[test]
    fn two_dimensional_subscripts() {
        let src = "\
#define R 4
#define C 8
double g[R][C];
void f() {
  for (int i = 0; i < R; i++)
    for (int j = 0; j < C; j++)
      g[i][j] = i + j;
}
";
        let (acc, _sym) = collect(src, "f");
        let g = acc.accesses.iter().find(|a| a.var == "g").unwrap();
        assert_eq!(g.indices.len(), 2);
        assert!(g.kind.may_write());
    }

    #[test]
    fn compound_assign_is_read_write() {
        let (acc, _) = collect("int x; void f() { x += 3; }\n", "f");
        assert_eq!(acc.merged_kind("x", false), Some(AccessKind::ReadWrite));
    }

    #[test]
    fn increment_is_read_write() {
        let (acc, _) = collect("void f(int *p) { p[0]++; }\n", "f");
        assert_eq!(acc.merged_kind("p", false), Some(AccessKind::ReadWrite));
    }

    #[test]
    fn call_sites_record_by_ref_args() {
        let src = "\
void helper(double *out, const double *in, int n);
double buf[64];
double src_data[64];
void f(int n) {
  helper(buf, src_data, n);
}
";
        let (acc, _sym) = collect(src, "f");
        assert_eq!(acc.calls.len(), 1);
        let call = &acc.calls[0];
        assert_eq!(call.callee, "helper");
        assert_eq!(call.args.len(), 3);
        assert!(call.args[0].by_ref);
        assert!(call.args[1].by_ref);
        assert!(!call.args[2].by_ref);
        assert_eq!(call.args[0].base_var.as_deref(), Some("buf"));
        // scalar argument n recorded as a read
        assert!(acc
            .accesses
            .iter()
            .any(|a| a.var == "n" && a.kind == AccessKind::Read));
    }

    #[test]
    fn address_of_outside_call_is_unknown() {
        let (acc, _) = collect("int g; void f() { int *p = &g; p[0] = 1; }\n", "f");
        assert!(acc
            .accesses
            .iter()
            .any(|a| a.var == "g" && a.kind == AccessKind::Unknown));
    }

    #[test]
    fn symbol_table_classification() {
        let src = "\
double grid[16];
void f(const double *input, double *output, int n, struct item *things) {
  double local = 0.0;
  int idx[4];
  local = input[0] + n;
  output[0] = local;
}
struct item { int v; };
";
        let (_acc, sym) = collect(src, "f");
        assert!(sym.is_aggregate("grid"));
        assert!(sym.is_aggregate("input"));
        assert!(sym.is_aggregate("idx"));
        assert!(sym.is_scalar("n"));
        assert!(sym.is_scalar("local"));
        assert!(sym.is_pointer("output"));
        assert!(!sym.is_pointer("grid"));
        assert!(sym.is_param("input"));
        assert!(sym.is_const_pointee_param("input"));
        assert!(!sym.is_const_pointee_param("output"));
        assert!(sym.is_global("grid"));
        assert!(sym.escapes("grid"));
        assert!(sym.escapes("output"));
        assert!(!sym.escapes("local"));
    }

    #[test]
    fn member_access_classification() {
        let src = "\
struct conf { double scale; int n; };
void f(struct conf *c, double *out) {
  out[0] = c->scale * c->n;
  c->n = 5;
}
";
        let (acc, _) = collect(src, "f");
        assert_eq!(acc.merged_kind("c", false), Some(AccessKind::ReadWrite));
        assert_eq!(acc.merged_kind("out", false), Some(AccessKind::Write));
    }

    #[test]
    fn access_kind_merge_rules() {
        use AccessKind::*;
        assert_eq!(Read.merge(Read), Read);
        assert_eq!(Read.merge(Write), ReadWrite);
        assert_eq!(Write.merge(Write), Write);
        assert_eq!(Unknown.merge(Read), Unknown);
        assert!(Unknown.may_read() && Unknown.may_write());
    }

    #[test]
    fn for_stmt_lookup() {
        let (acc, _) = collect(KERNEL_SRC, "compute");
        // Every recorded access is retrievable through its statement id.
        for a in &acc.accesses {
            assert!(acc.for_stmt(a.stmt).any(|x| x.var == a.var));
        }
    }
}
