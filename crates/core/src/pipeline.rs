//! The staged analysis pipeline behind OMPDart.
//!
//! The paper's workflow (Figure 1) is an explicit multi-stage pipeline:
//! parse, hybrid AST-CFG construction, memory-access classification,
//! interprocedural summaries, host/device data-flow planning, and source
//! rewriting. This module models each of those stages as a first-class,
//! independently runnable artifact instead of the historical one-shot
//! [`crate::OmpDart::transform_source`] monolith:
//!
//! * [`ParsedUnit`] — frontend output (AST + diagnostics + content hash),
//! * [`GraphsArtifact`] — per-function CFGs / hybrid AST-CFG,
//! * [`AccessArtifact`] — classified accesses and symbol tables,
//! * [`SummariesArtifact`] — interprocedural side-effect summaries,
//! * [`PlansArtifact`] — per-function [`MappingPlan`]s plus statistics,
//! * [`RewriteOutput`] — the transformed source.
//!
//! Every artifact records the wall-clock time its stage took
//! ([`StageTimings`] aggregates them), stage failures are typed
//! ([`StageError`]), and an [`AnalysisSession`] caches finished artifacts
//! under a content hash so repeated analysis of unchanged sources is
//! near-free. [`BatchDriver`] fans a whole corpus of translation units out
//! over scoped worker threads, while the planning stage itself fans out per
//! function. The legacy [`crate::OmpDart`] API is a thin wrapper over this
//! module.
//!
//! ```
//! use ompdart_core::pipeline::AnalysisSession;
//!
//! let src = "\
//! #define N 64
//! double a[N];
//! int main() {
//!   for (int it = 0; it < 4; it++) {
//!     #pragma omp target teams distribute parallel for
//!     for (int i = 0; i < N; i++) a[i] += 1.0;
//!   }
//!   printf(\"%f\\n\", a[0]);
//!   return 0;
//! }
//! ";
//! let session = AnalysisSession::new();
//! let analysis = session.analyze("demo.c", src).unwrap();
//! assert!(analysis.rewrite.source.contains("#pragma omp target data"));
//! // The second analysis of identical content is served from the cache.
//! let again = session.analyze("demo.c", src).unwrap();
//! assert_eq!(session.cache_stats().analysis_hits, 1);
//! assert_eq!(analysis.parsed.content_hash, again.parsed.content_hash);
//! ```

use crate::access::{FunctionAccesses, SymbolTable};
use crate::dataflow::{function_referenced_vars, plan_function_linked};
use crate::interproc::{
    augment_with_call_effects_opts, seed_summary, Effect, FunctionSummary, ProgramSummaries,
    PropagationNode,
};
use crate::plan::explain::explain_plans;
use crate::plan::ir::{AnalysisStats, MappingPlan};
use crate::plan::json::plans_to_json;
use crate::program::{LinkContext, LinkState, UnitServe, UNLINKED};
use crate::relocate::{relocate_diagnostics, relocate_function_accesses, relocate_plan};
use crate::rewrite;
use crate::shard::ShardMap;
use crate::store::{ArtifactStore, PendingUnitSave, StoredFunctionPlan, StoredUnit};
use crate::{function_with_existing_mappings, OmpDartError, OmpDartOptions, TransformResult};
use ompdart_frontend::ast::{FunctionDef, TranslationUnit};
use ompdart_frontend::diag::Diagnostics;
use ompdart_frontend::parser::parse_str;
use ompdart_frontend::source::SourceFile;
use ompdart_frontend::Symbol;
use ompdart_graph::ProgramGraphs;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Stages, errors and timings
// ---------------------------------------------------------------------------

/// The six pipeline stages, in execution order (paper Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    Parse,
    Graphs,
    Accesses,
    Summaries,
    Plan,
    Rewrite,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::Graphs,
        Stage::Accesses,
        Stage::Summaries,
        Stage::Plan,
        Stage::Rewrite,
    ];

    /// Human-readable stage name.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Graphs => "graphs",
            Stage::Accesses => "accesses",
            Stage::Summaries => "summaries",
            Stage::Plan => "plan",
            Stage::Rewrite => "rewrite",
        }
    }

    /// Parse a stage name (the inverse of [`Stage::name`], used by the plan
    /// JSON deserialization).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed failure of one pipeline stage.
#[derive(Clone, Debug)]
pub enum StageError {
    /// The frontend stage failed: the input does not parse.
    Parse {
        name: String,
        diagnostics: Diagnostics,
    },
    /// The input-contract check failed: the source already contains explicit
    /// data-mapping directives (Section IV-A).
    AlreadyMapped { function: String },
}

impl StageError {
    /// The stage that failed.
    pub fn stage(&self) -> Stage {
        match self {
            StageError::Parse { .. } => Stage::Parse,
            StageError::AlreadyMapped { .. } => Stage::Parse,
        }
    }
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageError::Parse { name, diagnostics } => write!(
                f,
                "`{name}` failed to parse with {} error(s)",
                diagnostics.error_count()
            ),
            StageError::AlreadyMapped { function } => write!(
                f,
                "function `{function}` already contains target data/update directives; \
                 OMPDart expects input without explicit data mappings"
            ),
        }
    }
}

impl std::error::Error for StageError {}

impl From<StageError> for OmpDartError {
    fn from(err: StageError) -> OmpDartError {
        match err {
            StageError::Parse { diagnostics, .. } => OmpDartError::ParseFailed(diagnostics),
            StageError::AlreadyMapped { function } => OmpDartError::AlreadyMapped { function },
        }
    }
}

/// Wall-clock time spent in each pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    pub parse: Duration,
    pub graphs: Duration,
    pub accesses: Duration,
    pub summaries: Duration,
    pub plan: Duration,
    pub rewrite: Duration,
}

impl StageTimings {
    /// Time of one stage.
    pub fn of(&self, stage: Stage) -> Duration {
        match stage {
            Stage::Parse => self.parse,
            Stage::Graphs => self.graphs,
            Stage::Accesses => self.accesses,
            Stage::Summaries => self.summaries,
            Stage::Plan => self.plan,
            Stage::Rewrite => self.rewrite,
        }
    }

    /// Total across all stages.
    pub fn total(&self) -> Duration {
        Stage::ALL.iter().map(|s| self.of(*s)).sum()
    }

    /// Accumulate another timing set into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        self.parse += other.parse;
        self.graphs += other.graphs;
        self.accesses += other.accesses;
        self.summaries += other.summaries;
        self.plan += other.plan;
        self.rewrite += other.rewrite;
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str("  ")?;
            }
            write!(f, "{}={:.3}ms", stage, self.of(*stage).as_secs_f64() * 1e3)?;
        }
        write!(f, "  total={:.3}ms", self.total().as_secs_f64() * 1e3)
    }
}

/// FNV-1a content hash used to key the artifact caches. The hash only
/// *indexes* the caches; every lookup verifies the full `(name, source)`
/// pair before trusting an entry, so a 64-bit collision can cost a re-run
/// but never return another file's artifacts.
pub fn content_hash(name: &str, source: &str) -> u64 {
    let mut h = Fnv::new();
    h.write(name.as_bytes());
    h.write(&[0]);
    h.write(source.as_bytes());
    h.finish()
}

/// A second, independently mixed content hash. The persistent artifact
/// store records both hashes (plus name and length) so its on-disk key is
/// effectively 128 bits wide — full-source verification without storing
/// the source itself.
pub fn content_hash2(name: &str, source: &str) -> u64 {
    let mut h: u64 = 0x9e37_79b9_97f4_a7c5;
    for b in name.bytes().chain([0xff]).chain(source.bytes()) {
        h = (h ^ u64::from(b))
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .rotate_left(23);
    }
    h
}

/// Incremental FNV-1a hasher shared by the cache-key fingerprints (also
/// used by the link stage's interface fingerprints).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0]);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable fingerprint of an [`OmpDartOptions`] value. Part of every plan
/// cache key (in memory and on disk): plans produced under different
/// analysis knobs are never interchangeable.
pub fn options_fingerprint(options: &OmpDartOptions) -> u64 {
    let mut h = Fnv::new();
    h.write(&[
        u8::from(options.dataflow.firstprivate_optimization),
        u8::from(options.dataflow.hoist_updates),
        u8::from(options.interprocedural),
        u8::from(options.reject_existing_mappings),
        u8::from(options.pessimistic_globals),
        u8::from(options.dataflow.lifetimes),
    ]);
    h.write_u64(options.max_interproc_passes as u64);
    h.finish()
}

// ---------------------------------------------------------------------------
// Stage artifacts and the pure stage functions
// ---------------------------------------------------------------------------

/// Frontend artifact: the parsed translation unit.
#[derive(Debug)]
pub struct ParsedUnit {
    /// File name used in diagnostics.
    pub name: String,
    /// FNV-1a hash of (name, source) — the cache key.
    pub content_hash: u64,
    /// The source file (spans in the AST point into it).
    pub file: SourceFile,
    /// The typed AST.
    pub unit: TranslationUnit,
    /// Parse-time warnings and notes.
    pub diagnostics: Diagnostics,
    /// Wall-clock time of the parse stage.
    pub elapsed: Duration,
    /// Lazily computed hash of everything outside function bodies (shared
    /// by the access/summary/plan cache keys, so one analysis scans the
    /// source for it at most once).
    env_hash: std::sync::OnceLock<u64>,
}

impl ParsedUnit {
    /// The environment hash (everything outside function definitions),
    /// computed once per parse and shared by every function-granular cache
    /// key.
    pub fn environment_hash(&self) -> u64 {
        *self
            .env_hash
            .get_or_init(|| environment_hash(&self.file, &self.unit))
    }
}

/// Graph artifact: per-function CFGs and the hybrid AST-CFG.
#[derive(Debug)]
pub struct GraphsArtifact {
    pub graphs: ProgramGraphs,
    pub elapsed: Duration,
}

/// Access artifact: classified memory accesses and per-function symbols.
#[derive(Debug)]
pub struct AccessArtifact {
    pub accesses: HashMap<Symbol, FunctionAccesses>,
    pub symbols: HashMap<Symbol, SymbolTable>,
    /// Functions whose access artifact was served (relocated) from the
    /// function-granular access cache. Zero when no cache was consulted.
    pub cache_hits: u64,
    /// Functions whose accesses were re-collected while a cache was
    /// consulted.
    pub cache_misses: u64,
    pub elapsed: Duration,
}

impl AccessArtifact {
    /// An empty artifact (store-served analyses skip this stage).
    pub(crate) fn empty() -> AccessArtifact {
        AccessArtifact {
            accesses: HashMap::new(),
            symbols: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            elapsed: Duration::ZERO,
        }
    }
}

/// Interprocedural artifact: per-function side-effect summaries.
#[derive(Debug)]
pub struct SummariesArtifact {
    pub summaries: ProgramSummaries,
    /// The per-function *local* (direct-effect) seeds the fixed point ran
    /// over, keyed by function name. The link stage re-converges these
    /// across units — incrementally, because each seed is a function-
    /// granular artifact with its own cache key.
    pub seeds: HashMap<Symbol, FunctionSummary>,
    /// Functions whose local summary was served from the function-granular
    /// summary cache. Zero when no cache was consulted.
    pub cache_hits: u64,
    /// Functions whose local summary was recomputed while a cache was
    /// consulted.
    pub cache_misses: u64,
    pub elapsed: Duration,
}

impl SummariesArtifact {
    /// An empty artifact (store-served analyses skip this stage).
    pub(crate) fn empty() -> SummariesArtifact {
        SummariesArtifact {
            summaries: ProgramSummaries::default(),
            seeds: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            elapsed: Duration::ZERO,
        }
    }
}

/// Planning artifact: per-function mapping plans plus statistics.
#[derive(Debug)]
pub struct PlansArtifact {
    pub plans: Vec<MappingPlan>,
    pub stats: AnalysisStats,
    /// Diagnostics produced by the data-flow analysis.
    pub diagnostics: Diagnostics,
    /// Functions whose plan was served (relocated) from the
    /// function-granular plan cache. Zero when no cache was consulted.
    pub plan_cache_hits: u64,
    /// Functions that were actually (re-)planned while a cache was
    /// consulted. Zero when no cache was consulted.
    pub plan_cache_misses: u64,
    /// Functions served from a *function-level* persistent store entry
    /// (only `static` functions are eligible — the header-defined-and-
    /// shared case). Zero when no store was consulted.
    pub function_store_hits: u64,
    /// Eligible functions whose function-level store lookup missed (each
    /// one writes an entry back after planning).
    pub function_store_misses: u64,
    /// Per-function plan-cache key snapshots (source order), populated when
    /// the function-granular cache was consulted. The persistent store
    /// saves these alongside the plans so a later process can re-seed its
    /// cache from a store hit.
    pub function_keys: Vec<FunctionKeySnapshot>,
    pub elapsed: Duration,
}

/// Rewrite artifact: the transformed source text.
#[derive(Debug)]
pub struct RewriteOutput {
    pub source: String,
    pub elapsed: Duration,
}

/// Stage 1 — parse source text into a [`ParsedUnit`].
pub fn stage_parse(name: &str, source: &str) -> Result<ParsedUnit, StageError> {
    let start = Instant::now();
    let (file, parse) = parse_str(name, source);
    if !parse.is_ok() {
        return Err(StageError::Parse {
            name: name.to_string(),
            diagnostics: parse.diagnostics,
        });
    }
    Ok(ParsedUnit {
        name: name.to_string(),
        content_hash: content_hash(name, source),
        file,
        unit: parse.unit,
        diagnostics: parse.diagnostics,
        elapsed: start.elapsed(),
        env_hash: std::sync::OnceLock::new(),
    })
}

/// Input-contract check (Section IV-A): reject sources that already carry
/// explicit data mappings.
pub fn check_input_contract(parsed: &ParsedUnit) -> Result<(), StageError> {
    match function_with_existing_mappings(&parsed.unit) {
        Some(function) => Err(StageError::AlreadyMapped { function }),
        None => Ok(()),
    }
}

/// Stage 2 — build per-function CFGs and the hybrid AST-CFG.
pub fn stage_graphs(unit: &TranslationUnit) -> GraphsArtifact {
    let start = Instant::now();
    let graphs = ProgramGraphs::build(unit);
    GraphsArtifact {
        graphs,
        elapsed: start.elapsed(),
    }
}

/// Stage 3 — classify memory accesses and build symbol tables.
pub fn stage_accesses(unit: &TranslationUnit, graphs: &GraphsArtifact) -> AccessArtifact {
    stage_accesses_cached(None, unit, graphs, None)
}

/// [`stage_accesses`] with the function-granular access cache: functions
/// whose key (own source text + environment hash) is unchanged re-use their
/// classified accesses — relocated to the current node ids and byte
/// offsets — instead of re-walking their bodies. Symbol tables are always
/// rebuilt from the fresh parse (they are cheap, and their array-size
/// expressions point at *global* declarations, which move by a different
/// delta than the function).
pub fn stage_accesses_cached(
    parsed: Option<&ParsedUnit>,
    unit: &TranslationUnit,
    graphs: &GraphsArtifact,
    cache: Option<(&FunctionAccessCache, u64)>,
) -> AccessArtifact {
    let start = Instant::now();
    let mut symbols = HashMap::new();
    let mut accesses = HashMap::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for func in unit.functions() {
        let sym = SymbolTable::build(unit, func);
        let keyed = match (parsed, cache) {
            (Some(parsed), Some((cache, env_hash))) => Some((
                parsed,
                cache,
                FunctionStageKey {
                    snippet: parsed.file.snippet(func.span).to_string(),
                    env_hash,
                },
            )),
            _ => None,
        };
        let mut served = None;
        if let Some((parsed, cache, key)) = &keyed {
            if let Some(entry) = cache.lookup(&parsed.name, func.name, key) {
                let did = i64::from(func.id.0) - i64::from(entry.base_id);
                let dpos = i64::from(func.span.start) - i64::from(entry.base_pos);
                served = Some(
                    entry
                        .accesses
                        .as_ref()
                        .map(|acc| relocate_function_accesses(acc, did, dpos)),
                );
            }
        }
        let collected = match served {
            Some(acc) => {
                cache_hits += 1;
                acc
            }
            None => {
                let acc = graphs
                    .graphs
                    .function(&func.name)
                    .map(|g| FunctionAccesses::collect(func, &g.index, &sym));
                if let Some((parsed, cache, key)) = keyed {
                    cache_misses += 1;
                    cache.store(
                        Symbol::intern(&parsed.name),
                        func.name,
                        key,
                        CachedFunctionAccesses {
                            base_id: func.id.0,
                            base_pos: func.span.start,
                            accesses: acc.clone(),
                        },
                    );
                }
                acc
            }
        };
        if let Some(acc) = collected {
            accesses.insert(func.name, acc);
        }
        symbols.insert(func.name, sym);
    }
    AccessArtifact {
        accesses,
        symbols,
        cache_hits,
        cache_misses,
        elapsed: start.elapsed(),
    }
}

/// Stage 4 — interprocedural side-effect summaries (Section IV-C).
pub fn stage_summaries(
    unit: &TranslationUnit,
    accesses: &AccessArtifact,
    options: &OmpDartOptions,
) -> SummariesArtifact {
    stage_summaries_cached(None, unit, accesses, options, None)
}

/// [`stage_summaries`] with the function-granular summary cache: the
/// per-function *local* (direct-effect) seeds are cached under the same
/// snippet+environment key the access cache uses, so an edit recomputes the
/// edited function's seed only. The call-site fixed point then propagates
/// over the (mostly cached) seeds — summaries carry no node ids or spans,
/// so seed hits need no relocation.
pub fn stage_summaries_cached(
    parsed: Option<&ParsedUnit>,
    unit: &TranslationUnit,
    accesses: &AccessArtifact,
    options: &OmpDartOptions,
    cache: Option<(&FunctionSummaryCache, u64)>,
) -> SummariesArtifact {
    let start = Instant::now();
    if !options.interprocedural {
        return SummariesArtifact {
            summaries: ProgramSummaries::default(),
            seeds: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            elapsed: start.elapsed(),
        };
    }
    let mut seeds = HashMap::new();
    let mut nodes = Vec::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for func in unit.functions() {
        let Some(acc) = accesses.accesses.get(&func.name) else {
            continue;
        };
        let Some(sym) = accesses.symbols.get(&func.name) else {
            continue;
        };
        let keyed = match (parsed, cache) {
            (Some(parsed), Some((cache, env_hash))) => Some((
                parsed,
                cache,
                FunctionStageKey {
                    snippet: parsed.file.snippet(func.span).to_string(),
                    env_hash,
                },
            )),
            _ => None,
        };
        let seed = match &keyed {
            Some((parsed, cache, key)) => match cache.lookup(&parsed.name, func.name, key) {
                Some(seed) => {
                    cache_hits += 1;
                    seed
                }
                None => {
                    cache_misses += 1;
                    let seed = seed_summary(func, acc, sym);
                    cache.store(Symbol::intern(&parsed.name), func.name, key.clone(), seed.clone());
                    seed
                }
            },
            None => seed_summary(func, acc, sym),
        };
        seeds.insert(func.name, seed);
        nodes.push(PropagationNode::build(func.name, func, acc, sym, |c| c));
    }
    let summaries = ProgramSummaries::propagate_opts(
        &nodes,
        &seeds,
        options.max_interproc_passes,
        options.pessimistic_globals,
    );
    SummariesArtifact {
        summaries,
        seeds,
        cache_hits,
        cache_misses,
        elapsed: start.elapsed(),
    }
}

// ---------------------------------------------------------------------------
// Function-granular incremental planning
// ---------------------------------------------------------------------------

/// The complete set of inputs that determine one function's mapping plan.
///
/// Two analyses may share a cached plan only when every component matches:
///
/// * `snippet` — the exact source text of the function (signature + body),
///   compared byte for byte, so the dominant variable-length component of
///   the key is verified in full rather than trusted to a hash;
/// * `env_hash` — everything *outside* function definitions (macro
///   definitions, global declarations, prototypes, typedefs): macros expand
///   into function bodies and globals drive symbol resolution, so any
///   environment edit invalidates every function;
/// * `callees_hash` — the interprocedural summaries (or visible-prototype
///   `const` qualifiers) of the function's direct callees, so editing a
///   callee's effects re-plans its callers;
/// * `refs_hash` — for `main` only: the variables referenced by every
///   sibling function, mirroring the whole-program exit-liveness scan of
///   the dead-exit-copy demotion;
/// * `options_hash` — the [`OmpDartOptions`] fingerprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct FunctionPlanKey {
    pub(crate) snippet: String,
    pub(crate) env_hash: u64,
    pub(crate) callees_hash: u64,
    pub(crate) refs_hash: u64,
    pub(crate) options_hash: u64,
}

/// A cached per-function planning result, stored in the coordinates
/// (node ids, byte offsets) of the parse that produced it and relocated on
/// every hit.
#[derive(Clone, Debug)]
struct CachedFunctionPlan {
    key: FunctionPlanKey,
    /// `func.id` at cache time (node-id relocation base).
    base_id: u32,
    /// `func.span.start` at cache time (byte-offset relocation base).
    base_pos: u32,
    /// Whether the function counted towards `functions_analyzed`.
    analyzed: bool,
    /// Unknown-callee pessimistic fallbacks the function's planning hit
    /// (re-counted into the stats on every cache hit).
    fallbacks: u64,
    plan: Option<MappingPlan>,
    diagnostics: Diagnostics,
}

/// The persisted form of one function's plan-cache key: everything needed
/// to re-seed the in-memory [`FunctionPlanCache`] from a store hit, so the
/// first edit after a warm start is already incremental. The snippet itself
/// is not stored — a store hit verified the full source, so the snippet is
/// recovered from `[base_pos, base_pos + snippet_len)` of that source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionKeySnapshot {
    pub function: Symbol,
    pub base_id: u32,
    pub base_pos: u32,
    pub snippet_len: u32,
    pub env_hash: u64,
    pub callees_hash: u64,
    pub refs_hash: u64,
    pub options_hash: u64,
    pub analyzed: bool,
    pub has_plan: bool,
    pub fallbacks: u64,
}

/// Session-lifetime cache of per-function planning results.
///
/// Entries are indexed by `(unit name, function name)` and verified against
/// the full function-plan key on every hit. Because node ids are assigned
/// by one sequential counter and spans are plain byte offsets, a function
/// whose own tokens are unchanged keeps the same ids and offsets *relative
/// to its definition* even when surrounding code moves it — a hit therefore
/// relocates the cached plan by the id/offset delta instead of re-running
/// the data-flow analysis.
#[derive(Debug, Default)]
pub struct FunctionPlanCache {
    entries: ShardMap<(Symbol, Symbol), CachedFunctionPlan>,
}

impl FunctionPlanCache {
    /// An empty cache.
    pub fn new() -> FunctionPlanCache {
        FunctionPlanCache::default()
    }

    /// Number of cached function entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lookup(
        &self,
        unit: &str,
        func: Symbol,
        key: &FunctionPlanKey,
    ) -> Option<CachedFunctionPlan> {
        // Non-inserting name resolution: a unit never stored never interned.
        let unit = Symbol::lookup(unit)?;
        self.entries.read(&(unit, func), |entry| {
            entry.and_then(|e| (e.key == *key).then(|| e.clone()))
        })
    }

    fn store(&self, unit: Symbol, func: Symbol, entry: CachedFunctionPlan) {
        self.entries.insert((unit, func), entry);
    }
}

/// The inputs that determine a function's *pre-planning* stage artifacts
/// (classified accesses, local summary seed): the exact source text of the
/// function and the hash of everything outside function bodies. Options do
/// not participate — access classification and direct-effect seeding are
/// option-independent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct FunctionStageKey {
    snippet: String,
    env_hash: u64,
}

/// A session-lifetime per-function stage cache: entries are indexed by
/// `(unit name, function name)` and verified against the full stage key
/// (function snippet + environment hash) on every hit — the snippet is
/// compared byte for byte, never trusted to a hash. One generic cache backs both the access
/// stage ([`FunctionAccessCache`], whose hits are *relocated* — see
/// [`crate::relocate`]) and the summary stage ([`FunctionSummaryCache`],
/// whose values carry no coordinates and need none).
#[derive(Debug)]
pub struct FunctionStageCache<T> {
    entries: ShardMap<(Symbol, Symbol), (FunctionStageKey, T)>,
}

impl<T> Default for FunctionStageCache<T> {
    fn default() -> Self {
        FunctionStageCache {
            entries: ShardMap::new(),
        }
    }
}

impl<T: Clone> FunctionStageCache<T> {
    /// An empty cache.
    pub fn new() -> FunctionStageCache<T> {
        FunctionStageCache::default()
    }

    /// Number of cached function entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn lookup(&self, unit: &str, func: Symbol, key: &FunctionStageKey) -> Option<T> {
        let unit = Symbol::lookup(unit)?;
        self.entries.read(&(unit, func), |entry| {
            entry.and_then(|(stored_key, value)| (stored_key == key).then(|| value.clone()))
        })
    }

    fn store(&self, unit: Symbol, func: Symbol, key: FunctionStageKey, value: T) {
        self.entries.insert((unit, func), (key, value));
    }
}

/// A cached per-function access artifact, stored in the coordinates of the
/// parse that produced it and relocated on every hit. `accesses` is `None`
/// for functions the graph stage produced no CFG for. Opaque outside the
/// pipeline — it only exists as the value type of [`FunctionAccessCache`].
#[derive(Clone, Debug)]
pub struct CachedFunctionAccesses {
    base_id: u32,
    base_pos: u32,
    accesses: Option<FunctionAccesses>,
}

/// Session-lifetime cache of per-function classified accesses.
pub type FunctionAccessCache = FunctionStageCache<CachedFunctionAccesses>;

/// Session-lifetime cache of per-function local (direct-effect) summary
/// seeds. Summaries carry only variable names and effect bits — no node
/// ids, no spans — so hits need no relocation.
pub type FunctionSummaryCache = FunctionStageCache<FunctionSummary>;

/// Hash of the translation-unit environment: every byte of the source that
/// lies outside a function definition. See [`FunctionPlanKey::env_hash`].
pub(crate) fn environment_hash(file: &SourceFile, unit: &TranslationUnit) -> u64 {
    let text = file.text().as_bytes();
    let mut spans: Vec<(usize, usize)> = unit
        .functions()
        .map(|f| (f.span.start as usize, f.span.end as usize))
        .collect();
    spans.sort_unstable();
    let mut h = Fnv::new();
    let mut pos = 0usize;
    for (start, end) in spans {
        let start = start.min(text.len());
        if start > pos {
            h.write(&text[pos..start]);
        }
        // Separator: deleting the gap between two functions must still
        // change the environment hash.
        h.write(&[0]);
        pos = pos.max(end.min(text.len()));
    }
    if pos < text.len() {
        h.write(&text[pos..]);
    }
    h.finish()
}

fn effect_byte(e: Effect) -> u8 {
    u8::from(e.host_read)
        | u8::from(e.host_write) << 1
        | u8::from(e.device_read) << 2
        | u8::from(e.device_write) << 3
}

pub(crate) fn summary_fingerprint(s: &FunctionSummary) -> u64 {
    let mut h = Fnv::new();
    h.write_str(&s.name);
    h.write(&[u8::from(s.has_kernels)]);
    for e in &s.param_effects {
        h.write(&[effect_byte(*e)]);
    }
    // `BTreeMap<Symbol>` iterates in resolved-string order already.
    for (name, e) in s.global_effects.iter() {
        h.write_str(name);
        h.write(&[effect_byte(*e)]);
    }
    h.finish()
}

/// Fingerprint of the interprocedural facts a function's plan consumes: the
/// summary of every direct callee, or — for callees without a summary — the
/// `const` qualifiers of the visible prototype the pessimistic fallback
/// reads. In a linked program the summaries are the *whole-program* ones,
/// so a callee edited in another unit invalidates its callers here exactly
/// when its converged summary changed.
pub(crate) fn callees_fingerprint(
    func_name: Symbol,
    accesses: &AccessArtifact,
    summaries: &ProgramSummaries,
    unit: &TranslationUnit,
) -> u64 {
    let mut names: Vec<&str> = accesses
        .accesses
        .get(&func_name)
        .map(|acc| acc.calls.iter().map(|c| c.callee.as_str()).collect())
        .unwrap_or_default();
    names.sort_unstable();
    names.dedup();
    let mut h = Fnv::new();
    for name in names {
        h.write_str(name);
        match summaries.summary(name) {
            Some(summary) => {
                h.write(&[1]);
                h.write_u64(summary_fingerprint(summary));
            }
            None => {
                h.write(&[2]);
                if let Some(proto) = unit.all_functions().find(|f| f.name == name) {
                    h.write_u64(proto.params.len() as u64);
                    for p in &proto.params {
                        h.write(&[u8::from(p.is_const_pointee)]);
                    }
                    h.write(&[u8::from(proto.is_variadic)]);
                }
            }
        }
    }
    h.finish()
}

/// The whole-program facts `main`'s exit-liveness demotion reads: for every
/// sibling function, the set of variables its body references (the same
/// name-occurrence notion the dead-exit-copy liveness scan uses). In a
/// linked program the caller additionally mixes in the
/// [`LinkContext::extern_refs_fingerprint`], covering siblings that live in
/// other units.
fn liveness_fingerprint(unit: &TranslationUnit, func_name: &str) -> u64 {
    let mut funcs: Vec<&FunctionDef> = unit.functions().filter(|f| f.name != func_name).collect();
    funcs.sort_by_key(|f| f.name.as_str());
    let mut h = Fnv::new();
    for f in funcs {
        h.write_str(&f.name);
        for v in function_referenced_vars(f) {
            h.write_str(&v);
        }
        h.write(&[0]);
    }
    h.finish()
}

/// Stage 5 — host/device data-flow planning, fanned out per function over
/// scoped worker threads when `parallelism > 1`. The produced plans and
/// diagnostics are merged back in source order, so the result is identical
/// to a serial run.
pub fn stage_plans(
    unit: &TranslationUnit,
    graphs: &GraphsArtifact,
    accesses: &AccessArtifact,
    summaries: &SummariesArtifact,
    options: &OmpDartOptions,
    parallelism: usize,
) -> PlansArtifact {
    run_plan_stage(
        unit,
        graphs,
        accesses,
        summaries,
        options,
        parallelism,
        None,
        None,
        None,
    )
}

/// Stage 5 with function-granular caching: functions whose key (source
/// text, environment, callee summaries, options) is unchanged re-use their
/// cached plan — relocated to the current node ids and byte offsets —
/// instead of re-running the data-flow analysis. The artifact's
/// `plan_cache_hits`/`plan_cache_misses` record the split.
#[allow(clippy::too_many_arguments)]
pub fn stage_plans_incremental(
    parsed: &ParsedUnit,
    graphs: &GraphsArtifact,
    accesses: &AccessArtifact,
    summaries: &SummariesArtifact,
    options: &OmpDartOptions,
    parallelism: usize,
    cache: &FunctionPlanCache,
    store: Option<&ArtifactStore>,
) -> PlansArtifact {
    run_plan_stage(
        &parsed.unit,
        graphs,
        accesses,
        summaries,
        options,
        parallelism,
        Some((parsed, cache)),
        store,
        None,
    )
}

/// Stage 5 under a whole-program [`LinkContext`]: callee effects resolve
/// against the *linked* summaries (cross-unit callees included), and
/// `main`'s exit liveness extends over every other unit's functions. The
/// function-granular cache keys incorporate the linked facts, so an edit in
/// another unit re-plans functions here only when a callee summary or the
/// external liveness surface it depends on actually changed.
#[allow(clippy::too_many_arguments)]
pub fn stage_plans_linked(
    parsed: &ParsedUnit,
    graphs: &GraphsArtifact,
    accesses: &AccessArtifact,
    summaries: &SummariesArtifact,
    options: &OmpDartOptions,
    parallelism: usize,
    cache: &FunctionPlanCache,
    store: Option<&ArtifactStore>,
    link: &LinkContext,
) -> PlansArtifact {
    run_plan_stage(
        &parsed.unit,
        graphs,
        accesses,
        summaries,
        options,
        parallelism,
        Some((parsed, cache)),
        store,
        Some(link),
    )
}

/// How one function's plan slot was produced.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PlanServe {
    /// Planned from scratch; records whether the function-level store was
    /// consulted (and therefore missed).
    Planned { store_consulted: bool },
    /// Served (relocated) from the in-memory function-plan cache.
    Memory,
    /// Served (relocated) from a function-level persistent store entry.
    Store,
}

#[allow(clippy::too_many_arguments)]
fn run_plan_stage(
    unit: &TranslationUnit,
    graphs: &GraphsArtifact,
    accesses: &AccessArtifact,
    summaries: &SummariesArtifact,
    options: &OmpDartOptions,
    parallelism: usize,
    incremental: Option<(&ParsedUnit, &FunctionPlanCache)>,
    store: Option<&ArtifactStore>,
    link: Option<&LinkContext>,
) -> PlansArtifact {
    let start = Instant::now();
    let funcs: Vec<_> = unit.functions().collect();
    let workers = parallelism.clamp(1, funcs.len().max(1));

    // Effective interprocedural facts: the linked whole-program summaries
    // when a link context is present, the unit-local ones otherwise.
    let effective_summaries: &ProgramSummaries = match link {
        Some(link) => &link.summaries,
        None => &summaries.summaries,
    };

    // Unit-wide key components, computed once and shared by every worker.
    let shared = incremental.map(|(parsed, cache)| {
        (
            parsed,
            cache,
            parsed.environment_hash(),
            options_fingerprint(options),
        )
    });

    // One slot per function:
    // (analyzed, plan, diagnostics, how served, fallbacks, key snapshot).
    type Slot = (
        bool,
        Option<MappingPlan>,
        Diagnostics,
        PlanServe,
        u64,
        Option<FunctionKeySnapshot>,
    );
    let plan_one = |idx: usize| -> Slot {
        let func = funcs[idx];
        let key = shared
            .as_ref()
            .map(|(parsed, _, env_hash, options_hash)| FunctionPlanKey {
                snippet: parsed.file.snippet(func.span).to_string(),
                env_hash: *env_hash,
                callees_hash: callees_fingerprint(func.name, accesses, effective_summaries, unit),
                refs_hash: if func.name == "main" {
                    let mut h = Fnv::new();
                    h.write_u64(liveness_fingerprint(unit, &func.name));
                    if let Some(link) = link {
                        h.write_u64(link.extern_refs_fingerprint);
                    }
                    h.finish()
                } else {
                    0
                },
                options_hash: *options_hash,
            });
        let snapshot = |key: &FunctionPlanKey, analyzed: bool, has_plan: bool, fallbacks: u64| {
            FunctionKeySnapshot {
                function: func.name,
                base_id: func.id.0,
                base_pos: func.span.start,
                snippet_len: key.snippet.len() as u32,
                env_hash: key.env_hash,
                callees_hash: key.callees_hash,
                refs_hash: key.refs_hash,
                options_hash: key.options_hash,
                analyzed,
                has_plan,
                fallbacks,
            }
        };
        if let (Some(key), Some((parsed, cache, ..))) = (&key, shared.as_ref()) {
            if let Some(entry) = cache.lookup(&parsed.name, func.name, key) {
                let did = i64::from(func.id.0) - i64::from(entry.base_id);
                let dpos = i64::from(func.span.start) - i64::from(entry.base_pos);
                let plan = entry.plan.as_ref().map(|p| relocate_plan(p, did, dpos));
                let snap = snapshot(key, entry.analyzed, plan.is_some(), entry.fallbacks);
                return (
                    entry.analyzed,
                    plan,
                    relocate_diagnostics(&entry.diagnostics, dpos),
                    PlanServe::Memory,
                    entry.fallbacks,
                    Some(snap),
                );
            }
        }

        // Function-level persistent store: `static` functions — the ones a
        // shared header can define in many units without violating the
        // one-definition rule — are additionally keyed into the store
        // under their full plan key. The second unit (or process) to see
        // an identical snippet under an identical environment is served
        // from disk instead of re-planning.
        let store_eligible = func.is_static && key.is_some() && store.is_some();
        if store_eligible {
            if let (Some(key), Some(store), Some((parsed, cache, ..))) =
                (&key, store, shared.as_ref())
            {
                if let Some(entry) = store.load_function(key) {
                    let did = i64::from(func.id.0) - i64::from(entry.base_id);
                    let dpos = i64::from(func.span.start) - i64::from(entry.base_pos);
                    let plan = entry.plan.as_ref().map(|p| relocate_plan(p, did, dpos));
                    // Seed the in-memory cache (in current coordinates) so
                    // later edits relocate from memory, not disk. Only
                    // diagnostics-free functions are persisted, so the
                    // seeded entry legitimately carries none.
                    cache.store(
                        Symbol::intern(&parsed.name),
                        func.name,
                        CachedFunctionPlan {
                            key: (*key).clone(),
                            base_id: func.id.0,
                            base_pos: func.span.start,
                            analyzed: entry.analyzed,
                            fallbacks: entry.fallbacks,
                            plan: plan.clone(),
                            diagnostics: Diagnostics::new(),
                        },
                    );
                    let snap = snapshot(key, entry.analyzed, plan.is_some(), entry.fallbacks);
                    return (
                        entry.analyzed,
                        plan,
                        Diagnostics::new(),
                        PlanServe::Store,
                        entry.fallbacks,
                        Some(snap),
                    );
                }
            }
        }

        let (analyzed, plan, diags, fallbacks) = (|| {
            let Some(graph) = graphs.graphs.function(&func.name) else {
                return (false, None, Diagnostics::new(), 0u64);
            };
            let Some(mut acc) = accesses.accesses.get(&func.name).cloned() else {
                return (true, None, Diagnostics::new(), 0u64);
            };
            let fallbacks = augment_with_call_effects_opts(
                &mut acc,
                unit,
                effective_summaries,
                options.pessimistic_globals,
            ) as u64;
            let mut diags = Diagnostics::new();
            let plan = plan_function_linked(
                unit,
                func,
                graph,
                &acc,
                &accesses.symbols[&func.name],
                &options.dataflow,
                &mut diags,
                link.map(|l| &*l.extern_refs),
            );
            (true, plan, diags, fallbacks)
        })();
        let snap = key
            .as_ref()
            .map(|key| snapshot(key, analyzed, plan.is_some(), fallbacks));
        if store_eligible && diags.is_empty() {
            if let (Some(key), Some(store)) = (&key, store) {
                // Write-back, best effort: functions with diagnostics are
                // not persisted (the warnings would vanish on a later hit).
                let _ = store.save_function(
                    key,
                    &StoredFunctionPlan {
                        base_id: func.id.0,
                        base_pos: func.span.start,
                        analyzed,
                        fallbacks,
                        plan: plan.clone(),
                    },
                );
            }
        }
        if let (Some(key), Some((parsed, cache, ..))) = (key, shared.as_ref()) {
            cache.store(
                Symbol::intern(&parsed.name),
                func.name,
                CachedFunctionPlan {
                    key,
                    base_id: func.id.0,
                    base_pos: func.span.start,
                    analyzed,
                    fallbacks,
                    plan: plan.clone(),
                    diagnostics: diags.clone(),
                },
            );
        }
        (
            analyzed,
            plan,
            diags,
            PlanServe::Planned {
                store_consulted: store_eligible,
            },
            fallbacks,
            snap,
        )
    };

    let slots = parallel_map_indexed(workers, funcs.len(), plan_one);

    let mut plans = Vec::new();
    let mut stats = AnalysisStats::default();
    let mut diagnostics = Diagnostics::new();
    let mut plan_cache_hits = 0u64;
    let mut plan_cache_misses = 0u64;
    let mut function_store_hits = 0u64;
    let mut function_store_misses = 0u64;
    let mut function_keys = Vec::new();
    for slot in slots {
        let (analyzed, plan, diags, serve, fallbacks, snap) = slot;
        if shared.is_some() {
            match serve {
                PlanServe::Memory => plan_cache_hits += 1,
                PlanServe::Store => function_store_hits += 1,
                PlanServe::Planned { store_consulted } => {
                    plan_cache_misses += 1;
                    if store_consulted {
                        function_store_misses += 1;
                    }
                }
            }
        }
        if analyzed {
            stats.functions_analyzed += 1;
        }
        stats.unknown_callee_fallbacks += fallbacks as usize;
        diagnostics.extend(diags);
        if let Some(snap) = snap {
            function_keys.push(snap);
        }
        if let Some(plan) = plan {
            stats.functions_with_kernels += 1;
            stats.kernels += plan.kernels.len();
            stats.mapped_variables += plan.mapped_variables().len();
            stats.map_clauses += plan.maps.len() + plan.enter_data.len() + plan.exit_data.len();
            stats.update_directives += plan.updates.len();
            stats.firstprivate_clauses += plan.firstprivate.len();
            plans.push(plan);
        }
    }
    PlansArtifact {
        plans,
        stats,
        diagnostics,
        plan_cache_hits,
        plan_cache_misses,
        function_store_hits,
        function_store_misses,
        function_keys,
        elapsed: start.elapsed(),
    }
}

/// Order-preserving parallel map over indices `0..len`, executed on the
/// session's persistent worker pool ([`crate::pool`]): indices are pulled
/// from a shared claim cursor into pre-sized result slots — no per-call
/// thread spawn, no per-slot lock. With one worker (or one item) the map
/// runs inline, the deterministic-debugging escape hatch. Shared by the
/// per-function plan fan-out, the whole-program driver, the link
/// wavefronts and [`BatchDriver::analyze_all`].
pub(crate) fn parallel_map_indexed<T, F>(workers: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    crate::pool::pool_map(workers, len, f)
}

/// Stage 6 — source-to-source rewriting.
pub fn stage_rewrite(
    parsed: &ParsedUnit,
    graphs: &GraphsArtifact,
    plans: &PlansArtifact,
) -> RewriteOutput {
    let start = Instant::now();
    let source = rewrite::apply_plans(&parsed.file, &parsed.unit, &graphs.graphs, &plans.plans);
    RewriteOutput {
        source,
        elapsed: start.elapsed(),
    }
}

// ---------------------------------------------------------------------------
// The assembled analysis of one translation unit
// ---------------------------------------------------------------------------

/// The summarize-phase artifacts of one translation unit: everything up to
/// (and including) the interprocedural summaries, but no plans yet. This is
/// the unit of work of the whole-program pipeline's parallel first phase;
/// the link stage consumes a set of these.
#[derive(Debug)]
pub struct SummarizedUnit {
    pub parsed: Arc<ParsedUnit>,
    pub graphs: Arc<GraphsArtifact>,
    pub accesses: Arc<AccessArtifact>,
    /// The *unit-local* summaries (closed-world fixed point). The link
    /// stage re-converges these across units.
    pub summaries: Arc<SummariesArtifact>,
    /// Lazily computed link-stage exports (referenced variables, exported
    /// interface, static-function names). A content-identical unit keeps
    /// its `Arc` across rounds, so the AST walks behind these run once per
    /// unit *content*, not once per relink — see
    /// [`crate::program::UnitExports`].
    pub(crate) link_exports: std::sync::OnceLock<crate::program::UnitExports>,
}

/// Every artifact of a fully analyzed translation unit.
#[derive(Debug)]
pub struct UnitAnalysis {
    pub parsed: Arc<ParsedUnit>,
    pub graphs: Arc<GraphsArtifact>,
    pub accesses: Arc<AccessArtifact>,
    pub summaries: Arc<SummariesArtifact>,
    pub plans: Arc<PlansArtifact>,
    pub rewrite: Arc<RewriteOutput>,
}

impl UnitAnalysis {
    /// Per-stage timings of this analysis.
    pub fn timings(&self) -> StageTimings {
        StageTimings {
            parse: self.parsed.elapsed,
            graphs: self.graphs.elapsed,
            accesses: self.accesses.elapsed,
            summaries: self.summaries.elapsed,
            plan: self.plans.elapsed,
            rewrite: self.rewrite.elapsed,
        }
    }

    /// Assemble the legacy [`TransformResult`] from the staged artifacts.
    pub fn to_transform_result(&self) -> TransformResult {
        let mut diagnostics = self.parsed.diagnostics.clone();
        diagnostics.extend(self.plans.diagnostics.clone());
        TransformResult {
            transformed_source: self.rewrite.source.clone(),
            plans: self.plans.plans.clone(),
            diagnostics,
            stats: self.plans.stats,
            tool_time: self.timings().total(),
        }
    }

    /// Human-readable justification of every mapping decision: one line per
    /// construct, with the deciding source location.
    pub fn explain(&self) -> String {
        explain_plans(&self.plans.plans, Some(&self.parsed.file))
    }

    /// The versioned plan-JSON document for this unit's plans.
    pub fn plans_json(&self) -> String {
        plans_to_json(&self.plans.plans)
    }
}

// ---------------------------------------------------------------------------
// AnalysisSession: cached, reusable pipeline driver
// ---------------------------------------------------------------------------

/// Cache hit/miss counters of an [`AnalysisSession`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `parse` calls served from the parse cache.
    pub parse_hits: u64,
    /// `parse` calls that ran the frontend.
    pub parse_misses: u64,
    /// `analyze` calls served entirely from the artifact cache.
    pub analysis_hits: u64,
    /// `analyze` calls that ran the pipeline.
    pub analysis_misses: u64,
    /// Functions whose plan was served (relocated) from the
    /// function-granular plan cache instead of re-running the data-flow
    /// analysis.
    pub function_plan_hits: u64,
    /// Functions that were actually planned.
    pub function_plan_misses: u64,
    /// Functions whose classified accesses were served (relocated) from
    /// the function-granular access cache.
    pub function_access_hits: u64,
    /// Functions whose accesses were re-collected.
    pub function_access_misses: u64,
    /// Functions whose local (direct-effect) summary seed was served from
    /// the function-granular summary cache.
    pub function_summary_hits: u64,
    /// Functions whose local summary seed was recomputed.
    pub function_summary_misses: u64,
    /// Functions the incremental link fixed point re-derived from their
    /// seeds (the reverse call-graph cone of the edited functions). Cold
    /// links — where no previous converged state exists — add nothing
    /// here; an unchanged relink adds zero.
    pub relink_reseeded_functions: u64,
    /// `analyze` calls whose plans were served from the persistent
    /// artifact store (when a `cache_dir` is configured).
    pub store_hits: u64,
    /// `analyze` calls that ran the planner while a store was configured
    /// (each one is written back to the store afterwards).
    pub store_misses: u64,
    /// Functions whose plan was served from a *function-level* persistent
    /// store entry (shared `static` header functions warm across units and
    /// across processes; see [`crate::store::ArtifactStore`]).
    pub function_store_hits: u64,
    /// Function-store lookups that missed (each true planning run of an
    /// eligible function writes one entry back).
    pub function_store_misses: u64,
    /// `summarize` calls (whole-program phase 1) served from the cache.
    pub summarize_hits: u64,
    /// `summarize` calls that ran the parse→summaries stages.
    pub summarize_misses: u64,
    /// Linked per-unit analyses (whole-program phase 3) served entirely
    /// from the cache.
    pub linked_hits: u64,
    /// Linked per-unit analyses that ran planning (or hit the store).
    pub linked_misses: u64,
    /// Units served by the identity fast path: their summarized artifact
    /// (same `Arc`) and imports fingerprint matched the previous
    /// whole-program round, so the prior linked analysis was returned
    /// without content hashing, cache probing, relocation or re-planning.
    pub fast_path_hits: u64,
}

#[derive(Debug, Default)]
struct CacheCounters {
    parse_hits: AtomicU64,
    parse_misses: AtomicU64,
    analysis_hits: AtomicU64,
    analysis_misses: AtomicU64,
    function_plan_hits: AtomicU64,
    function_plan_misses: AtomicU64,
    function_access_hits: AtomicU64,
    function_access_misses: AtomicU64,
    function_summary_hits: AtomicU64,
    function_summary_misses: AtomicU64,
    relink_reseeded_functions: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    function_store_hits: AtomicU64,
    function_store_misses: AtomicU64,
    summarize_hits: AtomicU64,
    summarize_misses: AtomicU64,
    linked_hits: AtomicU64,
    linked_misses: AtomicU64,
    fast_path_hits: AtomicU64,
}

/// Linked per-unit analyses keyed by `(content hash, imports fingerprint)`.
type LinkedCacheMap = ShardMap<(u64, u64), Vec<Arc<UnitAnalysis>>>;

/// Cumulative per-stage wall time as relaxed atomics, so concurrent stage
/// calls accumulate without a shared lock (the old `Mutex<StageTimings>`
/// serialized every stage completion across all workers).
#[derive(Debug, Default)]
struct AtomicStageTimings {
    parse: AtomicU64,
    graphs: AtomicU64,
    accesses: AtomicU64,
    summaries: AtomicU64,
    plan: AtomicU64,
    rewrite: AtomicU64,
}

impl AtomicStageTimings {
    fn add(&self, stage: Stage, elapsed: Duration) {
        let ns = elapsed.as_nanos() as u64;
        let counter = match stage {
            Stage::Parse => &self.parse,
            Stage::Graphs => &self.graphs,
            Stage::Accesses => &self.accesses,
            Stage::Summaries => &self.summaries,
            Stage::Plan => &self.plan,
            Stage::Rewrite => &self.rewrite,
        };
        counter.fetch_add(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StageTimings {
        let ns = |c: &AtomicU64| Duration::from_nanos(c.load(Ordering::Relaxed));
        StageTimings {
            parse: ns(&self.parse),
            graphs: ns(&self.graphs),
            accesses: ns(&self.accesses),
            summaries: ns(&self.summaries),
            plan: ns(&self.plan),
            rewrite: ns(&self.rewrite),
        }
    }
}

/// A reusable, thread-safe driver for the staged pipeline.
///
/// The session caches [`ParsedUnit`]s and complete [`UnitAnalysis`] bundles
/// indexed by the FNV-1a hash of (file name, source text) — every hit is
/// verified against the full `(name, source)` pair, so a hash collision can
/// never return another file's artifacts. On top of that sit two
/// incremental layers:
///
/// * a [`FunctionPlanCache`]: when an edited source re-enters `analyze`,
///   only functions whose key (own text, environment, callee summaries)
///   changed are re-planned; unchanged functions re-use their plan,
///   relocated to the new node ids and byte offsets
///   ([`CacheStats::function_plan_hits`] proves it);
/// * an optional persistent [`ArtifactStore`]
///   ([`AnalysisSession::with_cache_dir`]): plans are loaded from disk on a
///   content match and written back after every miss, so a fresh process
///   starts warm.
///
/// Stage methods can also be called individually to run the pipeline step
/// by step.
#[derive(Debug)]
pub struct AnalysisSession {
    options: OmpDartOptions,
    parallelism: usize,
    parse_cache: ShardMap<u64, Vec<Arc<ParsedUnit>>>,
    unit_cache: ShardMap<u64, Vec<Arc<UnitAnalysis>>>,
    /// Summarize-phase artifacts of whole-program analyses, keyed like the
    /// other caches by content hash with full `(name, source)` verification.
    summarize_cache: ShardMap<u64, Vec<Arc<SummarizedUnit>>>,
    /// Linked per-unit analyses, keyed by `(content hash, imports
    /// fingerprint)`: the same unit content planned under different link
    /// surroundings yields different plans and must not alias.
    linked_cache: LinkedCacheMap,
    function_plans: FunctionPlanCache,
    function_accesses: FunctionAccessCache,
    function_summaries: FunctionSummaryCache,
    /// The previously converged whole-program link state (seed
    /// fingerprints + converged cross-unit summaries), used by
    /// [`crate::program::Program::relink`] to re-seed only the edited
    /// functions' call-graph cone instead of re-running the merged fixed
    /// point from scratch.
    link_state: Mutex<Option<Arc<LinkState>>>,
    store: Option<ArtifactStore>,
    /// Write-behind buffer of linked store write-backs: `analyze_linked`
    /// queues here and [`AnalysisSession::flush_store_writes`] flushes the
    /// whole batch through one [`ArtifactStore::save_many`] call, so a
    /// 1000-unit cold link pays one directory sweep instead of 1000.
    pending_saves: Mutex<Vec<PendingUnitSave>>,
    /// The previous whole-program round's per-unit artifacts, keyed for
    /// the identity fast path: a unit whose summarized `Arc` and imports
    /// fingerprint match its entry is served the prior linked analysis
    /// with no hashing, relocation or re-planning.
    last_round: Mutex<Option<Arc<crate::program::ProgramRound>>>,
    counters: CacheCounters,
    cumulative: AtomicStageTimings,
}

impl Default for AnalysisSession {
    fn default() -> Self {
        AnalysisSession::new()
    }
}

impl Drop for AnalysisSession {
    fn drop(&mut self) {
        // Last-resort flush of the write-behind buffer: queued linked
        // write-backs must reach the store even if no program driver ever
        // called `flush_store_writes`.
        self.flush_store_writes();
    }
}

impl AnalysisSession {
    /// A session with default options.
    pub fn new() -> AnalysisSession {
        AnalysisSession::with_options(OmpDartOptions::default())
    }

    /// A session with explicit options.
    pub fn with_options(options: OmpDartOptions) -> AnalysisSession {
        AnalysisSession {
            options,
            parallelism: default_parallelism(),
            parse_cache: ShardMap::new(),
            unit_cache: ShardMap::new(),
            summarize_cache: ShardMap::new(),
            linked_cache: ShardMap::new(),
            function_plans: FunctionPlanCache::new(),
            function_accesses: FunctionAccessCache::new(),
            function_summaries: FunctionSummaryCache::new(),
            link_state: Mutex::new(None),
            store: None,
            pending_saves: Mutex::new(Vec::new()),
            last_round: Mutex::new(None),
            counters: CacheCounters::default(),
            cumulative: AtomicStageTimings::default(),
        }
    }

    /// Override the per-function fan-out width of the planning stage.
    pub fn with_parallelism(mut self, workers: usize) -> AnalysisSession {
        self.parallelism = workers.max(1);
        self
    }

    /// Attach a persistent [`ArtifactStore`] rooted at `dir`: plans are
    /// loaded from disk when the full content key matches and written back
    /// after every planning run, so a new process with the same `dir`
    /// starts warm. Entries produced under different options, a different
    /// format version, or corrupted on disk are rejected, never trusted.
    /// A store-served [`UnitAnalysis`] carries empty access/summary
    /// artifacts — they are intermediates of the skipped planning stage.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> AnalysisSession {
        self.store = Some(ArtifactStore::open(dir));
        self
    }

    /// Attach an already-configured [`ArtifactStore`] (e.g. one with a
    /// size cap from [`ArtifactStore::with_max_bytes`]).
    pub fn with_store(mut self, store: ArtifactStore) -> AnalysisSession {
        self.store = Some(store);
        self
    }

    /// The attached persistent artifact store, if any.
    pub fn artifact_store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// The session's function-granular plan cache.
    pub fn function_plan_cache(&self) -> &FunctionPlanCache {
        &self.function_plans
    }

    /// The session's function-granular access cache.
    pub fn function_access_cache(&self) -> &FunctionAccessCache {
        &self.function_accesses
    }

    /// The session's function-granular summary cache.
    pub fn function_summary_cache(&self) -> &FunctionSummaryCache {
        &self.function_summaries
    }

    /// Flush the write-behind buffer of linked store write-backs in one
    /// [`ArtifactStore::save_many`] batch. Returns the number of unit
    /// entries written. Called once per whole-program analysis by
    /// [`crate::program::ProgramDriver::analyze_program`]; dropping the
    /// session flushes any stragglers, so callers driving
    /// [`Self::analyze_linked`] by hand lose nothing — at the latest, the
    /// entries land on disk when the session goes away.
    pub fn flush_store_writes(&self) -> usize {
        let pending: Vec<PendingUnitSave> =
            std::mem::take(&mut *self.pending_saves.lock().unwrap());
        if pending.is_empty() {
            return 0;
        }
        let Some(store) = &self.store else {
            return 0;
        };
        let count = pending.len();
        // Drain the batch through the worker pool: each entry keeps its own
        // tmp-file + rename atomicity (`save_one`), then one legacy sweep
        // and one GC cover the whole batch (`finish_batch`) — the same
        // on-disk effect as the old serial `save_many`, minus the serial
        // write loop.
        if store.prepare_dir().is_ok() {
            let paths = parallel_map_indexed(self.parallelism, count, |i| {
                store.save_one(&self.options, &pending[i]).ok()
            });
            let names: Vec<&str> = pending.iter().map(|p| p.name.as_str()).collect();
            let written: Vec<std::path::PathBuf> = paths.into_iter().flatten().collect();
            store.finish_batch(&names, &self.options, &written);
        }
        count
    }

    /// The previously converged link state, if any (whole-program
    /// incremental relinking; see [`crate::program::Program::relink`]).
    pub(crate) fn take_link_state(&self) -> Option<Arc<LinkState>> {
        self.link_state.lock().unwrap().clone()
    }

    /// Record the converged link state of the latest whole-program link
    /// and the number of functions the incremental fixed point re-seeded.
    pub(crate) fn note_link(&self, state: Arc<LinkState>, reseeded: u64) {
        *self.link_state.lock().unwrap() = Some(state);
        self.counters
            .relink_reseeded_functions
            .fetch_add(reseeded, Ordering::Relaxed);
    }

    /// The previous whole-program round's artifacts (identity fast path).
    pub(crate) fn last_round(&self) -> Option<Arc<crate::program::ProgramRound>> {
        self.last_round.lock().unwrap().clone()
    }

    /// Record this whole-program round's artifacts for the next round's
    /// identity fast path.
    pub(crate) fn note_round(&self, round: Arc<crate::program::ProgramRound>) {
        *self.last_round.lock().unwrap() = Some(round);
    }

    /// Count units served by the identity fast path.
    pub(crate) fn count_fast_path(&self, units: u64) {
        self.counters
            .fast_path_hits
            .fetch_add(units, Ordering::Relaxed);
    }

    /// Drop cached parse/unit artifacts of `name` whose content differs
    /// from `source`. Long-lived front doors (`ompdart watch`/`serve`)
    /// call this after re-analyzing an edited file so that only the latest
    /// version of each unit stays pinned in memory — without it, every
    /// save of every watched file would accumulate a full artifact bundle
    /// for the session's lifetime. (The function-plan cache already keeps
    /// one entry per function and needs no eviction.)
    pub fn evict_stale_versions(&self, name: &str, source: &str) {
        self.parse_cache.retain(|_, bucket| {
            bucket.retain(|p| p.name != name || p.file.text() == source);
            !bucket.is_empty()
        });
        self.unit_cache.retain(|_, bucket| {
            bucket.retain(|a| a.parsed.name != name || a.parsed.file.text() == source);
            !bucket.is_empty()
        });
        self.summarize_cache.retain(|_, bucket| {
            bucket.retain(|s| s.parsed.name != name || s.parsed.file.text() == source);
            !bucket.is_empty()
        });
        self.linked_cache.retain(|_, bucket| {
            bucket.retain(|a| a.parsed.name != name || a.parsed.file.text() == source);
            !bucket.is_empty()
        });
    }

    /// The active options.
    pub fn options(&self) -> &OmpDartOptions {
        &self.options
    }

    /// The configured worker fan-out width.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Cache hit/miss counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            parse_hits: self.counters.parse_hits.load(Ordering::Relaxed),
            parse_misses: self.counters.parse_misses.load(Ordering::Relaxed),
            analysis_hits: self.counters.analysis_hits.load(Ordering::Relaxed),
            analysis_misses: self.counters.analysis_misses.load(Ordering::Relaxed),
            function_plan_hits: self.counters.function_plan_hits.load(Ordering::Relaxed),
            function_plan_misses: self.counters.function_plan_misses.load(Ordering::Relaxed),
            function_access_hits: self.counters.function_access_hits.load(Ordering::Relaxed),
            function_access_misses: self.counters.function_access_misses.load(Ordering::Relaxed),
            function_summary_hits: self.counters.function_summary_hits.load(Ordering::Relaxed),
            function_summary_misses: self
                .counters
                .function_summary_misses
                .load(Ordering::Relaxed),
            relink_reseeded_functions: self
                .counters
                .relink_reseeded_functions
                .load(Ordering::Relaxed),
            store_hits: self.counters.store_hits.load(Ordering::Relaxed),
            store_misses: self.counters.store_misses.load(Ordering::Relaxed),
            function_store_hits: self.counters.function_store_hits.load(Ordering::Relaxed),
            function_store_misses: self.counters.function_store_misses.load(Ordering::Relaxed),
            summarize_hits: self.counters.summarize_hits.load(Ordering::Relaxed),
            summarize_misses: self.counters.summarize_misses.load(Ordering::Relaxed),
            linked_hits: self.counters.linked_hits.load(Ordering::Relaxed),
            linked_misses: self.counters.linked_misses.load(Ordering::Relaxed),
            fast_path_hits: self.counters.fast_path_hits.load(Ordering::Relaxed),
        }
    }

    /// Cumulative per-stage wall-clock time spent by this session (cache
    /// hits add nothing — that is the point).
    pub fn timings(&self) -> StageTimings {
        self.cumulative.snapshot()
    }

    /// Stage 1, cached: parse source text. The content hash only indexes
    /// the cache; a hit requires the stored `(name, source)` to match byte
    /// for byte, so colliding keys chain instead of aliasing.
    pub fn parse(&self, name: &str, source: &str) -> Result<Arc<ParsedUnit>, StageError> {
        let key = content_hash(name, source);
        let find = |bucket: &[Arc<ParsedUnit>]| {
            bucket
                .iter()
                .find(|p| p.name == name && p.file.text() == source)
                .cloned()
        };
        if let Some(hit) = self.parse_cache.read(&key, |b| b.and_then(|b| find(b))) {
            self.counters.parse_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.counters.parse_misses.fetch_add(1, Ordering::Relaxed);
        let parsed = Arc::new(stage_parse(name, source)?);
        self.cumulative.add(Stage::Parse, parsed.elapsed);
        // First writer wins: if a concurrent call raced us to the same key,
        // return its artifact so identical content always yields one Arc.
        Ok(self.parse_cache.update(key, |bucket| {
            if let Some(winner) = find(bucket) {
                return winner;
            }
            bucket.push(Arc::clone(&parsed));
            Arc::clone(&parsed)
        }))
    }

    /// Stage 2: build the hybrid AST-CFG.
    pub fn graphs(&self, parsed: &ParsedUnit) -> Arc<GraphsArtifact> {
        let artifact = Arc::new(stage_graphs(&parsed.unit));
        self.cumulative.add(Stage::Graphs, artifact.elapsed);
        artifact
    }

    /// Stage 3: classify memory accesses, with the function-granular access
    /// cache — functions whose own text and environment are unchanged since
    /// a previous call of this session are served by relocation instead of
    /// a body walk ([`CacheStats::function_access_hits`] proves it).
    pub fn accesses(&self, parsed: &ParsedUnit, graphs: &GraphsArtifact) -> Arc<AccessArtifact> {
        let env_hash = parsed.environment_hash();
        let artifact = Arc::new(stage_accesses_cached(
            Some(parsed),
            &parsed.unit,
            graphs,
            Some((&self.function_accesses, env_hash)),
        ));
        self.counters
            .function_access_hits
            .fetch_add(artifact.cache_hits, Ordering::Relaxed);
        self.counters
            .function_access_misses
            .fetch_add(artifact.cache_misses, Ordering::Relaxed);
        self.cumulative.add(Stage::Accesses, artifact.elapsed);
        artifact
    }

    /// Stage 4: interprocedural summaries, with the function-granular
    /// summary cache — unchanged functions re-use their cached local seed
    /// and only the call-site fixed point re-runs
    /// ([`CacheStats::function_summary_hits`] proves it).
    pub fn summaries(
        &self,
        parsed: &ParsedUnit,
        accesses: &AccessArtifact,
    ) -> Arc<SummariesArtifact> {
        let env_hash = parsed.environment_hash();
        let artifact = Arc::new(stage_summaries_cached(
            Some(parsed),
            &parsed.unit,
            accesses,
            &self.options,
            Some((&self.function_summaries, env_hash)),
        ));
        self.counters
            .function_summary_hits
            .fetch_add(artifact.cache_hits, Ordering::Relaxed);
        self.counters
            .function_summary_misses
            .fetch_add(artifact.cache_misses, Ordering::Relaxed);
        self.cumulative.add(Stage::Summaries, artifact.elapsed);
        artifact
    }

    /// Stage 5: data-flow planning with per-function fan-out and the
    /// function-granular plan cache — functions whose key is unchanged
    /// since a previous `plan`/`analyze` call of this session are served by
    /// relocation instead of re-analysis.
    pub fn plan(
        &self,
        parsed: &ParsedUnit,
        graphs: &GraphsArtifact,
        accesses: &AccessArtifact,
        summaries: &SummariesArtifact,
    ) -> Arc<PlansArtifact> {
        let artifact = Arc::new(stage_plans_incremental(
            parsed,
            graphs,
            accesses,
            summaries,
            &self.options,
            self.parallelism,
            &self.function_plans,
            self.store.as_ref(),
        ));
        self.counters
            .function_plan_hits
            .fetch_add(artifact.plan_cache_hits, Ordering::Relaxed);
        self.counters
            .function_plan_misses
            .fetch_add(artifact.plan_cache_misses, Ordering::Relaxed);
        self.counters
            .function_store_hits
            .fetch_add(artifact.function_store_hits, Ordering::Relaxed);
        self.counters
            .function_store_misses
            .fetch_add(artifact.function_store_misses, Ordering::Relaxed);
        self.cumulative.add(Stage::Plan, artifact.elapsed);
        artifact
    }

    /// Stage 6: source rewriting.
    pub fn rewrite(
        &self,
        parsed: &ParsedUnit,
        graphs: &GraphsArtifact,
        plans: &PlansArtifact,
    ) -> Arc<RewriteOutput> {
        let artifact = Arc::new(stage_rewrite(parsed, graphs, plans));
        self.cumulative.add(Stage::Rewrite, artifact.elapsed);
        artifact
    }

    /// Run (or fetch from the cache) the complete pipeline for one source.
    ///
    /// Lookup order: the in-memory unit cache (full-key verified), then —
    /// when a `cache_dir` is attached — the persistent store (plans loaded
    /// from disk, only parse/graphs/rewrite re-run), then the full
    /// pipeline, whose planning stage consults the function-granular cache.
    pub fn analyze(&self, name: &str, source: &str) -> Result<Arc<UnitAnalysis>, StageError> {
        self.analyze_served(name, source).map(|(unit, _)| unit)
    }

    /// [`Self::analyze`] plus a *per-request* [`UnitServe`] report derived
    /// from this call's own cache lookups and planning artifacts — never
    /// from before/after deltas of the session-global counters, which are
    /// only sound when requests cannot interleave. Long-lived concurrent
    /// front doors (`ompdart serve`, the `ompdartd` daemon) report how each
    /// individual request was served through this.
    pub fn analyze_served(
        &self,
        name: &str,
        source: &str,
    ) -> Result<(Arc<UnitAnalysis>, UnitServe), StageError> {
        let key = content_hash(name, source);
        let find = |bucket: &[Arc<UnitAnalysis>]| {
            bucket
                .iter()
                .find(|a| a.parsed.name == name && a.parsed.file.text() == source)
                .cloned()
        };
        if let Some(hit) = self.unit_cache.read(&key, |b| b.and_then(|b| find(b))) {
            self.counters.analysis_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit, UnitServe::Cached));
        }
        self.counters
            .analysis_misses
            .fetch_add(1, Ordering::Relaxed);
        let parsed = self.parse(name, source)?;
        if self.options.reject_existing_mappings {
            check_input_contract(&parsed)?;
        }
        let graphs = self.graphs(&parsed);

        // Persistent-store fast path: a verified content match on disk
        // skips access classification, summaries and planning entirely.
        let stored = self.store.as_ref().and_then(|store| {
            let hit = store.load(source, &self.options, UNLINKED);
            let counter = if hit.is_some() {
                &self.counters.store_hits
            } else {
                &self.counters.store_misses
            };
            counter.fetch_add(1, Ordering::Relaxed);
            hit
        });
        let (analysis, served) = match stored {
            Some(stored) => {
                // Re-seed the function-granular plan cache from the
                // persisted per-function keys, so the first *edit* after
                // this warm start is already incremental.
                self.seed_function_plans(name, source, &stored);
                let plans = Arc::new(PlansArtifact {
                    plans: stored.plans,
                    stats: stored.stats,
                    diagnostics: Diagnostics::new(),
                    plan_cache_hits: 0,
                    plan_cache_misses: 0,
                    function_store_hits: 0,
                    function_store_misses: 0,
                    function_keys: stored.functions,
                    elapsed: Duration::ZERO,
                });
                let rewrite = self.rewrite(&parsed, &graphs, &plans);
                // A store-served analysis carries empty access/summary
                // artifacts: they are intermediates of planning, which was
                // skipped.
                (
                    Arc::new(UnitAnalysis {
                        parsed,
                        graphs,
                        accesses: Arc::new(AccessArtifact::empty()),
                        summaries: Arc::new(SummariesArtifact::empty()),
                        plans,
                        rewrite,
                    }),
                    UnitServe::Store,
                )
            }
            None => {
                let accesses = self.accesses(&parsed, &graphs);
                let summaries = self.summaries(&parsed, &accesses);
                let plans = self.plan(&parsed, &graphs, &accesses, &summaries);
                let rewrite = self.rewrite(&parsed, &graphs, &plans);
                if let Some(store) = &self.store {
                    // Write-back, best effort. Units with planning
                    // diagnostics are not persisted: the warnings would be
                    // lost on a later store hit.
                    if plans.diagnostics.is_empty() {
                        let _ = store.save(
                            name,
                            source,
                            &self.options,
                            UNLINKED,
                            &plans.plans,
                            &plans.stats,
                            &plans.function_keys,
                        );
                    }
                }
                let served = UnitServe::Planned {
                    reused: plans.plan_cache_hits,
                    replanned: plans.plan_cache_misses,
                };
                (
                    Arc::new(UnitAnalysis {
                        parsed,
                        graphs,
                        accesses,
                        summaries,
                        plans,
                        rewrite,
                    }),
                    served,
                )
            }
        };
        // First writer wins, as in `parse`: concurrent analyses of the same
        // content may both compute (benign duplicated work), but every
        // caller observes the same cached Arc afterwards. The serve report
        // stays this request's own — the duplicated work really happened.
        let winner = self.unit_cache.update(key, |bucket| {
            if let Some(winner) = find(bucket) {
                return winner;
            }
            bucket.push(Arc::clone(&analysis));
            Arc::clone(&analysis)
        });
        Ok((winner, served))
    }

    /// Re-seed the in-memory function-plan cache from a store hit's
    /// persisted per-function keys. Snippets are recovered from the
    /// verified source; entries whose recorded byte range no longer fits
    /// (malformed or truncated documents) are skipped, never trusted.
    fn seed_function_plans(&self, name: &str, source: &str, stored: &StoredUnit) {
        for key in &stored.functions {
            let start = key.base_pos as usize;
            let Some(end) = start.checked_add(key.snippet_len as usize) else {
                continue;
            };
            if end > source.len()
                || !source.is_char_boundary(start)
                || !source.is_char_boundary(end)
            {
                continue;
            }
            let plan = if key.has_plan {
                let Some(plan) = stored
                    .plans
                    .iter()
                    .find(|p| p.function == key.function.as_str())
                    .cloned()
                else {
                    continue;
                };
                Some(plan)
            } else {
                None
            };
            self.function_plans.store(
                Symbol::intern(name),
                key.function,
                CachedFunctionPlan {
                    key: FunctionPlanKey {
                        snippet: source[start..end].to_string(),
                        env_hash: key.env_hash,
                        callees_hash: key.callees_hash,
                        refs_hash: key.refs_hash,
                        options_hash: key.options_hash,
                    },
                    base_id: key.base_id,
                    base_pos: key.base_pos,
                    analyzed: key.analyzed,
                    fallbacks: key.fallbacks,
                    plan,
                    // Only units without planning diagnostics are persisted,
                    // so the seeded entries legitimately carry none.
                    diagnostics: Diagnostics::new(),
                },
            );
        }
    }

    /// Whole-program phase 1, cached: everything up to the interprocedural
    /// summaries for one unit. Shares the parse cache with [`Self::analyze`]
    /// and applies the same full-key verification discipline.
    pub fn summarize(&self, name: &str, source: &str) -> Result<Arc<SummarizedUnit>, StageError> {
        let key = content_hash(name, source);
        let find = |bucket: &[Arc<SummarizedUnit>]| {
            bucket
                .iter()
                .find(|s| s.parsed.name == name && s.parsed.file.text() == source)
                .cloned()
        };
        if let Some(hit) = self.summarize_cache.read(&key, |b| b.and_then(|b| find(b))) {
            self.counters.summarize_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.counters
            .summarize_misses
            .fetch_add(1, Ordering::Relaxed);
        let parsed = self.parse(name, source)?;
        if self.options.reject_existing_mappings {
            check_input_contract(&parsed)?;
        }
        let graphs = self.graphs(&parsed);
        let accesses = self.accesses(&parsed, &graphs);
        let summaries = self.summaries(&parsed, &accesses);
        let summarized = Arc::new(SummarizedUnit {
            parsed,
            graphs,
            accesses,
            summaries,
            link_exports: std::sync::OnceLock::new(),
        });
        Ok(self.summarize_cache.update(key, |bucket| {
            if let Some(winner) = find(bucket) {
                return winner;
            }
            bucket.push(Arc::clone(&summarized));
            Arc::clone(&summarized)
        }))
    }

    /// Whole-program phase 3 for one unit: plan and rewrite under a
    /// [`LinkContext`]. Lookup order mirrors [`Self::analyze`]: the linked
    /// in-memory cache (keyed by content *and* the unit's imported-interface
    /// fingerprint), then the persistent store under the same link key, then
    /// the linked planning stage, whose function-granular cache keys
    /// incorporate the cross-unit facts.
    pub fn analyze_linked(
        &self,
        unit: &Arc<SummarizedUnit>,
        link: &LinkContext,
    ) -> (Arc<UnitAnalysis>, UnitServe) {
        let name = unit.parsed.name.as_str();
        let source = unit.parsed.file.text();
        let key = (content_hash(name, source), link.imports_fingerprint);
        let find = |bucket: &[Arc<UnitAnalysis>]| {
            bucket
                .iter()
                .find(|a| a.parsed.name == name && a.parsed.file.text() == source)
                .cloned()
        };
        if let Some(hit) = self.linked_cache.read(&key, |b| b.and_then(|b| find(b))) {
            self.counters.linked_hits.fetch_add(1, Ordering::Relaxed);
            return (hit, UnitServe::Cached);
        }
        self.counters.linked_misses.fetch_add(1, Ordering::Relaxed);

        let stored = self.store.as_ref().and_then(|store| {
            let hit = store.load(source, &self.options, link.imports_fingerprint);
            let counter = if hit.is_some() {
                &self.counters.store_hits
            } else {
                &self.counters.store_misses
            };
            counter.fetch_add(1, Ordering::Relaxed);
            hit
        });
        let (analysis, served) = match stored {
            Some(stored) => {
                self.seed_function_plans(name, source, &stored);
                let plans = Arc::new(PlansArtifact {
                    plans: stored.plans,
                    stats: stored.stats,
                    diagnostics: Diagnostics::new(),
                    plan_cache_hits: 0,
                    plan_cache_misses: 0,
                    function_store_hits: 0,
                    function_store_misses: 0,
                    function_keys: stored.functions,
                    elapsed: Duration::ZERO,
                });
                let rewrite = self.rewrite(&unit.parsed, &unit.graphs, &plans);
                (
                    Arc::new(UnitAnalysis {
                        parsed: Arc::clone(&unit.parsed),
                        graphs: Arc::clone(&unit.graphs),
                        accesses: Arc::clone(&unit.accesses),
                        summaries: Arc::clone(&unit.summaries),
                        plans,
                        rewrite,
                    }),
                    UnitServe::Store,
                )
            }
            None => {
                let plans = Arc::new(stage_plans_linked(
                    &unit.parsed,
                    &unit.graphs,
                    &unit.accesses,
                    &unit.summaries,
                    &self.options,
                    self.parallelism,
                    &self.function_plans,
                    self.store.as_ref(),
                    link,
                ));
                self.counters
                    .function_plan_hits
                    .fetch_add(plans.plan_cache_hits, Ordering::Relaxed);
                self.counters
                    .function_plan_misses
                    .fetch_add(plans.plan_cache_misses, Ordering::Relaxed);
                self.counters
                    .function_store_hits
                    .fetch_add(plans.function_store_hits, Ordering::Relaxed);
                self.counters
                    .function_store_misses
                    .fetch_add(plans.function_store_misses, Ordering::Relaxed);
                self.cumulative.add(Stage::Plan, plans.elapsed);
                let rewrite = self.rewrite(&unit.parsed, &unit.graphs, &plans);
                if self.store.is_some() && plans.diagnostics.is_empty() {
                    // Write-behind: queue the store write-back instead of
                    // paying a per-unit directory sweep here. The buffer is
                    // flushed in one `save_many` batch by
                    // [`Self::flush_store_writes`] (the program driver
                    // calls it once per whole-program analysis; dropping
                    // the session flushes as a last resort).
                    self.pending_saves.lock().unwrap().push(PendingUnitSave {
                        name: name.to_string(),
                        source: source.to_string(),
                        link: link.imports_fingerprint,
                        plans: plans.plans.clone(),
                        stats: plans.stats,
                        functions: plans.function_keys.clone(),
                    });
                }
                (
                    Arc::new(UnitAnalysis {
                        parsed: Arc::clone(&unit.parsed),
                        graphs: Arc::clone(&unit.graphs),
                        accesses: Arc::clone(&unit.accesses),
                        summaries: Arc::clone(&unit.summaries),
                        plans: Arc::clone(&plans),
                        rewrite,
                    }),
                    UnitServe::Planned {
                        reused: plans.plan_cache_hits,
                        replanned: plans.plan_cache_misses,
                    },
                )
            }
        };
        let winner = self.linked_cache.update(key, |bucket| {
            if let Some(winner) = find(bucket) {
                return winner;
            }
            bucket.push(Arc::clone(&analysis));
            Arc::clone(&analysis)
        });
        (winner, served)
    }

    /// Run the pipeline and assemble the legacy [`TransformResult`]. The
    /// reported `tool_time` is the wall-clock time of this call, so cached
    /// invocations report near-zero time.
    #[deprecated(
        note = "use `Ompdart::builder().build().analyze(..)` (or `AnalysisSession::analyze`) \
                and read the `Analysis`/`UnitAnalysis` artifacts instead"
    )]
    pub fn transform(&self, name: &str, source: &str) -> Result<TransformResult, StageError> {
        let start = Instant::now();
        let analysis = self.analyze(name, source)?;
        let mut result = analysis.to_transform_result();
        result.tool_time = start.elapsed();
        Ok(result)
    }
}

/// Worker count used by default for batch, per-function and link-wavefront
/// fan-out (see [`crate::OmpDartOptions::effective_link_threads`]).
pub(crate) fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 8)
}

// ---------------------------------------------------------------------------
// BatchDriver: many translation units, concurrently
// ---------------------------------------------------------------------------

/// One slot of a batch run: the analysis of a unit or its stage error.
pub type BatchResult = Result<Arc<UnitAnalysis>, StageError>;

/// Analyzes many translation units concurrently over one shared
/// [`AnalysisSession`] (and therefore one shared artifact cache).
#[derive(Debug)]
pub struct BatchDriver {
    session: Arc<AnalysisSession>,
    threads: usize,
}

impl BatchDriver {
    /// A driver over a fresh default session.
    pub fn new() -> BatchDriver {
        BatchDriver::with_session(Arc::new(AnalysisSession::new()))
    }

    /// A driver over an existing session (shares its cache).
    pub fn with_session(session: Arc<AnalysisSession>) -> BatchDriver {
        BatchDriver {
            session,
            threads: default_parallelism(),
        }
    }

    /// Override the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> BatchDriver {
        self.threads = threads.max(1);
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &AnalysisSession {
        &self.session
    }

    /// Analyze every `(name, source)` pair, preserving input order. Units
    /// are distributed over scoped worker threads; results (or stage
    /// errors) land in the slot of their input.
    pub fn analyze_all(&self, inputs: &[(String, String)]) -> Vec<BatchResult> {
        parallel_map_indexed(self.threads, inputs.len(), |i| {
            let (name, source) = &inputs[i];
            self.session.analyze(name, source)
        })
    }

    /// Transform every `(name, source)` pair, preserving input order.
    pub fn transform_all(
        &self,
        inputs: &[(String, String)],
    ) -> Vec<Result<TransformResult, StageError>> {
        self.analyze_all(inputs)
            .into_iter()
            .map(|r| r.map(|a| a.to_transform_result()))
            .collect()
    }
}

impl Default for BatchDriver {
    fn default() -> Self {
        BatchDriver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
#define N 32
double a[N];
int main() {
  for (int it = 0; it < 4; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) a[i] += 1.0;
  }
  printf(\"%f\\n\", a[0]);
  return 0;
}
";

    #[test]
    fn stages_compose_to_the_one_shot_result() {
        let session = AnalysisSession::new();
        let parsed = session.parse("demo.c", DEMO).unwrap();
        let graphs = session.graphs(&parsed);
        let accesses = session.accesses(&parsed, &graphs);
        let summaries = session.summaries(&parsed, &accesses);
        let plans = session.plan(&parsed, &graphs, &accesses, &summaries);
        let rewrite = session.rewrite(&parsed, &graphs, &plans);

        #[allow(deprecated)] // compat pin: staged stages == legacy one-shot
        let one_shot = crate::transform("demo.c", DEMO).unwrap();
        assert_eq!(one_shot.transformed_source, rewrite.source);
        assert_eq!(one_shot.stats, plans.stats);
        assert_eq!(one_shot.plans.len(), plans.plans.len());
    }

    #[test]
    fn cache_hits_skip_every_stage() {
        let session = AnalysisSession::new();
        let first = session.analyze("demo.c", DEMO).unwrap();
        let before = session.timings();
        let second = session.analyze("demo.c", DEMO).unwrap();
        let after = session.timings();
        assert!(
            Arc::ptr_eq(&first, &second),
            "cache hit must return the same artifacts"
        );
        assert_eq!(
            before.total(),
            after.total(),
            "a cache hit must not spend stage time"
        );
        let stats = session.cache_stats();
        assert_eq!(stats.analysis_hits, 1);
        assert_eq!(stats.analysis_misses, 1);
        assert_eq!(stats.parse_misses, 1);
    }

    #[test]
    fn stage_errors_are_typed() {
        let session = AnalysisSession::new();
        let err = session
            .analyze("broken.c", "int main( { return 0; }\n")
            .unwrap_err();
        assert!(matches!(err, StageError::Parse { .. }));
        assert_eq!(err.stage(), Stage::Parse);

        let mapped = "\
#define N 8
double a[N];
void f() {
  #pragma omp target data map(tofrom: a)
  {
    #pragma omp target
    for (int i = 0; i < N; i++) a[i] = i;
  }
}
";
        let err = session.analyze("mapped.c", mapped).unwrap_err();
        assert!(matches!(err, StageError::AlreadyMapped { .. }));
    }

    #[test]
    fn parallel_plan_stage_matches_serial() {
        let src = "\
#define N 16
double a[N];
double b[N];
void f() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) a[i] = i;
}
void g() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) b[i] = 2 * i;
}
int main() { f(); g(); printf(\"%f %f\\n\", a[1], b[1]); return 0; }
";
        let serial = AnalysisSession::new().with_parallelism(1);
        let parallel = AnalysisSession::new().with_parallelism(4);
        let a = serial.analyze("fg.c", src).unwrap();
        let b = parallel.analyze("fg.c", src).unwrap();
        assert_eq!(a.rewrite.source, b.rewrite.source);
        assert_eq!(a.plans.stats, b.plans.stats);
        let funcs: Vec<_> = a.plans.plans.iter().map(|p| p.function.clone()).collect();
        let funcs_b: Vec<_> = b.plans.plans.iter().map(|p| p.function.clone()).collect();
        assert_eq!(funcs, funcs_b, "plan order must be deterministic");
    }

    #[test]
    fn batch_driver_analyzes_units_concurrently_and_in_order() {
        let inputs: Vec<(String, String)> = (0..6)
            .map(|i| {
                (
                    format!("unit{i}.c"),
                    format!(
                        "#define N 32\ndouble arr{i}[N];\nint main() {{\n  for (int t = 0; t < 3; t++) {{\n    #pragma omp target teams distribute parallel for\n    for (int j = 0; j < N; j++) arr{i}[j] += {i};\n  }}\n  printf(\"%f\\n\", arr{i}[0]);\n  return 0;\n}}\n"
                    ),
                )
            })
            .collect();
        let driver = BatchDriver::new().with_threads(4);
        let results = driver.analyze_all(&inputs);
        assert_eq!(results.len(), 6);
        for (i, result) in results.iter().enumerate() {
            let analysis = result.as_ref().expect("unit failed");
            assert_eq!(analysis.parsed.name, format!("unit{i}.c"));
            assert!(analysis.rewrite.source.contains("#pragma omp target data"));
        }
        assert_eq!(driver.session().cache_stats().analysis_misses, 6);

        // Re-running the same corpus is served from the cache.
        let again = driver.analyze_all(&inputs);
        assert_eq!(driver.session().cache_stats().analysis_hits, 6);
        for (a, b) in results.iter().zip(&again) {
            assert!(Arc::ptr_eq(a.as_ref().unwrap(), b.as_ref().unwrap()));
        }
    }

    const TWO_FUNCS: &str = "\
#define N 24
double a[N];
double b[N];
void fa() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) a[i] = i;
}
void fb() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) b[i] = 2 * i;
}
int main() { fa(); fb(); printf(\"%f %f\\n\", a[1], b[1]); return 0; }
";

    /// Editing one function's body re-plans only that function: the other
    /// functions are served from the function-granular plan cache, and the
    /// incremental result is identical to a cold analysis of the edited
    /// source — plans (node ids, spans), stats, and rewrite bytes.
    #[test]
    fn one_function_edit_replans_only_that_function() {
        let session = AnalysisSession::new();
        session.analyze("two.c", TWO_FUNCS).unwrap();
        let stats = session.cache_stats();
        assert_eq!(stats.function_plan_hits, 0);
        assert_eq!(stats.function_plan_misses, 3);

        // Grow fa's body: every later function moves in both byte offsets
        // and node ids, exercising the relocation path.
        let edited = TWO_FUNCS.replace("a[i] = i;", "a[i] = i + 1.0;");
        assert_ne!(edited, TWO_FUNCS);
        let incremental = session.analyze("two.c", &edited).unwrap();
        let stats = session.cache_stats();
        assert_eq!(
            stats.function_plan_misses, 4,
            "only the edited function may be re-planned"
        );
        assert_eq!(stats.function_plan_hits, 2, "fb and main must be served");

        let cold = AnalysisSession::new();
        let fresh = cold.analyze("two.c", &edited).unwrap();
        assert_eq!(fresh.rewrite.source, incremental.rewrite.source);
        assert_eq!(fresh.plans.stats, incremental.plans.stats);
        assert_eq!(fresh.plans.plans, incremental.plans.plans);
    }

    /// An edit *before* the functions (a macro change) invalidates every
    /// function: macros expand into bodies, so no cached plan may survive.
    #[test]
    fn environment_edit_invalidates_every_function() {
        let session = AnalysisSession::new();
        session.analyze("two.c", TWO_FUNCS).unwrap();
        let edited = TWO_FUNCS.replace("#define N 24", "#define N 48");
        let incremental = session.analyze("two.c", &edited).unwrap();
        let stats = session.cache_stats();
        assert_eq!(stats.function_plan_hits, 0);
        assert_eq!(stats.function_plan_misses, 6);
        let cold = AnalysisSession::new().analyze("two.c", &edited).unwrap();
        assert_eq!(cold.rewrite.source, incremental.rewrite.source);
    }

    /// A callee's changed interprocedural summary re-plans its caller even
    /// though the caller's own body is unchanged.
    #[test]
    fn callee_summary_change_replans_caller() {
        let src = "\
#define N 16
double buf[N];
double sink;
void helper(double *p, int n) {
  for (int i = 0; i < n; i++) sink = sink + p[i];
}
void driver() {
  for (int it = 0; it < 3; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) buf[i] += 1.0;
    helper(buf, N);
  }
}
";
        let session = AnalysisSession::new();
        session.analyze("ip.c", src).unwrap();
        // helper turns from a reader into a writer of its parameter:
        // driver's plan must be recomputed even though its body text is
        // unchanged (same length, same node count).
        let edited = src.replace("sink = sink + p[i];", "p[i] = sink + 0.25;");
        assert_eq!(edited.len(), src.len());
        let incremental = session.analyze("ip.c", &edited).unwrap();
        let stats = session.cache_stats();
        assert_eq!(
            stats.function_plan_misses, 4,
            "both helper and driver must be re-planned"
        );
        let cold = AnalysisSession::new().analyze("ip.c", &edited).unwrap();
        assert_eq!(cold.rewrite.source, incremental.rewrite.source);
        assert_eq!(cold.plans.plans, incremental.plans.plans);
    }

    /// Colliding 64-bit keys must not alias: the parse and unit caches
    /// verify the full `(name, source)` on every hit.
    #[test]
    fn cache_hits_verify_full_key() {
        let session = AnalysisSession::new();
        let a = session.analyze("x.c", TWO_FUNCS).unwrap();
        // Simulate a collision by force-filing a different unit under the
        // same buckets (the public API cannot collide on demand, so poke
        // the internals the way a colliding hash would).
        let other = session.analyze("y.c", DEMO).unwrap();
        let key = content_hash("x.c", TWO_FUNCS);
        session
            .unit_cache
            .update(key, |bucket| bucket.push(Arc::clone(&other)));
        session
            .parse_cache
            .update(key, |bucket| bucket.push(Arc::clone(&other.parsed)));
        // The colliding entry must be skipped, not returned.
        let again = session.analyze("x.c", TWO_FUNCS).unwrap();
        assert!(Arc::ptr_eq(&a, &again));
        let reparsed = session.parse("x.c", TWO_FUNCS).unwrap();
        assert_eq!(reparsed.name, "x.c");
        assert_eq!(reparsed.file.text(), TWO_FUNCS);
    }

    /// Long-lived sessions can evict superseded versions of a unit so
    /// watch/serve memory stays bounded by the number of files, not the
    /// number of saves.
    #[test]
    fn evict_stale_versions_keeps_only_the_latest() {
        let session = AnalysisSession::new();
        session.analyze("demo.c", DEMO).unwrap();
        let edited = DEMO.replace("a[i] += 1.0;", "a[i] += 2.0;");
        let latest = session.analyze("demo.c", &edited).unwrap();
        let other = session.analyze("other.c", TWO_FUNCS).unwrap();
        assert_eq!(session.unit_cache.len(), 3);

        session.evict_stale_versions("demo.c", &edited);
        let remaining: usize = session
            .unit_cache
            .fold(0usize, |acc, _, bucket| acc + bucket.len());
        assert_eq!(remaining, 2, "the old demo.c version must be gone");
        // The surviving entries still hit.
        let again = session.analyze("demo.c", &edited).unwrap();
        assert!(Arc::ptr_eq(&latest, &again));
        let other_again = session.analyze("other.c", TWO_FUNCS).unwrap();
        assert!(Arc::ptr_eq(&other, &other_again));
        // The superseded content is a miss (recomputed, not aliased).
        let misses_before = session.cache_stats().analysis_misses;
        session.analyze("demo.c", DEMO).unwrap();
        assert_eq!(session.cache_stats().analysis_misses, misses_before + 1);
    }

    /// The persistent store round-trips through a "process restart": a new
    /// session over the same cache dir serves plans from disk and rewrites
    /// byte-identically without planning anything.
    #[test]
    fn persistent_store_survives_session_restart() {
        let dir =
            std::env::temp_dir().join(format!("ompdart-pipeline-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let first = AnalysisSession::new().with_cache_dir(&dir);
        let cold = first.analyze("two.c", TWO_FUNCS).unwrap();
        let stats = first.cache_stats();
        assert_eq!(stats.store_hits, 0);
        assert_eq!(stats.store_misses, 1);
        assert_eq!(first.artifact_store().unwrap().entry_count(), 1);

        let second = AnalysisSession::new().with_cache_dir(&dir);
        let warm = second.analyze("two.c", TWO_FUNCS).unwrap();
        let stats = second.cache_stats();
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.store_misses, 0);
        assert_eq!(
            stats.function_plan_misses, 0,
            "a store hit must not plan any function"
        );
        assert_eq!(warm.rewrite.source, cold.rewrite.source);
        assert_eq!(warm.plans.plans, cold.plans.plans);
        assert_eq!(warm.plans.stats, cold.plans.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two units that share a header-defined `static` function warm each
    /// other through the function-level store: the first copy plans and
    /// writes back, the second is served from disk, and a later session's
    /// brand-new unit with the same header starts warm too. Unit-level
    /// entries land via the batched (write-behind) flush.
    #[test]
    fn shared_static_function_warms_across_units_via_store() {
        let dir = std::env::temp_dir().join(format!("ompdart-fn-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let header = "\
#define N 32
double shared_buf[N];
static void touch_shared(void) {
  for (int it = 0; it < 3; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) shared_buf[i] += 1.0;
  }
  printf(\"%f\\n\", shared_buf[0]);
}
";
        let unit = |entry: &str| format!("{header}\nvoid {entry}(void) {{ touch_shared(); }}\n");
        let inputs = vec![
            ("a.c".to_string(), unit("a_entry")),
            ("b.c".to_string(), unit("b_entry")),
        ];

        let session = Arc::new(AnalysisSession::new().with_cache_dir(&dir));
        let driver =
            crate::program::ProgramDriver::with_session(Arc::clone(&session)).with_threads(1);
        let analysis = driver.analyze_program(&inputs).unwrap();
        let stats = session.cache_stats();
        assert_eq!(
            stats.function_store_misses, 1,
            "only the first copy of the shared static plans from scratch: {stats:?}"
        );
        assert_eq!(
            stats.function_store_hits, 1,
            "the second unit's shared static must be a function-store hit: {stats:?}"
        );
        assert_eq!(
            session.artifact_store().unwrap().function_entry_count(),
            1,
            "one function-level entry for the shared static"
        );
        assert_eq!(
            session.artifact_store().unwrap().entry_count(),
            2,
            "analyze_program must flush the write-behind unit entries"
        );

        // Store-served plans rewrite byte-identically to a storeless run.
        let cold = crate::program::ProgramDriver::new()
            .with_threads(1)
            .analyze_program(&inputs)
            .unwrap();
        for (warm_unit, cold_unit) in analysis.units.iter().zip(&cold.units) {
            assert_eq!(warm_unit.rewrite.source, cold_unit.rewrite.source);
        }

        // A later session: a brand-new unit with the same header starts
        // warm — its shared static is served from the function store.
        let session2 = Arc::new(AnalysisSession::new().with_cache_dir(&dir));
        let driver2 =
            crate::program::ProgramDriver::with_session(Arc::clone(&session2)).with_threads(1);
        let inputs2 = vec![
            ("a.c".to_string(), unit("a_entry")),
            ("c.c".to_string(), unit("c_entry")),
        ];
        driver2.analyze_program(&inputs2).unwrap();
        let stats2 = session2.cache_stats();
        assert!(
            stats2.function_store_hits >= 1,
            "the new unit's shared static must hit the function store: {stats2:?}"
        );
        assert_eq!(
            stats2.function_store_misses, 0,
            "nothing should plan the shared static from scratch again: {stats2:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timings_cover_every_stage() {
        let session = AnalysisSession::new();
        let analysis = session.analyze("demo.c", DEMO).unwrap();
        let timings = analysis.timings();
        assert!(timings.total() > Duration::ZERO);
        let rendered = format!("{timings}");
        for stage in Stage::ALL {
            assert!(rendered.contains(stage.name()), "{rendered}");
        }
    }
}
