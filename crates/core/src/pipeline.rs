//! The staged analysis pipeline behind OMPDart.
//!
//! The paper's workflow (Figure 1) is an explicit multi-stage pipeline:
//! parse, hybrid AST-CFG construction, memory-access classification,
//! interprocedural summaries, host/device data-flow planning, and source
//! rewriting. This module models each of those stages as a first-class,
//! independently runnable artifact instead of the historical one-shot
//! [`crate::OmpDart::transform_source`] monolith:
//!
//! * [`ParsedUnit`] — frontend output (AST + diagnostics + content hash),
//! * [`GraphsArtifact`] — per-function CFGs / hybrid AST-CFG,
//! * [`AccessArtifact`] — classified accesses and symbol tables,
//! * [`SummariesArtifact`] — interprocedural side-effect summaries,
//! * [`PlansArtifact`] — per-function [`MappingPlan`]s plus statistics,
//! * [`RewriteOutput`] — the transformed source.
//!
//! Every artifact records the wall-clock time its stage took
//! ([`StageTimings`] aggregates them), stage failures are typed
//! ([`StageError`]), and an [`AnalysisSession`] caches finished artifacts
//! under a content hash so repeated analysis of unchanged sources is
//! near-free. [`BatchDriver`] fans a whole corpus of translation units out
//! over scoped worker threads, while the planning stage itself fans out per
//! function. The legacy [`crate::OmpDart`] API is a thin wrapper over this
//! module.
//!
//! ```
//! use ompdart_core::pipeline::AnalysisSession;
//!
//! let src = "\
//! #define N 64
//! double a[N];
//! int main() {
//!   for (int it = 0; it < 4; it++) {
//!     #pragma omp target teams distribute parallel for
//!     for (int i = 0; i < N; i++) a[i] += 1.0;
//!   }
//!   printf(\"%f\\n\", a[0]);
//!   return 0;
//! }
//! ";
//! let session = AnalysisSession::new();
//! let analysis = session.analyze("demo.c", src).unwrap();
//! assert!(analysis.rewrite.source.contains("#pragma omp target data"));
//! // The second analysis of identical content is served from the cache.
//! let again = session.analyze("demo.c", src).unwrap();
//! assert_eq!(session.cache_stats().analysis_hits, 1);
//! assert_eq!(analysis.parsed.content_hash, again.parsed.content_hash);
//! ```

use crate::access::{FunctionAccesses, SymbolTable};
use crate::dataflow::plan_function;
use crate::interproc::{augment_with_call_effects, ProgramSummaries};
use crate::plan::explain::explain_plans;
use crate::plan::ir::{AnalysisStats, MappingPlan};
use crate::plan::json::plans_to_json;
use crate::rewrite;
use crate::{function_with_existing_mappings, OmpDartError, OmpDartOptions, TransformResult};
use ompdart_frontend::ast::TranslationUnit;
use ompdart_frontend::diag::Diagnostics;
use ompdart_frontend::parser::parse_str;
use ompdart_frontend::source::SourceFile;
use ompdart_graph::ProgramGraphs;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Stages, errors and timings
// ---------------------------------------------------------------------------

/// The six pipeline stages, in execution order (paper Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    Parse,
    Graphs,
    Accesses,
    Summaries,
    Plan,
    Rewrite,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::Graphs,
        Stage::Accesses,
        Stage::Summaries,
        Stage::Plan,
        Stage::Rewrite,
    ];

    /// Human-readable stage name.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Graphs => "graphs",
            Stage::Accesses => "accesses",
            Stage::Summaries => "summaries",
            Stage::Plan => "plan",
            Stage::Rewrite => "rewrite",
        }
    }

    /// Parse a stage name (the inverse of [`Stage::name`], used by the plan
    /// JSON deserialization).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed failure of one pipeline stage.
#[derive(Clone, Debug)]
pub enum StageError {
    /// The frontend stage failed: the input does not parse.
    Parse {
        name: String,
        diagnostics: Diagnostics,
    },
    /// The input-contract check failed: the source already contains explicit
    /// data-mapping directives (Section IV-A).
    AlreadyMapped { function: String },
}

impl StageError {
    /// The stage that failed.
    pub fn stage(&self) -> Stage {
        match self {
            StageError::Parse { .. } => Stage::Parse,
            StageError::AlreadyMapped { .. } => Stage::Parse,
        }
    }
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageError::Parse { name, diagnostics } => write!(
                f,
                "`{name}` failed to parse with {} error(s)",
                diagnostics.error_count()
            ),
            StageError::AlreadyMapped { function } => write!(
                f,
                "function `{function}` already contains target data/update directives; \
                 OMPDart expects input without explicit data mappings"
            ),
        }
    }
}

impl std::error::Error for StageError {}

impl From<StageError> for OmpDartError {
    fn from(err: StageError) -> OmpDartError {
        match err {
            StageError::Parse { diagnostics, .. } => OmpDartError::ParseFailed(diagnostics),
            StageError::AlreadyMapped { function } => OmpDartError::AlreadyMapped { function },
        }
    }
}

/// Wall-clock time spent in each pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    pub parse: Duration,
    pub graphs: Duration,
    pub accesses: Duration,
    pub summaries: Duration,
    pub plan: Duration,
    pub rewrite: Duration,
}

impl StageTimings {
    /// Time of one stage.
    pub fn of(&self, stage: Stage) -> Duration {
        match stage {
            Stage::Parse => self.parse,
            Stage::Graphs => self.graphs,
            Stage::Accesses => self.accesses,
            Stage::Summaries => self.summaries,
            Stage::Plan => self.plan,
            Stage::Rewrite => self.rewrite,
        }
    }

    /// Total across all stages.
    pub fn total(&self) -> Duration {
        Stage::ALL.iter().map(|s| self.of(*s)).sum()
    }

    /// Accumulate another timing set into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        self.parse += other.parse;
        self.graphs += other.graphs;
        self.accesses += other.accesses;
        self.summaries += other.summaries;
        self.plan += other.plan;
        self.rewrite += other.rewrite;
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str("  ")?;
            }
            write!(f, "{}={:.3}ms", stage, self.of(*stage).as_secs_f64() * 1e3)?;
        }
        write!(f, "  total={:.3}ms", self.total().as_secs_f64() * 1e3)
    }
}

/// FNV-1a content hash used to key the artifact caches.
pub fn content_hash(name: &str, source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes().chain([0u8]).chain(source.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Stage artifacts and the pure stage functions
// ---------------------------------------------------------------------------

/// Frontend artifact: the parsed translation unit.
#[derive(Debug)]
pub struct ParsedUnit {
    /// File name used in diagnostics.
    pub name: String,
    /// FNV-1a hash of (name, source) — the cache key.
    pub content_hash: u64,
    /// The source file (spans in the AST point into it).
    pub file: SourceFile,
    /// The typed AST.
    pub unit: TranslationUnit,
    /// Parse-time warnings and notes.
    pub diagnostics: Diagnostics,
    /// Wall-clock time of the parse stage.
    pub elapsed: Duration,
}

/// Graph artifact: per-function CFGs and the hybrid AST-CFG.
#[derive(Debug)]
pub struct GraphsArtifact {
    pub graphs: ProgramGraphs,
    pub elapsed: Duration,
}

/// Access artifact: classified memory accesses and per-function symbols.
#[derive(Debug)]
pub struct AccessArtifact {
    pub accesses: HashMap<String, FunctionAccesses>,
    pub symbols: HashMap<String, SymbolTable>,
    pub elapsed: Duration,
}

/// Interprocedural artifact: per-function side-effect summaries.
#[derive(Debug)]
pub struct SummariesArtifact {
    pub summaries: ProgramSummaries,
    pub elapsed: Duration,
}

/// Planning artifact: per-function mapping plans plus statistics.
#[derive(Debug)]
pub struct PlansArtifact {
    pub plans: Vec<MappingPlan>,
    pub stats: AnalysisStats,
    /// Diagnostics produced by the data-flow analysis.
    pub diagnostics: Diagnostics,
    pub elapsed: Duration,
}

/// Rewrite artifact: the transformed source text.
#[derive(Debug)]
pub struct RewriteOutput {
    pub source: String,
    pub elapsed: Duration,
}

/// Stage 1 — parse source text into a [`ParsedUnit`].
pub fn stage_parse(name: &str, source: &str) -> Result<ParsedUnit, StageError> {
    let start = Instant::now();
    let (file, parse) = parse_str(name, source);
    if !parse.is_ok() {
        return Err(StageError::Parse {
            name: name.to_string(),
            diagnostics: parse.diagnostics,
        });
    }
    Ok(ParsedUnit {
        name: name.to_string(),
        content_hash: content_hash(name, source),
        file,
        unit: parse.unit,
        diagnostics: parse.diagnostics,
        elapsed: start.elapsed(),
    })
}

/// Input-contract check (Section IV-A): reject sources that already carry
/// explicit data mappings.
pub fn check_input_contract(parsed: &ParsedUnit) -> Result<(), StageError> {
    match function_with_existing_mappings(&parsed.unit) {
        Some(function) => Err(StageError::AlreadyMapped { function }),
        None => Ok(()),
    }
}

/// Stage 2 — build per-function CFGs and the hybrid AST-CFG.
pub fn stage_graphs(unit: &TranslationUnit) -> GraphsArtifact {
    let start = Instant::now();
    let graphs = ProgramGraphs::build(unit);
    GraphsArtifact {
        graphs,
        elapsed: start.elapsed(),
    }
}

/// Stage 3 — classify memory accesses and build symbol tables.
pub fn stage_accesses(unit: &TranslationUnit, graphs: &GraphsArtifact) -> AccessArtifact {
    let start = Instant::now();
    let mut symbols = HashMap::new();
    let mut accesses = HashMap::new();
    for func in unit.functions() {
        let sym = SymbolTable::build(unit, func);
        if let Some(g) = graphs.graphs.function(&func.name) {
            accesses.insert(
                func.name.clone(),
                FunctionAccesses::collect(func, &g.index, &sym),
            );
        }
        symbols.insert(func.name.clone(), sym);
    }
    AccessArtifact {
        accesses,
        symbols,
        elapsed: start.elapsed(),
    }
}

/// Stage 4 — interprocedural side-effect summaries (Section IV-C).
pub fn stage_summaries(
    unit: &TranslationUnit,
    accesses: &AccessArtifact,
    options: &OmpDartOptions,
) -> SummariesArtifact {
    let start = Instant::now();
    let summaries = if options.interprocedural {
        ProgramSummaries::compute(
            unit,
            &accesses.accesses,
            &accesses.symbols,
            options.max_interproc_passes,
        )
    } else {
        ProgramSummaries::default()
    };
    SummariesArtifact {
        summaries,
        elapsed: start.elapsed(),
    }
}

/// Stage 5 — host/device data-flow planning, fanned out per function over
/// scoped worker threads when `parallelism > 1`. The produced plans and
/// diagnostics are merged back in source order, so the result is identical
/// to a serial run.
pub fn stage_plans(
    unit: &TranslationUnit,
    graphs: &GraphsArtifact,
    accesses: &AccessArtifact,
    summaries: &SummariesArtifact,
    options: &OmpDartOptions,
    parallelism: usize,
) -> PlansArtifact {
    let start = Instant::now();
    let funcs: Vec<_> = unit.functions().collect();
    let workers = parallelism.clamp(1, funcs.len().max(1));

    // One slot per function: (had a graph, plan, diagnostics).
    type Slot = (bool, Option<MappingPlan>, Diagnostics);
    let plan_one = |idx: usize| -> Slot {
        let func = funcs[idx];
        let Some(graph) = graphs.graphs.function(&func.name) else {
            return (false, None, Diagnostics::new());
        };
        let Some(mut acc) = accesses.accesses.get(&func.name).cloned() else {
            return (true, None, Diagnostics::new());
        };
        augment_with_call_effects(&mut acc, unit, &summaries.summaries);
        let mut diags = Diagnostics::new();
        let plan = plan_function(
            unit,
            func,
            graph,
            &acc,
            &accesses.symbols[&func.name],
            &options.dataflow,
            &mut diags,
        );
        (true, plan, diags)
    };

    let slots = parallel_map_indexed(workers, funcs.len(), plan_one);

    let mut plans = Vec::new();
    let mut stats = AnalysisStats::default();
    let mut diagnostics = Diagnostics::new();
    for slot in slots {
        let (analyzed, plan, diags) = slot;
        if analyzed {
            stats.functions_analyzed += 1;
        }
        diagnostics.extend(diags);
        if let Some(plan) = plan {
            stats.functions_with_kernels += 1;
            stats.kernels += plan.kernels.len();
            stats.mapped_variables += plan.mapped_variables().len();
            stats.map_clauses += plan.maps.len();
            stats.update_directives += plan.updates.len();
            stats.firstprivate_clauses += plan.firstprivate.len();
            plans.push(plan);
        }
    }
    PlansArtifact {
        plans,
        stats,
        diagnostics,
        elapsed: start.elapsed(),
    }
}

/// Order-preserving parallel map over indices `0..len`: up to `workers`
/// scoped threads pull indices from a shared cursor and fill one slot each.
/// With one worker (or one item) the map runs inline. Shared by the
/// per-function plan fan-out and [`BatchDriver::analyze_all`].
fn parallel_map_indexed<T, F>(workers: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, len.max(1));
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                *done[i].lock().unwrap() = Some(f(i));
            });
        }
    });
    done.into_iter()
        .map(|cell| {
            cell.into_inner()
                .unwrap()
                .expect("parallel map slot not filled")
        })
        .collect()
}

/// Stage 6 — source-to-source rewriting.
pub fn stage_rewrite(
    parsed: &ParsedUnit,
    graphs: &GraphsArtifact,
    plans: &PlansArtifact,
) -> RewriteOutput {
    let start = Instant::now();
    let source = rewrite::apply_plans(&parsed.file, &parsed.unit, &graphs.graphs, &plans.plans);
    RewriteOutput {
        source,
        elapsed: start.elapsed(),
    }
}

// ---------------------------------------------------------------------------
// The assembled analysis of one translation unit
// ---------------------------------------------------------------------------

/// Every artifact of a fully analyzed translation unit.
#[derive(Debug)]
pub struct UnitAnalysis {
    pub parsed: Arc<ParsedUnit>,
    pub graphs: Arc<GraphsArtifact>,
    pub accesses: Arc<AccessArtifact>,
    pub summaries: Arc<SummariesArtifact>,
    pub plans: Arc<PlansArtifact>,
    pub rewrite: Arc<RewriteOutput>,
}

impl UnitAnalysis {
    /// Per-stage timings of this analysis.
    pub fn timings(&self) -> StageTimings {
        StageTimings {
            parse: self.parsed.elapsed,
            graphs: self.graphs.elapsed,
            accesses: self.accesses.elapsed,
            summaries: self.summaries.elapsed,
            plan: self.plans.elapsed,
            rewrite: self.rewrite.elapsed,
        }
    }

    /// Assemble the legacy [`TransformResult`] from the staged artifacts.
    pub fn to_transform_result(&self) -> TransformResult {
        let mut diagnostics = self.parsed.diagnostics.clone();
        diagnostics.extend(self.plans.diagnostics.clone());
        TransformResult {
            transformed_source: self.rewrite.source.clone(),
            plans: self.plans.plans.clone(),
            diagnostics,
            stats: self.plans.stats,
            tool_time: self.timings().total(),
        }
    }

    /// Human-readable justification of every mapping decision: one line per
    /// construct, with the deciding source location.
    pub fn explain(&self) -> String {
        explain_plans(&self.plans.plans, Some(&self.parsed.file))
    }

    /// The versioned plan-JSON document for this unit's plans.
    pub fn plans_json(&self) -> String {
        plans_to_json(&self.plans.plans)
    }
}

// ---------------------------------------------------------------------------
// AnalysisSession: cached, reusable pipeline driver
// ---------------------------------------------------------------------------

/// Cache hit/miss counters of an [`AnalysisSession`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `parse` calls served from the parse cache.
    pub parse_hits: u64,
    /// `parse` calls that ran the frontend.
    pub parse_misses: u64,
    /// `analyze` calls served entirely from the artifact cache.
    pub analysis_hits: u64,
    /// `analyze` calls that ran the pipeline.
    pub analysis_misses: u64,
}

#[derive(Debug, Default)]
struct CacheCounters {
    parse_hits: AtomicU64,
    parse_misses: AtomicU64,
    analysis_hits: AtomicU64,
    analysis_misses: AtomicU64,
}

/// A reusable, thread-safe driver for the staged pipeline.
///
/// The session caches [`ParsedUnit`]s and complete [`UnitAnalysis`] bundles
/// under the FNV-1a hash of (file name, source text), so re-analyzing
/// unchanged sources skips every stage. Stage methods can also be called
/// individually to run the pipeline step by step.
#[derive(Debug)]
pub struct AnalysisSession {
    options: OmpDartOptions,
    parallelism: usize,
    parse_cache: Mutex<HashMap<u64, Arc<ParsedUnit>>>,
    unit_cache: Mutex<HashMap<u64, Arc<UnitAnalysis>>>,
    counters: CacheCounters,
    cumulative: Mutex<StageTimings>,
}

impl Default for AnalysisSession {
    fn default() -> Self {
        AnalysisSession::new()
    }
}

impl AnalysisSession {
    /// A session with default options.
    pub fn new() -> AnalysisSession {
        AnalysisSession::with_options(OmpDartOptions::default())
    }

    /// A session with explicit options.
    pub fn with_options(options: OmpDartOptions) -> AnalysisSession {
        AnalysisSession {
            options,
            parallelism: default_parallelism(),
            parse_cache: Mutex::new(HashMap::new()),
            unit_cache: Mutex::new(HashMap::new()),
            counters: CacheCounters::default(),
            cumulative: Mutex::new(StageTimings::default()),
        }
    }

    /// Override the per-function fan-out width of the planning stage.
    pub fn with_parallelism(mut self, workers: usize) -> AnalysisSession {
        self.parallelism = workers.max(1);
        self
    }

    /// The active options.
    pub fn options(&self) -> &OmpDartOptions {
        &self.options
    }

    /// The configured worker fan-out width.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Cache hit/miss counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            parse_hits: self.counters.parse_hits.load(Ordering::Relaxed),
            parse_misses: self.counters.parse_misses.load(Ordering::Relaxed),
            analysis_hits: self.counters.analysis_hits.load(Ordering::Relaxed),
            analysis_misses: self.counters.analysis_misses.load(Ordering::Relaxed),
        }
    }

    /// Cumulative per-stage wall-clock time spent by this session (cache
    /// hits add nothing — that is the point).
    pub fn timings(&self) -> StageTimings {
        *self.cumulative.lock().unwrap()
    }

    /// Stage 1, cached: parse source text.
    pub fn parse(&self, name: &str, source: &str) -> Result<Arc<ParsedUnit>, StageError> {
        let key = content_hash(name, source);
        if let Some(hit) = self.parse_cache.lock().unwrap().get(&key).cloned() {
            self.counters.parse_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.counters.parse_misses.fetch_add(1, Ordering::Relaxed);
        let parsed = Arc::new(stage_parse(name, source)?);
        self.cumulative.lock().unwrap().parse += parsed.elapsed;
        // First writer wins: if a concurrent call raced us to the same key,
        // return its artifact so identical content always yields one Arc.
        let winner = Arc::clone(
            self.parse_cache
                .lock()
                .unwrap()
                .entry(key)
                .or_insert(parsed),
        );
        Ok(winner)
    }

    /// Stage 2: build the hybrid AST-CFG.
    pub fn graphs(&self, parsed: &ParsedUnit) -> Arc<GraphsArtifact> {
        let artifact = Arc::new(stage_graphs(&parsed.unit));
        self.cumulative.lock().unwrap().graphs += artifact.elapsed;
        artifact
    }

    /// Stage 3: classify memory accesses.
    pub fn accesses(&self, parsed: &ParsedUnit, graphs: &GraphsArtifact) -> Arc<AccessArtifact> {
        let artifact = Arc::new(stage_accesses(&parsed.unit, graphs));
        self.cumulative.lock().unwrap().accesses += artifact.elapsed;
        artifact
    }

    /// Stage 4: interprocedural summaries.
    pub fn summaries(
        &self,
        parsed: &ParsedUnit,
        accesses: &AccessArtifact,
    ) -> Arc<SummariesArtifact> {
        let artifact = Arc::new(stage_summaries(&parsed.unit, accesses, &self.options));
        self.cumulative.lock().unwrap().summaries += artifact.elapsed;
        artifact
    }

    /// Stage 5: data-flow planning with per-function fan-out.
    pub fn plan(
        &self,
        parsed: &ParsedUnit,
        graphs: &GraphsArtifact,
        accesses: &AccessArtifact,
        summaries: &SummariesArtifact,
    ) -> Arc<PlansArtifact> {
        let artifact = Arc::new(stage_plans(
            &parsed.unit,
            graphs,
            accesses,
            summaries,
            &self.options,
            self.parallelism,
        ));
        self.cumulative.lock().unwrap().plan += artifact.elapsed;
        artifact
    }

    /// Stage 6: source rewriting.
    pub fn rewrite(
        &self,
        parsed: &ParsedUnit,
        graphs: &GraphsArtifact,
        plans: &PlansArtifact,
    ) -> Arc<RewriteOutput> {
        let artifact = Arc::new(stage_rewrite(parsed, graphs, plans));
        self.cumulative.lock().unwrap().rewrite += artifact.elapsed;
        artifact
    }

    /// Run (or fetch from the cache) the complete pipeline for one source.
    pub fn analyze(&self, name: &str, source: &str) -> Result<Arc<UnitAnalysis>, StageError> {
        let key = content_hash(name, source);
        if let Some(hit) = self.unit_cache.lock().unwrap().get(&key).cloned() {
            self.counters.analysis_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.counters
            .analysis_misses
            .fetch_add(1, Ordering::Relaxed);
        let parsed = self.parse(name, source)?;
        if self.options.reject_existing_mappings {
            check_input_contract(&parsed)?;
        }
        let graphs = self.graphs(&parsed);
        let accesses = self.accesses(&parsed, &graphs);
        let summaries = self.summaries(&parsed, &accesses);
        let plans = self.plan(&parsed, &graphs, &accesses, &summaries);
        let rewrite = self.rewrite(&parsed, &graphs, &plans);
        let analysis = Arc::new(UnitAnalysis {
            parsed,
            graphs,
            accesses,
            summaries,
            plans,
            rewrite,
        });
        // First writer wins, as in `parse`: concurrent analyses of the same
        // content may both compute (benign duplicated work), but every
        // caller observes the same cached Arc afterwards.
        let winner = Arc::clone(
            self.unit_cache
                .lock()
                .unwrap()
                .entry(key)
                .or_insert(analysis),
        );
        Ok(winner)
    }

    /// Run the pipeline and assemble the legacy [`TransformResult`]. The
    /// reported `tool_time` is the wall-clock time of this call, so cached
    /// invocations report near-zero time.
    #[deprecated(
        note = "use `Ompdart::builder().build().analyze(..)` (or `AnalysisSession::analyze`) \
                and read the `Analysis`/`UnitAnalysis` artifacts instead"
    )]
    pub fn transform(&self, name: &str, source: &str) -> Result<TransformResult, StageError> {
        let start = Instant::now();
        let analysis = self.analyze(name, source)?;
        let mut result = analysis.to_transform_result();
        result.tool_time = start.elapsed();
        Ok(result)
    }
}

/// Worker count used by default for batch and per-function fan-out.
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 8)
}

// ---------------------------------------------------------------------------
// BatchDriver: many translation units, concurrently
// ---------------------------------------------------------------------------

/// One slot of a batch run: the analysis of a unit or its stage error.
pub type BatchResult = Result<Arc<UnitAnalysis>, StageError>;

/// Analyzes many translation units concurrently over one shared
/// [`AnalysisSession`] (and therefore one shared artifact cache).
#[derive(Debug)]
pub struct BatchDriver {
    session: Arc<AnalysisSession>,
    threads: usize,
}

impl BatchDriver {
    /// A driver over a fresh default session.
    pub fn new() -> BatchDriver {
        BatchDriver::with_session(Arc::new(AnalysisSession::new()))
    }

    /// A driver over an existing session (shares its cache).
    pub fn with_session(session: Arc<AnalysisSession>) -> BatchDriver {
        BatchDriver {
            session,
            threads: default_parallelism(),
        }
    }

    /// Override the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> BatchDriver {
        self.threads = threads.max(1);
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &AnalysisSession {
        &self.session
    }

    /// Analyze every `(name, source)` pair, preserving input order. Units
    /// are distributed over scoped worker threads; results (or stage
    /// errors) land in the slot of their input.
    pub fn analyze_all(&self, inputs: &[(String, String)]) -> Vec<BatchResult> {
        parallel_map_indexed(self.threads, inputs.len(), |i| {
            let (name, source) = &inputs[i];
            self.session.analyze(name, source)
        })
    }

    /// Transform every `(name, source)` pair, preserving input order.
    pub fn transform_all(
        &self,
        inputs: &[(String, String)],
    ) -> Vec<Result<TransformResult, StageError>> {
        self.analyze_all(inputs)
            .into_iter()
            .map(|r| r.map(|a| a.to_transform_result()))
            .collect()
    }
}

impl Default for BatchDriver {
    fn default() -> Self {
        BatchDriver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
#define N 32
double a[N];
int main() {
  for (int it = 0; it < 4; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) a[i] += 1.0;
  }
  printf(\"%f\\n\", a[0]);
  return 0;
}
";

    #[test]
    fn stages_compose_to_the_one_shot_result() {
        let session = AnalysisSession::new();
        let parsed = session.parse("demo.c", DEMO).unwrap();
        let graphs = session.graphs(&parsed);
        let accesses = session.accesses(&parsed, &graphs);
        let summaries = session.summaries(&parsed, &accesses);
        let plans = session.plan(&parsed, &graphs, &accesses, &summaries);
        let rewrite = session.rewrite(&parsed, &graphs, &plans);

        #[allow(deprecated)] // compat pin: staged stages == legacy one-shot
        let one_shot = crate::transform("demo.c", DEMO).unwrap();
        assert_eq!(one_shot.transformed_source, rewrite.source);
        assert_eq!(one_shot.stats, plans.stats);
        assert_eq!(one_shot.plans.len(), plans.plans.len());
    }

    #[test]
    fn cache_hits_skip_every_stage() {
        let session = AnalysisSession::new();
        let first = session.analyze("demo.c", DEMO).unwrap();
        let before = session.timings();
        let second = session.analyze("demo.c", DEMO).unwrap();
        let after = session.timings();
        assert!(
            Arc::ptr_eq(&first, &second),
            "cache hit must return the same artifacts"
        );
        assert_eq!(
            before.total(),
            after.total(),
            "a cache hit must not spend stage time"
        );
        let stats = session.cache_stats();
        assert_eq!(stats.analysis_hits, 1);
        assert_eq!(stats.analysis_misses, 1);
        assert_eq!(stats.parse_misses, 1);
    }

    #[test]
    fn stage_errors_are_typed() {
        let session = AnalysisSession::new();
        let err = session
            .analyze("broken.c", "int main( { return 0; }\n")
            .unwrap_err();
        assert!(matches!(err, StageError::Parse { .. }));
        assert_eq!(err.stage(), Stage::Parse);

        let mapped = "\
#define N 8
double a[N];
void f() {
  #pragma omp target data map(tofrom: a)
  {
    #pragma omp target
    for (int i = 0; i < N; i++) a[i] = i;
  }
}
";
        let err = session.analyze("mapped.c", mapped).unwrap_err();
        assert!(matches!(err, StageError::AlreadyMapped { .. }));
    }

    #[test]
    fn parallel_plan_stage_matches_serial() {
        let src = "\
#define N 16
double a[N];
double b[N];
void f() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) a[i] = i;
}
void g() {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) b[i] = 2 * i;
}
int main() { f(); g(); printf(\"%f %f\\n\", a[1], b[1]); return 0; }
";
        let serial = AnalysisSession::new().with_parallelism(1);
        let parallel = AnalysisSession::new().with_parallelism(4);
        let a = serial.analyze("fg.c", src).unwrap();
        let b = parallel.analyze("fg.c", src).unwrap();
        assert_eq!(a.rewrite.source, b.rewrite.source);
        assert_eq!(a.plans.stats, b.plans.stats);
        let funcs: Vec<_> = a.plans.plans.iter().map(|p| p.function.clone()).collect();
        let funcs_b: Vec<_> = b.plans.plans.iter().map(|p| p.function.clone()).collect();
        assert_eq!(funcs, funcs_b, "plan order must be deterministic");
    }

    #[test]
    fn batch_driver_analyzes_units_concurrently_and_in_order() {
        let inputs: Vec<(String, String)> = (0..6)
            .map(|i| {
                (
                    format!("unit{i}.c"),
                    format!(
                        "#define N 32\ndouble arr{i}[N];\nint main() {{\n  for (int t = 0; t < 3; t++) {{\n    #pragma omp target teams distribute parallel for\n    for (int j = 0; j < N; j++) arr{i}[j] += {i};\n  }}\n  printf(\"%f\\n\", arr{i}[0]);\n  return 0;\n}}\n"
                    ),
                )
            })
            .collect();
        let driver = BatchDriver::new().with_threads(4);
        let results = driver.analyze_all(&inputs);
        assert_eq!(results.len(), 6);
        for (i, result) in results.iter().enumerate() {
            let analysis = result.as_ref().expect("unit failed");
            assert_eq!(analysis.parsed.name, format!("unit{i}.c"));
            assert!(analysis.rewrite.source.contains("#pragma omp target data"));
        }
        assert_eq!(driver.session().cache_stats().analysis_misses, 6);

        // Re-running the same corpus is served from the cache.
        let again = driver.analyze_all(&inputs);
        assert_eq!(driver.session().cache_stats().analysis_hits, 6);
        for (a, b) in results.iter().zip(&again) {
            assert!(Arc::ptr_eq(a.as_ref().unwrap(), b.as_ref().unwrap()));
        }
    }

    #[test]
    fn timings_cover_every_stage() {
        let session = AnalysisSession::new();
        let analysis = session.analyze("demo.c", DEMO).unwrap();
        let timings = analysis.timings();
        assert!(timings.total() > Duration::ZERO);
        let rendered = format!("{timings}");
        for stage in Stage::ALL {
            assert!(rendered.contains(stage.name()), "{rendered}");
        }
    }
}
