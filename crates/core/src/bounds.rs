//! Array access-pattern and loop-bounds analysis (Section IV-E of the
//! paper).
//!
//! OMPDart extends the compile-time bounds analysis of Guo et al. to nested
//! loops and multidimensional arrays, and uses it to place `target update`
//! directives: an update needed for an array access deep inside a loop nest
//! should be hoisted out of every loop that does not affect the array's
//! indexing (the Listing 6 / backprop example, worth 14x in the paper), but
//! never above `locLim` — the end of the preceding kernel's scope.
//! [`find_update_insert_loc`] is a faithful implementation of the paper's
//! Algorithm 1.

use ompdart_frontend::ast::*;
use ompdart_frontend::printer::expr_to_c;
use ompdart_graph::StmtIndex;

/// Bounds of a canonical `for` loop.
#[derive(Clone, Debug)]
pub struct LoopBounds {
    /// Induction variable.
    pub var: String,
    /// Lower bound expression (from the initialization statement).
    pub lower: Option<Expr>,
    /// Bound expression from the condition.
    pub upper: Option<Expr>,
    /// True if the loop condition is inclusive (`<=` / `>=`).
    pub inclusive: bool,
    /// +1 for increasing loops, -1 for decreasing, other values for strided
    /// loops (`i += 4`).
    pub step: i64,
}

impl LoopBounds {
    /// The number of iterations, when all bound expressions are constants.
    pub fn trip_count(&self, lookup: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        let lower = self.lower.as_ref()?.const_eval(lookup)?;
        let upper = self.upper.as_ref()?.const_eval(lookup)?;
        let step = if self.step == 0 { 1 } else { self.step.abs() };
        let span = if self.step >= 0 {
            upper - lower
        } else {
            lower - upper
        };
        let span = span + i64::from(self.inclusive);
        if span <= 0 {
            return Some(0);
        }
        Some((span + step - 1) / step)
    }

    /// The (exclusive) extent of the iteration space rendered as C source,
    /// usable as an array-section length for accesses indexed directly by
    /// the induction variable.
    pub fn extent_source(&self) -> Option<String> {
        let upper = self.upper.as_ref()?;
        let text = expr_to_c(upper);
        Some(if self.inclusive {
            format!("{text} + 1")
        } else {
            text
        })
    }
}

/// Extract the bounds of a `for` statement in canonical
/// `for (init; cond; inc)` form; returns `None` when any component is
/// missing or too complex (the conservative fallback of the paper).
pub fn loop_bounds(stmt: &Stmt) -> Option<LoopBounds> {
    let StmtKind::For {
        init, cond, inc, ..
    } = &stmt.kind
    else {
        return None;
    };

    // Induction variable and lower bound from the init statement.
    let (var, lower) = match init.as_deref() {
        Some(ForInit::Decl(decls)) if decls.len() == 1 => {
            let d = &decls[0];
            let lower = match &d.init {
                Some(Init::Expr(e)) => Some(e.clone()),
                _ => None,
            };
            (d.name.to_string(), lower)
        }
        Some(ForInit::Expr(e)) => match &e.kind {
            ExprKind::Assign {
                op: AssignOp::Assign,
                lhs,
                rhs,
            } => {
                let name = lhs.base_variable()?.to_string();
                (name, Some((**rhs).clone()))
            }
            _ => return None,
        },
        _ => return None,
    };

    // Upper bound from the condition.
    let cond = cond.as_ref()?;
    let (upper, inclusive) = match &cond.kind {
        ExprKind::Binary { op, lhs, rhs } => {
            let (bound_side, inclusive) = match op {
                BinaryOp::Lt | BinaryOp::Gt => (rhs, false),
                BinaryOp::Le | BinaryOp::Ge => (rhs, true),
                BinaryOp::Ne => (rhs, false),
                _ => return None,
            };
            // The induction variable must appear on the left-hand side.
            if lhs.base_variable() != Some(var.as_str()) {
                return None;
            }
            ((**bound_side).clone(), inclusive)
        }
        _ => return None,
    };

    // Step from the increment expression.
    let step = match inc {
        Some(inc) => step_of(inc, &var)?,
        None => return None,
    };

    Some(LoopBounds {
        var,
        lower,
        upper: Some(upper),
        inclusive,
        step,
    })
}

fn step_of(expr: &Expr, var: &str) -> Option<i64> {
    match &expr.kind {
        ExprKind::Unary { op, operand, .. } => {
            if operand.base_variable() != Some(var) {
                return None;
            }
            match op {
                UnaryOp::Inc => Some(1),
                UnaryOp::Dec => Some(-1),
                _ => None,
            }
        }
        ExprKind::Assign { op, lhs, rhs } => {
            if lhs.base_variable() != Some(var) {
                return None;
            }
            let amount = rhs.const_eval(&|_| None);
            match (op, amount) {
                (AssignOp::Add, Some(v)) => Some(v),
                (AssignOp::Sub, Some(v)) => Some(-v),
                (AssignOp::Assign, _) => {
                    // i = i + c / i = i - c
                    match &rhs.kind {
                        ExprKind::Binary {
                            op: BinaryOp::Add,
                            lhs: l,
                            rhs: r,
                        } if l.base_variable() == Some(var) => r.const_eval(&|_| None),
                        ExprKind::Binary {
                            op: BinaryOp::Sub,
                            lhs: l,
                            rhs: r,
                        } if l.base_variable() == Some(var) => r.const_eval(&|_| None).map(|v| -v),
                        _ => None,
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// The induction variable of a `for` loop, when it can be determined (the
/// `findIndexingVar` helper of Algorithm 1).
pub fn indexing_var(stmt: &Stmt) -> Option<String> {
    loop_bounds(stmt).map(|b| b.var)
}

/// Faithful implementation of the paper's **Algorithm 1**: determine the
/// statement a `target update to/from()` directive should precede (or
/// follow) for an array access nested inside loops of arbitrary depth.
///
/// * `access_stmt` — the statement containing the array access `a`.
/// * `indices` — the subscript expressions of the access.
/// * `loops` — the enclosing loops (outermost first) paired with their AST
///   statements; the algorithm pops from the innermost end.
/// * `loc_lim` — a statement the directive must not precede (typically the
///   end of the preceding target kernel's scope).
pub fn find_update_insert_loc(
    access_stmt: NodeId,
    indices: &[Expr],
    loops: &[(NodeId, &Stmt)],
    loc_lim: Option<NodeId>,
    index: &StmtIndex,
) -> NodeId {
    // indexingVars <- getReferencedVars(idxExpr)
    let mut indexing_vars: Vec<String> = Vec::new();
    for idx in indices {
        for v in idx.referenced_vars() {
            if !indexing_vars.contains(&v) {
                indexing_vars.push(v);
            }
        }
    }
    let mut pos = access_stmt;
    // The stack's top is the innermost loop.
    let mut stack: Vec<&(NodeId, &Stmt)> = loops.iter().collect();
    while let Some((loop_id, loop_stmt)) = stack.pop() {
        // if forStmt is before locLim in file then break
        if let Some(limit) = loc_lim {
            if index.is_before(*loop_id, limit) {
                break;
            }
        }
        // forIdxVar <- findIndexingVar(forStmt); skip when indeterminate
        let Some(loop_var) = indexing_var(loop_stmt) else {
            continue;
        };
        if indexing_vars.contains(&loop_var) {
            pos = *loop_id;
        }
    }
    pos
}

/// Render the accessed extent of a device array access as an array-section
/// length, by matching the subscript's innermost loop bound. Returns `None`
/// when the access pattern is too complex; callers then fall back to mapping
/// the whole object.
pub fn section_length_from_loops(indices: &[Expr], loops: &[(NodeId, &Stmt)]) -> Option<String> {
    // Only handle the common `a[i]` / `a[i*stride + ...]` patterns where the
    // extent is governed by the innermost loop whose variable appears in the
    // subscript.
    let vars: Vec<String> = indices.iter().flat_map(|e| e.referenced_vars()).collect();
    for (_, loop_stmt) in loops.iter().rev() {
        if let Some(bounds) = loop_bounds(loop_stmt) {
            if vars.contains(&bounds.var) && indices.len() == 1 {
                // Direct indexing by the induction variable: the extent is the
                // loop bound itself.
                if let ExprKind::Ident(name) = &indices[0].kind {
                    if *name == bounds.var {
                        return bounds.extent_source();
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompdart_frontend::parser::parse_str;
    use ompdart_graph::StmtIndex;

    fn first_function(src: &str) -> (ompdart_frontend::ast::FunctionDef, StmtIndex) {
        let (_f, result) = parse_str("t.c", src);
        assert!(result.is_ok(), "{:?}", result.diagnostics);
        let func = result.unit.functions().next().unwrap().clone();
        let index = StmtIndex::build(&func);
        (func, index)
    }

    fn loops_of(func: &ompdart_frontend::ast::FunctionDef) -> Vec<(NodeId, Stmt)> {
        let mut out = Vec::new();
        func.body.as_ref().unwrap().walk(&mut |s| {
            if s.is_loop() {
                out.push((s.id, s.clone()));
            }
        });
        out
    }

    #[test]
    fn canonical_for_bounds() {
        let (func, _) =
            first_function("void f(int n) { for (int i = 0; i < n; i++) { int x = i; } }\n");
        let loops = loops_of(&func);
        let b = loop_bounds(&loops[0].1).unwrap();
        assert_eq!(b.var, "i");
        assert_eq!(b.step, 1);
        assert!(!b.inclusive);
        assert_eq!(b.lower.as_ref().unwrap().const_eval(&|_| None), Some(0));
        assert_eq!(b.extent_source().unwrap(), "n");
    }

    #[test]
    fn bounds_with_division_like_listing_4() {
        // The paper's Listing 4/5 example: upper bound 100/2, trip count 50.
        let (func, _) = first_function(
            "#define N 100\nvoid f() { int a[N]; for (int i = 0; i < N/2; i++) { a[i] = i; } }\n",
        );
        let loops = loops_of(&func);
        let b = loop_bounds(&loops[0].1).unwrap();
        assert_eq!(b.trip_count(&|_| None), Some(50));
    }

    #[test]
    fn inclusive_and_decreasing_loops() {
        let (func, _) = first_function(
            "void f(int n) { for (int j = 1; j <= n; j++) {} for (int k = n; k > 0; k--) {} for (int m = 0; m < n; m += 4) {} }\n",
        );
        let loops = loops_of(&func);
        let b0 = loop_bounds(&loops[0].1).unwrap();
        assert!(b0.inclusive);
        assert_eq!(b0.trip_count(&|name| (name == "n").then_some(10)), Some(10));
        let b1 = loop_bounds(&loops[1].1).unwrap();
        assert_eq!(b1.step, -1);
        assert_eq!(b1.trip_count(&|name| (name == "n").then_some(10)), Some(10));
        let b2 = loop_bounds(&loops[2].1).unwrap();
        assert_eq!(b2.step, 4);
        assert_eq!(b2.trip_count(&|name| (name == "n").then_some(10)), Some(3));
    }

    #[test]
    fn non_canonical_loops_are_rejected() {
        let (func, _) = first_function(
            "void f(int n) { int i = 0; for (; i < n; i++) {} for (int j = 0; check(j); j++) {} }\n",
        );
        let loops = loops_of(&func);
        // missing init declaration -> init is an expression-less `for (; ...)`
        assert!(loop_bounds(&loops[0].1).is_none());
        // call in the condition -> rejected
        assert!(loop_bounds(&loops[1].1).is_none());
    }

    #[test]
    fn while_loops_have_no_bounds() {
        let (func, _) = first_function("void f(int n) { int i = 0; while (i < n) { i++; } }\n");
        let loops = loops_of(&func);
        assert!(loop_bounds(&loops[0].1).is_none());
        assert!(indexing_var(&loops[0].1).is_none());
    }

    /// The backprop / Listing 6 scenario: a host summation over
    /// `partial_sum[k * hid + j - 1]` nested in two loops; the update must be
    /// hoisted before the outermost (j) loop.
    const LISTING6: &str = "\
#define HID 16
#define NB 64
double partial_sum[NB * HID];
double hidden_units[HID + 1];
double input_weights[HID + 1];
void reduce(int hid, int num_blocks) {
  #pragma omp target teams distribute parallel for
  for (int t = 0; t < NB * HID; t++) {
    partial_sum[t] = t * 0.5;
  }
  for (int j = 1; j <= hid; j++) {
    double sum = 0.0;
    for (int k = 0; k < num_blocks; k++) {
      sum += partial_sum[k * hid + j - 1];
    }
    sum += input_weights[j];
    hidden_units[j] = 1.0 / (1.0 + exp(-sum));
  }
}
";

    #[test]
    fn algorithm1_hoists_out_of_both_loops() {
        let (func, index) = first_function(LISTING6);
        let loops = loops_of(&func);
        // Find the host access statement and its enclosing loops (j, k).
        let mut access_stmt = None;
        let mut indices = Vec::new();
        func.body.as_ref().unwrap().walk(&mut |s| {
            if let StmtKind::Expr(e) = &s.kind {
                if e.referenced_vars().contains(&"partial_sum".to_string())
                    && !index.info(s.id).unwrap().offloaded
                {
                    access_stmt = Some(s.id);
                    e.walk(&mut |sub| {
                        if let ExprKind::Index { index: idx, .. } = &sub.kind {
                            indices.push((**idx).clone());
                        }
                    });
                }
            }
        });
        let access_stmt = access_stmt.expect("host access not found");
        let enclosing: Vec<(NodeId, &Stmt)> = {
            let ids = index.enclosing_loops(access_stmt).to_vec();
            ids.iter()
                .map(|id| {
                    let stmt = loops.iter().find(|(lid, _)| lid == id).unwrap();
                    (*id, &stmt.1)
                })
                .collect()
        };
        assert_eq!(enclosing.len(), 2);
        let kernel = index.kernels()[0];
        let pos = find_update_insert_loc(access_stmt, &indices, &enclosing, Some(kernel), &index);
        // Both loop variables (j through `j - 1`, k through `k * hid`) appear
        // in the subscript, so the insert location is the *outermost* loop.
        assert_eq!(pos, enclosing[0].0);
    }

    #[test]
    fn algorithm1_respects_loc_lim() {
        // When the kernel lives *inside* the outer loop, the directive must
        // not be hoisted above it.
        let src = "\
#define N 32
double a[N];
void f(int n) {
  for (int it = 0; it < 10; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) a[i] += 1.0;
    double s = 0.0;
    for (int i = 0; i < n; i++) s += a[i];
  }
}
";
        let (func, index) = first_function(src);
        let loops = loops_of(&func);
        let mut access_stmt = None;
        let mut indices = Vec::new();
        func.body.as_ref().unwrap().walk(&mut |s| {
            if let StmtKind::Expr(e) = &s.kind {
                let vars = e.referenced_vars();
                if vars.contains(&"s".to_string()) && vars.contains(&"a".to_string()) {
                    access_stmt = Some(s.id);
                    e.walk(&mut |sub| {
                        if let ExprKind::Index { index: idx, .. } = &sub.kind {
                            indices.push((**idx).clone());
                        }
                    });
                }
            }
        });
        let access_stmt = access_stmt.unwrap();
        let ids = index.enclosing_loops(access_stmt).to_vec();
        let enclosing: Vec<(NodeId, &Stmt)> = ids
            .iter()
            .map(|id| (*id, &loops.iter().find(|(lid, _)| lid == id).unwrap().1))
            .collect();
        let kernel = index.kernels()[0];
        let pos = find_update_insert_loc(access_stmt, &indices, &enclosing, Some(kernel), &index);
        // The outer `it` loop precedes the kernel (locLim), so the insertion
        // point stays at the inner summation loop.
        assert_eq!(pos, *ids.last().unwrap());
    }

    #[test]
    fn algorithm1_without_loops_returns_access() {
        let (func, index) = first_function("double a[4];\nvoid f() { a[0] = 1.0; }\n");
        let mut stmt = None;
        func.body.as_ref().unwrap().walk(&mut |s| {
            if matches!(s.kind, StmtKind::Expr(_)) {
                stmt = Some(s.id);
            }
        });
        let s = stmt.unwrap();
        assert_eq!(find_update_insert_loc(s, &[], &[], None, &index), s);
    }

    #[test]
    fn section_length_for_simple_indexing() {
        let (func, _) = first_function(
            "void f(double *a, int n) { for (int i = 0; i < n; i++) { a[i] = i; } }\n",
        );
        let loops = loops_of(&func);
        let refs: Vec<(NodeId, &Stmt)> = loops.iter().map(|(id, s)| (*id, s)).collect();
        // index expression is plain `i`
        let mut idx_expr = None;
        func.body.as_ref().unwrap().walk(&mut |s| {
            if let StmtKind::Expr(e) = &s.kind {
                e.walk(&mut |sub| {
                    if let ExprKind::Index { index, .. } = &sub.kind {
                        idx_expr = Some((**index).clone());
                    }
                });
            }
        });
        let length = section_length_from_loops(&[idx_expr.unwrap()], &refs);
        assert_eq!(length.as_deref(), Some("n"));
    }
}
