//! The whole-program link stage: cross-translation-unit summaries,
//! program-level liveness, and the two-phase [`ProgramDriver`].
//!
//! The per-unit pipeline treats every translation unit as a closed world:
//! a call into another file has no summary, so
//! [`crate::interproc::augment_with_call_effects`] falls back to the
//! maximally pessimistic host read+write assumption and every cross-file
//! call forces conservative `tofrom` mappings. This module adds a *link
//! layer* between the Summaries and Plans stages:
//!
//! 1. **Export** — each unit's [`ExportedInterface`] collects the
//!    prototypes, local interprocedural summaries, and referenced-variable
//!    sets of its defined functions, plus a stable fingerprint of all of
//!    it.
//! 2. **Link** — [`Program::link`] merges every unit's call graph and
//!    re-runs the interprocedural fixed point to convergence *across*
//!    units ([`LinkedSummaries`]), so a callee defined in another file
//!    resolves to its real summary.
//! 3. **Plan** — each unit is planned against the linked summaries and a
//!    cross-unit [`ExternalRefs`] view, so whole-program exit liveness
//!    (the dead-exit-copy demotion) still works when the kernel and the
//!    last reader live in different files.
//!
//! [`ProgramDriver`] packages the three phases as *parallel summarize →
//! sequential link → parallel plan* over one shared
//! [`AnalysisSession`]; a single-unit program is the degenerate case and
//! produces byte-identical output to [`AnalysisSession::analyze`]. The
//! defining golden property, pinned by `tests/whole_program.rs` and the
//! split proptest: analyzing `k` units as one linked program rewrites each
//! unit byte-identically to analyzing the concatenation of all `k` unit
//! sources as a single translation unit.

use crate::dataflow::function_referenced_vars;
use crate::interproc::{FunctionSummary, ProgramSummaries, PropagationNode};
use crate::pipeline::{
    summary_fingerprint, AnalysisSession, Fnv, StageError, SummarizedUnit, UnitAnalysis,
};
use ompdart_frontend::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Referenced-variable sets of functions defined in *other* translation
/// units, keyed by (link-resolved) function name. The exit-liveness scan of
/// the planning stage consults this exactly like it scans same-unit
/// functions. Values are `Arc`-shared with the per-unit memoized exports,
/// so assembling the program-wide map never deep-copies a set.
pub type ExternalRefs = BTreeMap<Symbol, Arc<BTreeSet<String>>>;

/// The link-fingerprint value of analyses that are not part of any linked
/// program (the classic single-unit path).
pub const UNLINKED: u64 = 0;

/// The unit-private symbol a cross-unit `static` function links under:
/// `name@unit`. `@` cannot appear in a C identifier, so mangled names can
/// never collide with source-level ones. Calls inside the defining unit
/// resolve to the mangled symbol; other units never see it.
fn mangle_static(name: &str, unit: &str) -> String {
    format!("{name}@{unit}")
}

// ---------------------------------------------------------------------------
// ExportedInterface
// ---------------------------------------------------------------------------

/// What one translation unit exports to the rest of the program: for every
/// defined function its prototype shape, its *local* interprocedural
/// summary, and the set of variables its body references (whole-program
/// liveness input). The [`ExportedInterface::fingerprint`] is stable across
/// edits that do not change any of those facts — which is precisely when
/// other units' cached plans remain valid.
#[derive(Clone, Debug)]
pub struct ExportedInterface {
    /// The unit's name (diagnostics file name).
    pub unit: String,
    /// Names of the functions the unit defines, in source order.
    pub functions: Vec<String>,
    /// Stable fingerprint of the exported surface: function prototypes,
    /// local summaries, and referenced-variable sets.
    pub fingerprint: u64,
}

impl ExportedInterface {
    /// Export the interface of one summarized unit.
    pub fn of(unit: &SummarizedUnit) -> ExportedInterface {
        ExportedInterface::with_refs(unit, &unit_referenced_vars(unit))
    }

    /// [`ExportedInterface::of`] with the unit's referenced-variable sets
    /// already computed (the link stage computes them once per unit and
    /// shares them with every [`LinkContext`] instead of re-walking ASTs).
    fn with_refs(unit: &SummarizedUnit, refs: &ExternalRefs) -> ExportedInterface {
        let functions: Vec<String> = unit
            .parsed
            .unit
            .functions()
            .map(|f| f.name.to_string())
            .collect();
        // Hash in name order so the fingerprint is insensitive to function
        // reordering that changes nothing observable.
        let mut sorted: Vec<&ompdart_frontend::ast::FunctionDef> =
            unit.parsed.unit.functions().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        let mut h = Fnv::new();
        for f in sorted {
            h.write_str(&f.name);
            h.write_u64(f.params.len() as u64);
            for p in &f.params {
                h.write(&[u8::from(p.is_const_pointee)]);
            }
            h.write(&[u8::from(f.is_variadic)]);
            // Unit-private `static` functions are invisible to other units'
            // call resolution but still participate in whole-program
            // liveness, so the storage class is part of the surface.
            h.write(&[u8::from(f.is_static)]);
            match unit.summaries.summaries.summary(&f.name) {
                Some(s) => {
                    h.write(&[1]);
                    h.write_u64(summary_fingerprint(s));
                }
                None => h.write(&[0]),
            }
            if let Some(vars) = refs.get(&f.name) {
                for var in vars.iter() {
                    h.write_str(var);
                }
            }
            h.write(&[0xfe]);
        }
        ExportedInterface {
            unit: unit.parsed.name.clone(),
            functions,
            fingerprint: h.finish(),
        }
    }
}

/// The referenced-variable sets of every function a unit defines, keyed by
/// function name — one AST walk per function, computed once per unit.
fn unit_referenced_vars(unit: &SummarizedUnit) -> ExternalRefs {
    unit.parsed
        .unit
        .functions()
        .map(|f| (f.name, Arc::new(function_referenced_vars(f))))
        .collect()
}

/// One function's link-ready propagation inputs, resolved once per unit
/// *content*: its mangled name (statics), resolved call list, parameter
/// names, and local seed summary. [`Program::relink`] assembles the merged
/// call graph from these by borrowing — no per-relink name mangling, call
/// re-resolution, or node rebuilding.
#[derive(Debug)]
pub(crate) struct LinkFunction {
    /// Source-level name (artifact-map key inside the unit).
    pub(crate) source: Symbol,
    /// Link-resolved name: `name@unit` for statics, `source` otherwise.
    pub(crate) resolved: Symbol,
    /// Parameter names, in declaration order.
    pub(crate) params: Vec<Symbol>,
    /// Call sites with callee names link-resolved.
    pub(crate) calls: Vec<crate::access::CallSite>,
    /// The local seed summary under its resolved name.
    pub(crate) seed: FunctionSummary,
}

/// Everything the link stage derives from one unit's own content: its
/// referenced-variable sets, its [`ExportedInterface`], and its resolved
/// propagation inputs. Memoized on the [`SummarizedUnit`] itself (a
/// `OnceLock`), so a content-identical unit — which keeps its `Arc` across
/// rounds thanks to the summarize cache — pays the AST walks, name
/// mangling, and call resolution once per unit *content*, not once per
/// relink.
#[derive(Debug)]
pub(crate) struct UnitExports {
    /// Referenced variables per defined function, keyed by *resolved* name
    /// (statics mangled) — exactly the entries the program-wide
    /// `extern_refs` map takes, values `Arc`-shared.
    pub(crate) resolved_refs: ExternalRefs,
    /// The unit's exported interface (prototypes, summaries, refs).
    pub(crate) interface: Arc<ExportedInterface>,
    /// `(source, resolved)` name of every defined function, in source
    /// order (duplicate-definition rejection reads these).
    pub(crate) names: Vec<(Symbol, Symbol)>,
    /// `(source, mangled)` for the unit's `static` functions (the
    /// static-shadowing summary views read these).
    pub(crate) statics_mangled: Vec<(Symbol, Symbol)>,
    /// Link-ready propagation inputs per function with full artifacts.
    pub(crate) link_funcs: Vec<LinkFunction>,
}

impl SummarizedUnit {
    /// The memoized link-stage exports of this unit (see [`UnitExports`]).
    pub(crate) fn exports(&self) -> &UnitExports {
        self.link_exports.get_or_init(|| {
            let refs = unit_referenced_vars(self);
            let interface = Arc::new(ExportedInterface::with_refs(self, &refs));
            let uname = &self.parsed.name;
            let statics: BTreeSet<Symbol> = self
                .parsed
                .unit
                .functions()
                .filter(|f| f.is_static)
                .map(|f| f.name)
                .collect();
            let statics_mangled: Vec<(Symbol, Symbol)> = statics
                .iter()
                .map(|&s| (s, Symbol::intern(&mangle_static(&s, uname))))
                .collect();
            let resolve = |name: Symbol| -> Symbol {
                match statics_mangled.iter().find(|(s, _)| *s == name) {
                    Some(&(_, mangled)) => mangled,
                    None => name,
                }
            };
            let names: Vec<(Symbol, Symbol)> = self
                .parsed
                .unit
                .functions()
                .map(|f| (f.name, resolve(f.name)))
                .collect();
            let resolved_refs: ExternalRefs = refs
                .iter()
                .map(|(name, vars)| (resolve(*name), Arc::clone(vars)))
                .collect();
            let link_funcs: Vec<LinkFunction> = self
                .parsed
                .unit
                .functions()
                .filter_map(|f| {
                    let seed = self.summaries.seeds.get(&f.name)?;
                    let acc = self.accesses.accesses.get(&f.name)?;
                    let resolved = resolve(f.name);
                    let mut calls = acc.calls.clone();
                    for call in &mut calls {
                        call.callee = resolve(call.callee);
                    }
                    let mut seed = seed.clone();
                    seed.name = resolved;
                    Some(LinkFunction {
                        source: f.name,
                        resolved,
                        params: f.params.iter().map(|p| p.name).collect(),
                        calls,
                        seed,
                    })
                })
                .collect();
            UnitExports {
                resolved_refs,
                interface,
                names,
                statics_mangled,
                link_funcs,
            }
        })
    }
}

// ---------------------------------------------------------------------------
// LinkedSummaries and LinkContext
// ---------------------------------------------------------------------------

/// The output of the link fixed point: whole-program interprocedural
/// summaries (every cross-unit callee resolved to its real effects) plus
/// the map from function name to defining unit.
#[derive(Clone, Debug)]
pub struct LinkedSummaries {
    /// Merged summaries, converged across unit boundaries. Unit-private
    /// `static` functions are keyed by their mangled `name@unit` symbol.
    pub summaries: Arc<ProgramSummaries>,
    /// Resolved function name (statics mangled) → index (into the
    /// program's unit list) of the defining unit.
    pub defined_in: BTreeMap<Symbol, usize>,
    /// Propagation passes the cross-unit fixed point took.
    pub passes: usize,
}

/// Everything the planning stage of *one unit* needs from the link layer.
#[derive(Clone, Debug)]
pub struct LinkContext {
    /// Whole-program summaries (shared across all units of the program).
    pub summaries: Arc<ProgramSummaries>,
    /// Referenced-variable sets of every function defined in another unit.
    pub extern_refs: Arc<ExternalRefs>,
    /// Fingerprint of `extern_refs`, mixed into `main`'s liveness cache
    /// fingerprint.
    pub extern_refs_fingerprint: u64,
    /// Fingerprint of the unit's *observed* imported surface: the
    /// converged summary of every callee its functions name (through the
    /// unit's static-shadowing view) plus, for units defining `main`, the
    /// program-wide referenced-variable map `main`'s exit-liveness scan
    /// consults. Threaded through the linked cache and the persistent
    /// store key: editing one file invalidates another unit's stored plans
    /// only when a fact that unit actually *reads* changed — an edit round
    /// re-plans the import cone, not the whole program.
    pub imports_fingerprint: u64,
}

fn external_refs_fingerprint(refs: &ExternalRefs) -> u64 {
    let mut h = Fnv::new();
    for (name, vars) in refs {
        h.write_str(name.as_str());
        for v in vars.iter() {
            h.write_str(v);
        }
        h.write(&[0xfd]);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Program: the linked whole-program view
// ---------------------------------------------------------------------------

/// A linked program: every unit's summarize-phase artifacts, the exported
/// interfaces, and the converged cross-unit summaries.
#[derive(Debug)]
pub struct Program {
    /// The summarized units, in input order.
    pub units: Vec<Arc<SummarizedUnit>>,
    /// Per-unit exported interfaces (same order as `units`).
    pub interfaces: Vec<Arc<ExportedInterface>>,
    /// The cross-unit link fixed point. Unit-private `static` functions
    /// appear under their mangled `name@unit` symbols here; per-unit
    /// [`LinkContext`]s expose them under their source-level names again.
    pub linked: LinkedSummaries,
    /// The *program-wide* referenced-variable map shared by every unit's
    /// [`LinkContext`]: all units' functions, other units' statics under
    /// their mangled `name@unit` symbols. Built once per relink (O(program)
    /// total, not O(units²) as the old per-unit exclusion maps were); see
    /// [`Program::link_context`] for why sharing one map is sound.
    all_refs: Arc<ExternalRefs>,
    /// Fingerprint of `all_refs` (shared by every context).
    all_refs_fingerprint: u64,
    /// Per-unit imported-surface fingerprints (see
    /// [`LinkContext::imports_fingerprint`]). Dependency-aware: unit `i`'s
    /// entry hashes the converged summaries of exactly the callees unit
    /// `i` names, so it moves only when a fact unit `i` observes changed.
    import_fps: Vec<u64>,
    /// Per-unit summary views, built once at link time for units that
    /// define statics (`None` for units without statics, which share
    /// `linked.summaries` directly). Views are lookup-only
    /// [`ProgramSummaries::overlay`]s over the linked summaries — they hold
    /// just the unit's shadowing `static` entries, not a full clone.
    unit_views: Vec<Option<Arc<ProgramSummaries>>>,
}

/// The persisted outcome of one whole-program link, kept by the
/// [`AnalysisSession`] so the *next* link of the same program can start
/// from the previous fixed point: only functions whose local fingerprint
/// (seed summary + resolved call list) changed — plus their reverse
/// call-graph cone — are re-derived from their seeds
/// ([`ProgramSummaries::propagate_incremental`]). An unchanged program
/// relinks without running a single propagation pass, and the result is
/// pinned byte-identical to a cold link.
#[derive(Debug)]
pub struct LinkState {
    /// The unit names of the linked program, in input order. A link over a
    /// different unit set falls back to a cold fixed point.
    unit_names: Vec<String>,
    /// Per-function local fingerprints (resolved names): the seed summary
    /// plus everything the propagation reads from the caller side of each
    /// call site.
    local_fps: BTreeMap<Symbol, u64>,
    /// The converged cross-unit summaries (resolved names), shared with
    /// the program's [`LinkedSummaries`] — an unchanged relink reuses the
    /// `Arc` instead of cloning the whole summary set.
    summaries: Arc<ProgramSummaries>,
    /// Propagation passes of the converged fixed point (reported when an
    /// unchanged relink skips propagation entirely).
    passes: usize,
}

/// A failure of whole-program analysis.
#[derive(Clone, Debug)]
pub enum ProgramError {
    /// One unit failed a pipeline stage (parse error, input contract).
    Unit { name: String, error: StageError },
    /// Two units define the same function: the program has no consistent
    /// link-time meaning.
    DuplicateFunction {
        function: String,
        units: [String; 2],
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Unit { name, error } => write!(f, "`{name}`: {error}"),
            ProgramError::DuplicateFunction { function, units } => write!(
                f,
                "function `{function}` is defined in both `{}` and `{}`",
                units[0], units[1]
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Link already-summarized units into one program: export interfaces,
    /// merge the call graphs, and run the interprocedural fixed point to
    /// convergence across unit boundaries.
    ///
    /// The fixed point is computed by the exact algorithm the single-unit
    /// pipeline uses ([`ProgramSummaries::compute`]) over the merged view,
    /// which is what makes a linked multi-unit analysis provably equal to a
    /// single-unit analysis of the concatenated sources.
    pub fn link(
        units: Vec<Arc<SummarizedUnit>>,
        options: &crate::OmpDartOptions,
    ) -> Result<Program, ProgramError> {
        Program::relink(units, options, None).map(|(program, _, _)| program)
    }

    /// [`Program::link`] with an optional previously converged
    /// [`LinkState`]: the cross-unit fixed point starts from the previous
    /// summaries and re-seeds only the functions whose local fingerprint
    /// changed, plus their reverse call-graph cone. Returns the program,
    /// the new link state, and the number of re-seeded functions (zero for
    /// an unchanged relink, everything-defined for a cold link reported as
    /// zero — cold links have no "re-" to speak of).
    pub fn relink(
        units: Vec<Arc<SummarizedUnit>>,
        options: &crate::OmpDartOptions,
        previous: Option<&LinkState>,
    ) -> Result<(Program, Arc<LinkState>, u64), ProgramError> {
        // Reject duplicate definitions before merging anything. Functions
        // link under their *resolved* names: unit-private `static`
        // definitions mangle to `name@unit`, so same-named statics in
        // different units coexist instead of colliding (two statics with
        // one name inside the same unit still collide, as in C). The
        // resolved names — like every other per-unit link input below —
        // come from each unit's memoized exports: a content-unchanged unit
        // keeps its summarize Arc, so no AST is re-walked (and no name is
        // re-mangled) for it on a relink.
        let mut defined_in: BTreeMap<Symbol, usize> = BTreeMap::new();
        for (idx, unit) in units.iter().enumerate() {
            for &(source, resolved) in &unit.exports().names {
                if let Some(first) = defined_in.insert(resolved, idx) {
                    return Err(ProgramError::DuplicateFunction {
                        function: source.to_string(),
                        units: [units[first].parsed.name.clone(), unit.parsed.name.clone()],
                    });
                }
            }
        }

        let interfaces: Vec<Arc<ExportedInterface>> = units
            .iter()
            .map(|u| Arc::clone(&u.exports().interface))
            .collect();

        // The program-wide referenced-variable map every LinkContext
        // shares: all units, other units' statics mangled. One map for the
        // whole program instead of one exclusion map per unit; entries are
        // Arc-shared with the per-unit memos, never deep-copied.
        let mut all_refs: ExternalRefs = BTreeMap::new();
        for unit in &units {
            for (name, vars) in &unit.exports().resolved_refs {
                all_refs.insert(*name, Arc::clone(vars));
            }
        }
        let all_refs_fingerprint = external_refs_fingerprint(&all_refs);
        let all_refs = Arc::new(all_refs);

        // The whole-program fixed point over per-function seeds. Each
        // unit's summarize phase already produced (and cached, function-
        // granularly) its local seeds; linking only merges them under
        // resolved names and (re-)runs the call-site propagation.
        let unit_names: Vec<String> = units.iter().map(|u| u.parsed.name.clone()).collect();
        let (summaries, passes, reseeded, local_fps) = if options.interprocedural {
            let threads = options.effective_link_threads();
            let (seeds, nodes) = merged_propagation_inputs(&units);
            let local_fps: BTreeMap<Symbol, u64> = nodes
                .iter()
                .map(|node| (node.name, local_fingerprint(node, &seeds)))
                .collect();

            // Previous state is only reusable for the same program (same
            // unit names, in order) — interleaving different programs over
            // one session falls back to a cold fixed point each time.
            let reusable = previous.filter(|state| state.unit_names == unit_names);
            match reusable {
                Some(state) => {
                    let dirty: BTreeSet<Symbol> = local_fps
                        .iter()
                        .filter(|(name, fp)| state.local_fps.get(*name) != Some(fp))
                        .map(|(name, _)| *name)
                        .chain(
                            state
                                .local_fps
                                .keys()
                                .filter(|name| !local_fps.contains_key(*name))
                                .copied(),
                        )
                        .collect();
                    if dirty.is_empty() {
                        // Nothing changed: the previous fixed point stands
                        // verbatim — share its Arc instead of cloning (and
                        // re-verifying) the whole summary set.
                        (Arc::clone(&state.summaries), state.passes, 0, local_fps)
                    } else {
                        let (mut merged, cone) = ProgramSummaries::propagate_incremental_parallel(
                            &nodes,
                            &seeds,
                            &state.summaries,
                            &dirty,
                            options.max_interproc_passes,
                            options.pessimistic_globals,
                            threads,
                        );
                        let passes = if cone.is_empty() {
                            // The dirty set named only removed functions:
                            // no propagation ran.
                            merged.passes = state.passes;
                            state.passes
                        } else {
                            merged.passes
                        };
                        (Arc::new(merged), passes, cone.len() as u64, local_fps)
                    }
                }
                None => {
                    // Cold link: the seed map was built fresh above, so
                    // hand it to the engine instead of cloning it again.
                    let merged = ProgramSummaries::propagate_parallel_owned(
                        &nodes,
                        seeds,
                        options.max_interproc_passes,
                        options.pessimistic_globals,
                        threads,
                    );
                    let passes = merged.passes;
                    (Arc::new(merged), passes, 0, local_fps)
                }
            }
        } else {
            (Arc::new(ProgramSummaries::default()), 0, 0, BTreeMap::new())
        };

        let state = Arc::new(LinkState {
            unit_names,
            local_fps,
            summaries: Arc::clone(&summaries),
            passes,
        });
        // Per-unit views for static-bearing units, built once here rather
        // than on every `link_context` call: the unit's own statics appear
        // under their source-level names (shadowing any same-named
        // external symbol, as C scoping does). Each view is an overlay
        // holding only those shadowing entries — resolution of every other
        // name falls through to the shared linked summaries.
        let unit_views: Vec<Option<Arc<ProgramSummaries>>> = units
            .iter()
            .map(|unit| {
                let statics = &unit.exports().statics_mangled;
                if statics.is_empty() {
                    return None;
                }
                let mut view = ProgramSummaries::overlay(Arc::clone(&summaries));
                for &(name, mangled) in statics {
                    if let Some(summary) = summaries.summary(mangled) {
                        let mut summary = summary.clone();
                        summary.name = name;
                        view.insert(name, summary);
                    }
                }
                Some(Arc::new(view))
            })
            .collect();

        // Dependency-aware imported-surface fingerprints, derived from the
        // *converged* fixed point: for each unit, hash the summary of
        // every callee its functions name — resolved through the unit's
        // static-shadowing view, exactly as planning resolves them — plus
        // the program-wide referenced-variable map for units defining
        // `main` (the only consumer of `extern_refs`). These cover every
        // cross-unit fact `analyze_linked` can observe, so an edit in unit
        // A moves unit B's fingerprint only when a summary B actually
        // reads changed: the edit path re-plans the import cone, not the
        // program. (The old scheme hashed all *other* units' exported
        // interfaces, so any interface change anywhere invalidated every
        // unit — `one_edit_ms` tracked program size, not cone size.)
        let import_fps: Vec<u64> = units
            .iter()
            .enumerate()
            .map(|(idx, unit)| {
                let view: &ProgramSummaries = match &unit_views[idx] {
                    Some(view) => view,
                    None => &summaries,
                };
                let mut h = Fnv::new();
                let mut defines_main = false;
                for f in unit.parsed.unit.functions() {
                    defines_main |= f.name == "main";
                    h.write_str(&f.name);
                    h.write_u64(crate::pipeline::callees_fingerprint(
                        f.name,
                        &unit.accesses,
                        view,
                        &unit.parsed.unit,
                    ));
                    h.write(&[0xee]);
                }
                if defines_main {
                    h.write(&[1]);
                    h.write_u64(all_refs_fingerprint);
                }
                h.finish()
            })
            .collect();

        let program = Program {
            units,
            interfaces,
            linked: LinkedSummaries {
                summaries,
                defined_in,
                passes,
            },
            all_refs,
            all_refs_fingerprint,
            import_fps,
            unit_views,
        };
        Ok((program, state, reseeded))
    }

    /// Number of units in the program.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The [`LinkContext`] for the unit at `index`, assembled in O(1) from
    /// program-wide pieces: the linked summaries (or the unit's prebuilt
    /// static-shadowing view), the shared referenced-variable map, and the
    /// unit's dependency-aware imports fingerprint.
    ///
    /// Every unit shares **one** `extern_refs` map covering *all* units —
    /// including the unit's own functions, which the per-unit maps used to
    /// exclude. That is behavior-preserving because the map's only
    /// consumer, the exit-liveness scan
    /// (`dataflow::may_be_read_after_region`), (a) short-circuits to the
    /// conservative answer for every function except `main` before
    /// consulting it, (b) skips the entry whose key equals the scanned
    /// function's own name (mangled `name@unit` symbols can never equal
    /// `main`), and (c) scans same-unit sibling functions *directly*
    /// (walking their bodies) before falling back to the map, with the
    /// identical traversal that produced the map's entries — so a same-unit
    /// entry can only confirm what the direct scan already found. Other
    /// units' statics stay under their private mangled symbols, so two
    /// same-named statics never merge their variable sets.
    pub fn link_context(&self, index: usize) -> LinkContext {
        // Per-unit summary view, prebuilt at link time for static-bearing
        // units; everyone else shares the linked summaries directly.
        let summaries = match &self.unit_views[index] {
            Some(view) => Arc::clone(view),
            None => Arc::clone(&self.linked.summaries),
        };
        LinkContext {
            summaries,
            extern_refs: Arc::clone(&self.all_refs),
            extern_refs_fingerprint: self.all_refs_fingerprint,
            imports_fingerprint: self.import_fps[index],
        }
    }

    /// The cross-unit interprocedural fixed point **alone**: seeds and call
    /// graphs merged exactly as [`Program::relink`] merges them (statics
    /// mangled), converged with the SCC-wavefront engine on `threads`
    /// workers. No interface export, liveness, or planning happens —
    /// parity tests and the `link_scale` bench use this to isolate the
    /// link fixed point from the rest of the pipeline.
    pub fn propagate_merged(
        units: &[Arc<SummarizedUnit>],
        options: &crate::OmpDartOptions,
        threads: usize,
    ) -> ProgramSummaries {
        let (seeds, nodes) = merged_propagation_inputs(units);
        ProgramSummaries::propagate_parallel_owned(
            &nodes,
            seeds,
            options.max_interproc_passes,
            options.pessimistic_globals,
            threads,
        )
    }

    /// [`Program::propagate_merged`] through the sequential reference
    /// engine (the pre-condensation whole-program sweep). Convergence on a
    /// call chain of depth `d` requires `options.max_interproc_passes >= d`
    /// here — the wavefront engine has no such requirement, which is the
    /// asymptotic difference the `link_scale` bench measures.
    pub fn propagate_merged_sequential(
        units: &[Arc<SummarizedUnit>],
        options: &crate::OmpDartOptions,
    ) -> ProgramSummaries {
        let (seeds, nodes) = merged_propagation_inputs(units);
        ProgramSummaries::propagate_sequential(
            &nodes,
            &seeds,
            options.max_interproc_passes,
            options.pessimistic_globals,
        )
    }
}

/// Merge every unit's per-function seeds and propagation nodes under their
/// link-resolved names: unit-private `static` functions (and calls to
/// them from inside their unit) mangle to `name@unit`, everything else
/// keeps its source-level name. All resolution already happened once per
/// unit content ([`UnitExports::link_funcs`]); this merge only borrows the
/// memoized call lists and clones each seed into the owned map.
fn merged_propagation_inputs(
    units: &[Arc<SummarizedUnit>],
) -> (HashMap<Symbol, FunctionSummary>, Vec<PropagationNode<'_>>) {
    let mut seeds: HashMap<Symbol, FunctionSummary> = HashMap::new();
    let mut nodes: Vec<PropagationNode<'_>> = Vec::new();
    for unit in units {
        for lf in &unit.exports().link_funcs {
            let Some(sym) = unit.accesses.symbols.get(&lf.source) else {
                continue;
            };
            seeds.insert(lf.resolved, lf.seed.clone());
            nodes.push(PropagationNode {
                name: lf.resolved,
                params: std::borrow::Cow::Borrowed(&lf.params),
                sym,
                calls: std::borrow::Cow::Borrowed(&lf.calls),
            });
        }
    }
    (seeds, nodes)
}

/// Fingerprint of everything the cross-unit propagation reads from one
/// function's caller side: its local seed summary plus, for every call
/// site, the resolved callee, the execution space, and the classification
/// of each by-reference argument. Two links in which every function's
/// local fingerprint matches converge to identical summaries — which is
/// what lets the incremental relink skip them.
fn local_fingerprint(node: &PropagationNode<'_>, seeds: &HashMap<Symbol, FunctionSummary>) -> u64 {
    let mut h = Fnv::new();
    match seeds.get(&node.name) {
        Some(seed) => {
            h.write(&[1]);
            h.write_u64(summary_fingerprint(seed));
        }
        None => h.write(&[0]),
    }
    for call in node.calls.iter() {
        h.write_str(&call.callee);
        h.write(&[u8::from(call.on_device)]);
        for arg in &call.args {
            h.write(&[u8::from(arg.by_ref)]);
            match &arg.base_var {
                Some(var) => {
                    h.write_str(var);
                    h.write(&[
                        u8::from(node.sym.is_aggregate(var)),
                        u8::from(node.sym.is_global(var)),
                    ]);
                    h.write_u64(
                        node.params
                            .iter()
                            .position(|p| p == var)
                            .map(|i| i as u64 + 1)
                            .unwrap_or(0),
                    );
                }
                None => h.write(&[0xfe]),
            }
        }
        h.write(&[0xfd]);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// ProgramDriver: the two-phase whole-program pipeline
// ---------------------------------------------------------------------------

/// How one unit of a program analysis was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitServe {
    /// The complete linked analysis came from the in-memory cache.
    Cached,
    /// Plans were loaded from the persistent artifact store.
    Store,
    /// The unit was planned this run; `reused`/`replanned` split the
    /// function-granular plan cache outcome.
    Planned { reused: u64, replanned: u64 },
}

/// One whole-program analysis: every unit's full artifact bundle (input
/// order), the exported interfaces, and how each unit was served.
#[derive(Debug)]
pub struct ProgramAnalysis {
    /// Per-unit analyses, in input order.
    pub units: Vec<Arc<UnitAnalysis>>,
    /// Per-unit exported interfaces, in input order.
    pub interfaces: Vec<Arc<ExportedInterface>>,
    /// How each unit was served, in input order.
    pub served: Vec<UnitServe>,
    /// Propagation passes of the cross-unit fixed point.
    pub link_passes: usize,
}

impl ProgramAnalysis {
    /// Sum of every unit's analysis statistics.
    pub fn stats(&self) -> crate::plan::ir::AnalysisStats {
        let mut total = crate::plan::ir::AnalysisStats::default();
        for unit in &self.units {
            let s = unit.plans.stats;
            total.functions_analyzed += s.functions_analyzed;
            total.functions_with_kernels += s.functions_with_kernels;
            total.kernels += s.kernels;
            total.mapped_variables += s.mapped_variables;
            total.map_clauses += s.map_clauses;
            total.update_directives += s.update_directives;
            total.firstprivate_clauses += s.firstprivate_clauses;
            total.unknown_callee_fallbacks += s.unknown_callee_fallbacks;
        }
        total
    }

    /// The concatenation of every unit's rewritten source, in input order
    /// (the multi-file analogue of a single rewritten translation unit).
    pub fn concatenated_rewrite(&self) -> String {
        self.units
            .iter()
            .map(|u| u.rewrite.source.as_str())
            .collect()
    }
}

/// One completed whole-program round, retained by the session for the
/// *identity fast path* of the next round: a unit whose summarized `Arc`
/// (content identity — the summarize cache guarantees identical content
/// yields one `Arc`) and imports fingerprint (everything the unit's plans
/// can observe of the other units: prototypes, summaries, referenced
/// variables) both match its entry here is served the previous round's
/// linked analysis without content hashing, cache probing, relocation or
/// re-planning.
#[derive(Debug)]
pub(crate) struct ProgramRound {
    pub(crate) units: Vec<Arc<SummarizedUnit>>,
    pub(crate) analyses: Vec<Arc<UnitAnalysis>>,
    pub(crate) interfaces: Vec<Arc<ExportedInterface>>,
    pub(crate) imports_fps: Vec<u64>,
    pub(crate) link_passes: usize,
    /// Unit name → index (last wins for duplicate names; the `Arc::ptr_eq`
    /// + fingerprint verification makes a wrong mapping harmless).
    pub(crate) by_name: HashMap<String, usize>,
}

/// Where one whole-program analysis spent its time: per-phase wall clock,
/// per-unit latency percentiles, and the process-wide worker-pool and
/// shard-lock counter deltas attributable to the call. Surfaced by
/// `ompdart analyze --profile-json`, the daemon `stats` response, and the
/// `link_scale` bench trajectory.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverProfile {
    /// Units in the program.
    pub units: usize,
    /// Units served by the identity fast path this round.
    pub fast_path_units: usize,
    /// Units served warm this round without a fresh plan fan-out:
    /// previous-round reuse (`Cached`) plus persistent-store hits
    /// (`Store`). On a fresh process whose store was populated by an
    /// earlier run, `warm_units > 0` with `edit_path == false` is the
    /// store-served warm start.
    pub warm_units: usize,
    /// True when the round rode previously recorded link state in this
    /// session (an edit round): the per-phase breakdown below is then a
    /// one-edit profile, not a cold-start one.
    pub edit_path: bool,
    /// Wall time of the parallel summarize phase.
    pub summarize: Duration,
    /// Wall time of the (incremental) link fixed point.
    pub link: Duration,
    /// Wall time spent assembling per-unit link contexts.
    pub contexts: Duration,
    /// Wall time of the parallel plan+rewrite fan-out.
    pub plan: Duration,
    /// Wall time of the batched store flush.
    pub flush: Duration,
    /// End-to-end wall time of the whole call.
    pub total: Duration,
    /// Median per-unit latency inside the plan fan-out.
    pub unit_p50: Duration,
    /// 99th-percentile per-unit latency inside the plan fan-out.
    pub unit_p99: Duration,
    /// Worker count the parallel phases actually ran at: the driver's
    /// requested thread count capped at the machine's available
    /// parallelism ([`crate::pool::effective_width`]).
    pub pool_workers: usize,
    /// Worker-pool jobs this call ran ([`crate::pool::stats`] delta).
    pub pool_jobs: u64,
    /// Indices processed by those pool jobs.
    pub pool_items: u64,
    /// Nested fan-outs that ran inline on a pool task's thread.
    pub pool_inline_jobs: u64,
    /// Fan-outs that found the pool busy and used scoped-thread fallback.
    pub pool_fallback_jobs: u64,
    /// Nanoseconds submitters idled waiting for job retirement (pool tail
    /// latency).
    pub pool_wait_ns: u64,
    /// Nanoseconds blocked on shard-cache locks
    /// ([`crate::shard::lock_stats`] delta).
    pub lock_wait_ns: u64,
    /// Shard-cache lock acquisitions that found the lock held.
    pub lock_contentions: u64,
}

impl DriverProfile {
    /// The profile as a small hand-rolled JSON object (milliseconds for
    /// the wall-clock fields).
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            concat!(
                "{{\"units\":{},\"fast_path_units\":{},",
                "\"warm_units\":{},\"edit_path\":{},",
                "\"summarize_ms\":{:.3},\"link_ms\":{:.3},\"contexts_ms\":{:.3},",
                "\"plan_ms\":{:.3},\"flush_ms\":{:.3},\"total_ms\":{:.3},",
                "\"unit_p50_ms\":{:.3},\"unit_p99_ms\":{:.3},",
                "\"pool_workers\":{},",
                "\"pool_jobs\":{},\"pool_items\":{},\"pool_inline_jobs\":{},",
                "\"pool_fallback_jobs\":{},\"pool_wait_ns\":{},",
                "\"lock_wait_ns\":{},\"lock_contentions\":{}}}"
            ),
            self.units,
            self.fast_path_units,
            self.warm_units,
            self.edit_path,
            ms(self.summarize),
            ms(self.link),
            ms(self.contexts),
            ms(self.plan),
            ms(self.flush),
            ms(self.total),
            ms(self.unit_p50),
            ms(self.unit_p99),
            self.pool_workers,
            self.pool_jobs,
            self.pool_items,
            self.pool_inline_jobs,
            self.pool_fallback_jobs,
            self.pool_wait_ns,
            self.lock_wait_ns,
            self.lock_contentions,
        )
    }
}

/// `sorted` must be ascending; returns the pct-th percentile element.
fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Analyzes many translation units as *one linked program* over a shared
/// [`AnalysisSession`]: parallel summarize → sequential link → parallel
/// plan. Contrast with [`crate::pipeline::BatchDriver`], which analyzes
/// units independently (each a closed world).
#[derive(Debug)]
pub struct ProgramDriver {
    session: Arc<AnalysisSession>,
    threads: usize,
}

impl ProgramDriver {
    /// A driver over a fresh default session.
    pub fn new() -> ProgramDriver {
        ProgramDriver::with_session(Arc::new(AnalysisSession::new()))
    }

    /// A driver over an existing session (shares all of its caches).
    pub fn with_session(session: Arc<AnalysisSession>) -> ProgramDriver {
        let threads = session.parallelism();
        ProgramDriver { session, threads }
    }

    /// Override the number of worker threads for the parallel phases.
    pub fn with_threads(mut self, threads: usize) -> ProgramDriver {
        self.threads = threads.max(1);
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &Arc<AnalysisSession> {
        &self.session
    }

    /// Phase 1+2 only: summarize every unit in parallel and link them.
    /// The link is *incremental* across calls on one session: the fixed
    /// point starts from the previously converged summaries and re-seeds
    /// only the edited functions' call-graph cone
    /// (`CacheStats::relink_reseeded_functions` proves it), byte-identical
    /// to a cold link.
    pub fn link(&self, inputs: &[(String, String)]) -> Result<Program, ProgramError> {
        let units = self.summarize_all(inputs)?;
        self.relink_units(units)
    }

    /// Phase 1: summarize every unit in parallel (input order preserved).
    fn summarize_all(
        &self,
        inputs: &[(String, String)],
    ) -> Result<Vec<Arc<SummarizedUnit>>, ProgramError> {
        let summarized = crate::pipeline::parallel_map_indexed(self.threads, inputs.len(), |i| {
            let (name, source) = &inputs[i];
            self.session
                .summarize(name, source)
                .map_err(|error| ProgramError::Unit {
                    name: name.clone(),
                    error,
                })
        });
        let mut units = Vec::with_capacity(summarized.len());
        for result in summarized {
            units.push(result?);
        }
        Ok(units)
    }

    /// Phase 2: (incrementally) link already-summarized units.
    fn relink_units(&self, units: Vec<Arc<SummarizedUnit>>) -> Result<Program, ProgramError> {
        let previous = self.session.take_link_state();
        let (program, state, reseeded) =
            Program::relink(units, self.session.options(), previous.as_deref())?;
        self.session.note_link(state, reseeded);
        Ok(program)
    }

    /// The full two-phase pipeline: parallel summarize, sequential link,
    /// parallel plan+rewrite. Results preserve input order.
    pub fn analyze_program(
        &self,
        inputs: &[(String, String)],
    ) -> Result<ProgramAnalysis, ProgramError> {
        self.analyze_program_profiled(inputs)
            .map(|(analysis, _)| analysis)
    }

    /// [`Self::analyze_program`] plus a [`DriverProfile`] of where the call
    /// spent its time.
    ///
    /// Two identity fast paths ride on the previous round recorded in the
    /// session (see [`ProgramRound`]):
    ///
    /// * **Round level** — when every unit's summarized `Arc` matches the
    ///   previous round position-wise, the whole round is the previous
    ///   round: its analyses are returned with no link, no contexts, no
    ///   planning, no flush. A warm re-analysis of an unchanged program is
    ///   N summarize-cache probes plus N pointer comparisons.
    /// * **Unit level** — on edit rounds, any unit whose `Arc` *and*
    ///   imports fingerprint match its previous-round entry reuses its
    ///   previous analysis without content hashing or cache probing; only
    ///   genuinely affected units reach `analyze_linked`.
    ///
    /// Soundness: the summarize cache guarantees identical `(name,
    /// content)` yields one `Arc`, so `Arc` identity is content identity;
    /// the imports fingerprint covers every cross-unit fact a unit's plans
    /// can observe (the same key the linked cache and the persistent store
    /// trust). Byte-identity of fast-path rounds is pinned by tests at
    /// every thread count.
    pub fn analyze_program_profiled(
        &self,
        inputs: &[(String, String)],
    ) -> Result<(ProgramAnalysis, DriverProfile), ProgramError> {
        let total_start = Instant::now();
        let pool_before = crate::pool::stats();
        let lock_before = crate::shard::lock_stats();
        let finish_profile = |mut profile: DriverProfile| {
            let pool = crate::pool::stats();
            let lock = crate::shard::lock_stats();
            profile.pool_workers = crate::pool::effective_width(self.threads);
            profile.pool_jobs = pool.jobs - pool_before.jobs;
            profile.pool_items = pool.items - pool_before.items;
            profile.pool_inline_jobs = pool.inline_jobs - pool_before.inline_jobs;
            profile.pool_fallback_jobs = pool.fallback_jobs - pool_before.fallback_jobs;
            profile.pool_wait_ns = pool.submit_wait_ns - pool_before.submit_wait_ns;
            profile.lock_wait_ns = lock.0 - lock_before.0;
            profile.lock_contentions = lock.1 - lock_before.1;
            profile.total = total_start.elapsed();
            profile
        };

        let phase = Instant::now();
        let units = self.summarize_all(inputs)?;
        let summarize = phase.elapsed();

        let round = self.session.last_round();

        // Round-level identity fast path: the whole program is the
        // previous round.
        if let Some(round) = &round {
            if round.units.len() == units.len()
                && units
                    .iter()
                    .zip(&round.units)
                    .all(|(now, prev)| Arc::ptr_eq(now, prev))
            {
                self.session.count_fast_path(units.len() as u64);
                let analysis = ProgramAnalysis {
                    units: round.analyses.clone(),
                    interfaces: round.interfaces.clone(),
                    served: vec![UnitServe::Cached; units.len()],
                    link_passes: round.link_passes,
                };
                let profile = finish_profile(DriverProfile {
                    units: units.len(),
                    fast_path_units: units.len(),
                    warm_units: units.len(),
                    edit_path: true,
                    summarize,
                    ..DriverProfile::default()
                });
                return Ok((analysis, profile));
            }
        }

        let phase = Instant::now();
        let program = self.relink_units(units)?;
        let link = phase.elapsed();

        let phase = Instant::now();
        let contexts: Vec<LinkContext> = (0..program.len())
            .map(|i| program.link_context(i))
            .collect();
        let contexts_elapsed = phase.elapsed();

        let phase = Instant::now();
        let planned = crate::pipeline::parallel_map_indexed(self.threads, program.len(), |i| {
            let unit_start = Instant::now();
            // Unit-level identity fast path: unchanged content (Arc
            // identity) under an unchanged imported surface reuses the
            // previous round's analysis outright.
            let reused = round.as_ref().and_then(|round| {
                let j = *round.by_name.get(program.units[i].parsed.name.as_str())?;
                (Arc::ptr_eq(&program.units[i], &round.units[j])
                    && contexts[i].imports_fingerprint == round.imports_fps[j])
                    .then(|| Arc::clone(&round.analyses[j]))
            });
            let (analysis, serve, fast) = match reused {
                Some(analysis) => (analysis, UnitServe::Cached, true),
                None => {
                    let (analysis, serve) =
                        self.session.analyze_linked(&program.units[i], &contexts[i]);
                    (analysis, serve, false)
                }
            };
            (analysis, serve, fast, unit_start.elapsed())
        });
        let plan = phase.elapsed();

        // One batched store flush for the whole program: the per-unit
        // write-backs queued by `analyze_linked` land on disk through one
        // pool-parallel batch (one directory sweep + one gc pass).
        let phase = Instant::now();
        self.session.flush_store_writes();
        let flush = phase.elapsed();

        let mut units = Vec::with_capacity(planned.len());
        let mut served = Vec::with_capacity(planned.len());
        let mut durations = Vec::with_capacity(planned.len());
        let mut fast_path_units = 0usize;
        for (analysis, serve, fast, elapsed) in planned {
            units.push(analysis);
            served.push(serve);
            durations.push(elapsed);
            fast_path_units += usize::from(fast);
        }
        self.session.count_fast_path(fast_path_units as u64);

        // Record this round for the next one's identity fast paths.
        let by_name: HashMap<String, usize> = program
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.parsed.name.clone(), i))
            .collect();
        self.session.note_round(Arc::new(ProgramRound {
            units: program.units.clone(),
            analyses: units.clone(),
            interfaces: program.interfaces.clone(),
            imports_fps: contexts.iter().map(|c| c.imports_fingerprint).collect(),
            link_passes: program.linked.passes,
            by_name,
        }));

        durations.sort_unstable();
        let warm_units = served
            .iter()
            .filter(|s| matches!(s, UnitServe::Cached | UnitServe::Store))
            .count();
        let profile = finish_profile(DriverProfile {
            units: units.len(),
            fast_path_units,
            warm_units,
            edit_path: round.is_some(),
            summarize,
            link,
            contexts: contexts_elapsed,
            plan,
            flush,
            unit_p50: percentile(&durations, 50),
            unit_p99: percentile(&durations, 99),
            ..DriverProfile::default()
        });
        Ok((
            ProgramAnalysis {
                units,
                interfaces: program.interfaces,
                served,
                link_passes: program.linked.passes,
            },
            profile,
        ))
    }
}

impl Default for ProgramDriver {
    fn default() -> Self {
        ProgramDriver::new()
    }
}
