//! The whole-program link stage: cross-translation-unit summaries,
//! program-level liveness, and the two-phase [`ProgramDriver`].
//!
//! The per-unit pipeline treats every translation unit as a closed world:
//! a call into another file has no summary, so
//! [`crate::interproc::augment_with_call_effects`] falls back to the
//! maximally pessimistic host read+write assumption and every cross-file
//! call forces conservative `tofrom` mappings. This module adds a *link
//! layer* between the Summaries and Plans stages:
//!
//! 1. **Export** — each unit's [`ExportedInterface`] collects the
//!    prototypes, local interprocedural summaries, and referenced-variable
//!    sets of its defined functions, plus a stable fingerprint of all of
//!    it.
//! 2. **Link** — [`Program::link`] merges every unit's call graph and
//!    re-runs the interprocedural fixed point to convergence *across*
//!    units ([`LinkedSummaries`]), so a callee defined in another file
//!    resolves to its real summary.
//! 3. **Plan** — each unit is planned against the linked summaries and a
//!    cross-unit [`ExternalRefs`] view, so whole-program exit liveness
//!    (the dead-exit-copy demotion) still works when the kernel and the
//!    last reader live in different files.
//!
//! [`ProgramDriver`] packages the three phases as *parallel summarize →
//! sequential link → parallel plan* over one shared
//! [`AnalysisSession`]; a single-unit program is the degenerate case and
//! produces byte-identical output to [`AnalysisSession::analyze`]. The
//! defining golden property, pinned by `tests/whole_program.rs` and the
//! split proptest: analyzing `k` units as one linked program rewrites each
//! unit byte-identically to analyzing the concatenation of all `k` unit
//! sources as a single translation unit.

use crate::dataflow::function_referenced_vars;
use crate::interproc::ProgramSummaries;
use crate::pipeline::{
    summary_fingerprint, AnalysisSession, Fnv, StageError, SummarizedUnit, UnitAnalysis,
};
use ompdart_frontend::ast::TranslationUnit;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Referenced-variable sets of functions defined in *other* translation
/// units, keyed by function name. The exit-liveness scan of the planning
/// stage consults this exactly like it scans same-unit functions.
pub type ExternalRefs = BTreeMap<String, BTreeSet<String>>;

/// The link-fingerprint value of analyses that are not part of any linked
/// program (the classic single-unit path).
pub const UNLINKED: u64 = 0;

// ---------------------------------------------------------------------------
// ExportedInterface
// ---------------------------------------------------------------------------

/// What one translation unit exports to the rest of the program: for every
/// defined function its prototype shape, its *local* interprocedural
/// summary, and the set of variables its body references (whole-program
/// liveness input). The [`ExportedInterface::fingerprint`] is stable across
/// edits that do not change any of those facts — which is precisely when
/// other units' cached plans remain valid.
#[derive(Clone, Debug)]
pub struct ExportedInterface {
    /// The unit's name (diagnostics file name).
    pub unit: String,
    /// Names of the functions the unit defines, in source order.
    pub functions: Vec<String>,
    /// Stable fingerprint of the exported surface: function prototypes,
    /// local summaries, and referenced-variable sets.
    pub fingerprint: u64,
}

impl ExportedInterface {
    /// Export the interface of one summarized unit.
    pub fn of(unit: &SummarizedUnit) -> ExportedInterface {
        ExportedInterface::with_refs(unit, &unit_referenced_vars(unit))
    }

    /// [`ExportedInterface::of`] with the unit's referenced-variable sets
    /// already computed (the link stage computes them once per unit and
    /// shares them with every [`LinkContext`] instead of re-walking ASTs).
    fn with_refs(unit: &SummarizedUnit, refs: &ExternalRefs) -> ExportedInterface {
        let functions: Vec<String> = unit
            .parsed
            .unit
            .functions()
            .map(|f| f.name.clone())
            .collect();
        // Hash in name order so the fingerprint is insensitive to function
        // reordering that changes nothing observable.
        let mut sorted: Vec<&ompdart_frontend::ast::FunctionDef> =
            unit.parsed.unit.functions().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        let mut h = Fnv::new();
        for f in sorted {
            h.write_str(&f.name);
            h.write_u64(f.params.len() as u64);
            for p in &f.params {
                h.write(&[u8::from(p.is_const_pointee)]);
            }
            h.write(&[u8::from(f.is_variadic)]);
            match unit.summaries.summaries.summary(&f.name) {
                Some(s) => {
                    h.write(&[1]);
                    h.write_u64(summary_fingerprint(s));
                }
                None => h.write(&[0]),
            }
            if let Some(vars) = refs.get(&f.name) {
                for var in vars {
                    h.write_str(var);
                }
            }
            h.write(&[0xfe]);
        }
        ExportedInterface {
            unit: unit.parsed.name.clone(),
            functions,
            fingerprint: h.finish(),
        }
    }
}

/// The referenced-variable sets of every function a unit defines, keyed by
/// function name — one AST walk per function, computed once per unit.
fn unit_referenced_vars(unit: &SummarizedUnit) -> ExternalRefs {
    unit.parsed
        .unit
        .functions()
        .map(|f| (f.name.clone(), function_referenced_vars(f)))
        .collect()
}

// ---------------------------------------------------------------------------
// LinkedSummaries and LinkContext
// ---------------------------------------------------------------------------

/// The output of the link fixed point: whole-program interprocedural
/// summaries (every cross-unit callee resolved to its real effects) plus
/// the map from function name to defining unit.
#[derive(Clone, Debug)]
pub struct LinkedSummaries {
    /// Merged summaries, converged across unit boundaries.
    pub summaries: Arc<ProgramSummaries>,
    /// Function name → index (into the program's unit list) of the
    /// defining unit.
    pub defined_in: BTreeMap<String, usize>,
    /// Propagation passes the cross-unit fixed point took.
    pub passes: usize,
}

/// Everything the planning stage of *one unit* needs from the link layer.
#[derive(Clone, Debug)]
pub struct LinkContext {
    /// Whole-program summaries (shared across all units of the program).
    pub summaries: Arc<ProgramSummaries>,
    /// Referenced-variable sets of every function defined in another unit.
    pub extern_refs: Arc<ExternalRefs>,
    /// Fingerprint of `extern_refs`, mixed into `main`'s liveness cache
    /// fingerprint.
    pub extern_refs_fingerprint: u64,
    /// Fingerprint of all *other* units' [`ExportedInterface`]s — the
    /// unit's imported surface. Threaded through the persistent store key:
    /// editing one file invalidates another unit's stored plans only when
    /// this value changes, i.e. when the edited file's exported interface
    /// actually changed.
    pub imports_fingerprint: u64,
}

fn external_refs_fingerprint(refs: &ExternalRefs) -> u64 {
    let mut h = Fnv::new();
    for (name, vars) in refs {
        h.write_str(name);
        for v in vars {
            h.write_str(v);
        }
        h.write(&[0xfd]);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Program: the linked whole-program view
// ---------------------------------------------------------------------------

/// A linked program: every unit's summarize-phase artifacts, the exported
/// interfaces, and the converged cross-unit summaries.
#[derive(Debug)]
pub struct Program {
    /// The summarized units, in input order.
    pub units: Vec<Arc<SummarizedUnit>>,
    /// Per-unit exported interfaces (same order as `units`).
    pub interfaces: Vec<ExportedInterface>,
    /// The cross-unit link fixed point.
    pub linked: LinkedSummaries,
    /// Per-unit referenced-variable sets (same order as `units`), computed
    /// once at link time and shared by every [`LinkContext`].
    unit_refs: Vec<ExternalRefs>,
}

/// A failure of whole-program analysis.
#[derive(Clone, Debug)]
pub enum ProgramError {
    /// One unit failed a pipeline stage (parse error, input contract).
    Unit { name: String, error: StageError },
    /// Two units define the same function: the program has no consistent
    /// link-time meaning.
    DuplicateFunction {
        function: String,
        units: [String; 2],
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Unit { name, error } => write!(f, "`{name}`: {error}"),
            ProgramError::DuplicateFunction { function, units } => write!(
                f,
                "function `{function}` is defined in both `{}` and `{}`",
                units[0], units[1]
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Link already-summarized units into one program: export interfaces,
    /// merge the call graphs, and run the interprocedural fixed point to
    /// convergence across unit boundaries.
    ///
    /// The fixed point is computed by the exact algorithm the single-unit
    /// pipeline uses ([`ProgramSummaries::compute`]) over the merged view,
    /// which is what makes a linked multi-unit analysis provably equal to a
    /// single-unit analysis of the concatenated sources.
    pub fn link(
        units: Vec<Arc<SummarizedUnit>>,
        options: &crate::OmpDartOptions,
    ) -> Result<Program, ProgramError> {
        // Reject duplicate definitions before merging anything.
        let mut defined_in: BTreeMap<String, usize> = BTreeMap::new();
        for (idx, unit) in units.iter().enumerate() {
            for f in unit.parsed.unit.functions() {
                if let Some(first) = defined_in.insert(f.name.clone(), idx) {
                    return Err(ProgramError::DuplicateFunction {
                        function: f.name.clone(),
                        units: [units[first].parsed.name.clone(), unit.parsed.name.clone()],
                    });
                }
            }
        }

        // One AST walk per function: the referenced-variable sets feed both
        // the interface fingerprints and every unit's LinkContext.
        let unit_refs: Vec<ExternalRefs> = units.iter().map(|u| unit_referenced_vars(u)).collect();
        let interfaces: Vec<ExportedInterface> = units
            .iter()
            .zip(&unit_refs)
            .map(|(u, refs)| ExportedInterface::with_refs(u, refs))
            .collect();

        // Merged whole-program view: items concatenated in input order,
        // constants unioned, accesses and symbols keyed by (unique)
        // function name. `ProgramSummaries::compute` never dereferences
        // node ids, so the id collisions between units are harmless here.
        let (summaries, passes) = if options.interprocedural {
            let mut items = Vec::new();
            let mut constants = HashMap::new();
            let mut accesses = HashMap::new();
            let mut symbols = HashMap::new();
            for unit in &units {
                items.extend(unit.parsed.unit.items.iter().cloned());
                constants.extend(unit.parsed.unit.constants.clone());
                for (name, acc) in &unit.accesses.accesses {
                    accesses.insert(name.clone(), acc.clone());
                }
                for (name, sym) in &unit.accesses.symbols {
                    symbols.insert(name.clone(), sym.clone());
                }
            }
            let merged_unit = TranslationUnit { items, constants };
            let merged = ProgramSummaries::compute(
                &merged_unit,
                &accesses,
                &symbols,
                options.max_interproc_passes,
            );
            let passes = merged.passes;
            (merged, passes)
        } else {
            (ProgramSummaries::default(), 0)
        };

        Ok(Program {
            units,
            interfaces,
            linked: LinkedSummaries {
                summaries: Arc::new(summaries),
                defined_in,
                passes,
            },
            unit_refs,
        })
    }

    /// Number of units in the program.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The [`LinkContext`] for the unit at `index`: linked summaries plus
    /// the referenced-variable sets and interface fingerprints of every
    /// *other* unit.
    pub fn link_context(&self, index: usize) -> LinkContext {
        let mut extern_refs: ExternalRefs = BTreeMap::new();
        for (idx, refs) in self.unit_refs.iter().enumerate() {
            if idx == index {
                continue;
            }
            for (name, vars) in refs {
                extern_refs.insert(name.clone(), vars.clone());
            }
        }
        // Imported surface: every other unit's (name, interface
        // fingerprint), hashed in input order.
        let mut h = Fnv::new();
        for (idx, interface) in self.interfaces.iter().enumerate() {
            if idx == index {
                continue;
            }
            h.write_str(&interface.unit);
            h.write_u64(interface.fingerprint);
        }
        let extern_refs_fingerprint = external_refs_fingerprint(&extern_refs);
        LinkContext {
            summaries: Arc::clone(&self.linked.summaries),
            extern_refs: Arc::new(extern_refs),
            extern_refs_fingerprint,
            imports_fingerprint: h.finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// ProgramDriver: the two-phase whole-program pipeline
// ---------------------------------------------------------------------------

/// How one unit of a program analysis was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitServe {
    /// The complete linked analysis came from the in-memory cache.
    Cached,
    /// Plans were loaded from the persistent artifact store.
    Store,
    /// The unit was planned this run; `reused`/`replanned` split the
    /// function-granular plan cache outcome.
    Planned { reused: u64, replanned: u64 },
}

/// One whole-program analysis: every unit's full artifact bundle (input
/// order), the exported interfaces, and how each unit was served.
#[derive(Debug)]
pub struct ProgramAnalysis {
    /// Per-unit analyses, in input order.
    pub units: Vec<Arc<UnitAnalysis>>,
    /// Per-unit exported interfaces, in input order.
    pub interfaces: Vec<ExportedInterface>,
    /// How each unit was served, in input order.
    pub served: Vec<UnitServe>,
    /// Propagation passes of the cross-unit fixed point.
    pub link_passes: usize,
}

impl ProgramAnalysis {
    /// Sum of every unit's analysis statistics.
    pub fn stats(&self) -> crate::plan::ir::AnalysisStats {
        let mut total = crate::plan::ir::AnalysisStats::default();
        for unit in &self.units {
            let s = unit.plans.stats;
            total.functions_analyzed += s.functions_analyzed;
            total.functions_with_kernels += s.functions_with_kernels;
            total.kernels += s.kernels;
            total.mapped_variables += s.mapped_variables;
            total.map_clauses += s.map_clauses;
            total.update_directives += s.update_directives;
            total.firstprivate_clauses += s.firstprivate_clauses;
            total.unknown_callee_fallbacks += s.unknown_callee_fallbacks;
        }
        total
    }

    /// The concatenation of every unit's rewritten source, in input order
    /// (the multi-file analogue of a single rewritten translation unit).
    pub fn concatenated_rewrite(&self) -> String {
        self.units
            .iter()
            .map(|u| u.rewrite.source.as_str())
            .collect()
    }
}

/// Analyzes many translation units as *one linked program* over a shared
/// [`AnalysisSession`]: parallel summarize → sequential link → parallel
/// plan. Contrast with [`crate::pipeline::BatchDriver`], which analyzes
/// units independently (each a closed world).
#[derive(Debug)]
pub struct ProgramDriver {
    session: Arc<AnalysisSession>,
    threads: usize,
}

impl ProgramDriver {
    /// A driver over a fresh default session.
    pub fn new() -> ProgramDriver {
        ProgramDriver::with_session(Arc::new(AnalysisSession::new()))
    }

    /// A driver over an existing session (shares all of its caches).
    pub fn with_session(session: Arc<AnalysisSession>) -> ProgramDriver {
        let threads = session.parallelism();
        ProgramDriver { session, threads }
    }

    /// Override the number of worker threads for the parallel phases.
    pub fn with_threads(mut self, threads: usize) -> ProgramDriver {
        self.threads = threads.max(1);
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &Arc<AnalysisSession> {
        &self.session
    }

    /// Phase 1+2 only: summarize every unit in parallel and link them.
    pub fn link(&self, inputs: &[(String, String)]) -> Result<Program, ProgramError> {
        let summarized = crate::pipeline::parallel_map_indexed(self.threads, inputs.len(), |i| {
            let (name, source) = &inputs[i];
            self.session
                .summarize(name, source)
                .map_err(|error| ProgramError::Unit {
                    name: name.clone(),
                    error,
                })
        });
        let mut units = Vec::with_capacity(summarized.len());
        for result in summarized {
            units.push(result?);
        }
        Program::link(units, self.session.options())
    }

    /// The full two-phase pipeline: parallel summarize, sequential link,
    /// parallel plan+rewrite. Results preserve input order.
    pub fn analyze_program(
        &self,
        inputs: &[(String, String)],
    ) -> Result<ProgramAnalysis, ProgramError> {
        let program = self.link(inputs)?;
        let contexts: Vec<LinkContext> = (0..program.len())
            .map(|i| program.link_context(i))
            .collect();
        let planned = crate::pipeline::parallel_map_indexed(self.threads, program.len(), |i| {
            self.session.analyze_linked(&program.units[i], &contexts[i])
        });
        let mut units = Vec::with_capacity(planned.len());
        let mut served = Vec::with_capacity(planned.len());
        for (analysis, serve) in planned {
            units.push(analysis);
            served.push(serve);
        }
        Ok(ProgramAnalysis {
            units,
            interfaces: program.interfaces,
            served,
            link_passes: program.linked.passes,
        })
    }
}

impl Default for ProgramDriver {
    fn default() -> Self {
        ProgramDriver::new()
    }
}
