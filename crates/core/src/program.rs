//! The whole-program link stage: cross-translation-unit summaries,
//! program-level liveness, and the two-phase [`ProgramDriver`].
//!
//! The per-unit pipeline treats every translation unit as a closed world:
//! a call into another file has no summary, so
//! [`crate::interproc::augment_with_call_effects`] falls back to the
//! maximally pessimistic host read+write assumption and every cross-file
//! call forces conservative `tofrom` mappings. This module adds a *link
//! layer* between the Summaries and Plans stages:
//!
//! 1. **Export** — each unit's [`ExportedInterface`] collects the
//!    prototypes, local interprocedural summaries, and referenced-variable
//!    sets of its defined functions, plus a stable fingerprint of all of
//!    it.
//! 2. **Link** — [`Program::link`] merges every unit's call graph and
//!    re-runs the interprocedural fixed point to convergence *across*
//!    units ([`LinkedSummaries`]), so a callee defined in another file
//!    resolves to its real summary.
//! 3. **Plan** — each unit is planned against the linked summaries and a
//!    cross-unit [`ExternalRefs`] view, so whole-program exit liveness
//!    (the dead-exit-copy demotion) still works when the kernel and the
//!    last reader live in different files.
//!
//! [`ProgramDriver`] packages the three phases as *parallel summarize →
//! sequential link → parallel plan* over one shared
//! [`AnalysisSession`]; a single-unit program is the degenerate case and
//! produces byte-identical output to [`AnalysisSession::analyze`]. The
//! defining golden property, pinned by `tests/whole_program.rs` and the
//! split proptest: analyzing `k` units as one linked program rewrites each
//! unit byte-identically to analyzing the concatenation of all `k` unit
//! sources as a single translation unit.

use crate::dataflow::function_referenced_vars;
use crate::interproc::{FunctionSummary, ProgramSummaries, PropagationNode};
use crate::pipeline::{
    summary_fingerprint, AnalysisSession, Fnv, StageError, SummarizedUnit, UnitAnalysis,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Referenced-variable sets of functions defined in *other* translation
/// units, keyed by function name. The exit-liveness scan of the planning
/// stage consults this exactly like it scans same-unit functions.
pub type ExternalRefs = BTreeMap<String, BTreeSet<String>>;

/// The link-fingerprint value of analyses that are not part of any linked
/// program (the classic single-unit path).
pub const UNLINKED: u64 = 0;

/// The unit-private symbol a cross-unit `static` function links under:
/// `name@unit`. `@` cannot appear in a C identifier, so mangled names can
/// never collide with source-level ones. Calls inside the defining unit
/// resolve to the mangled symbol; other units never see it.
fn mangle_static(name: &str, unit: &str) -> String {
    format!("{name}@{unit}")
}

// ---------------------------------------------------------------------------
// ExportedInterface
// ---------------------------------------------------------------------------

/// What one translation unit exports to the rest of the program: for every
/// defined function its prototype shape, its *local* interprocedural
/// summary, and the set of variables its body references (whole-program
/// liveness input). The [`ExportedInterface::fingerprint`] is stable across
/// edits that do not change any of those facts — which is precisely when
/// other units' cached plans remain valid.
#[derive(Clone, Debug)]
pub struct ExportedInterface {
    /// The unit's name (diagnostics file name).
    pub unit: String,
    /// Names of the functions the unit defines, in source order.
    pub functions: Vec<String>,
    /// Stable fingerprint of the exported surface: function prototypes,
    /// local summaries, and referenced-variable sets.
    pub fingerprint: u64,
}

impl ExportedInterface {
    /// Export the interface of one summarized unit.
    pub fn of(unit: &SummarizedUnit) -> ExportedInterface {
        ExportedInterface::with_refs(unit, &unit_referenced_vars(unit))
    }

    /// [`ExportedInterface::of`] with the unit's referenced-variable sets
    /// already computed (the link stage computes them once per unit and
    /// shares them with every [`LinkContext`] instead of re-walking ASTs).
    fn with_refs(unit: &SummarizedUnit, refs: &ExternalRefs) -> ExportedInterface {
        let functions: Vec<String> = unit
            .parsed
            .unit
            .functions()
            .map(|f| f.name.clone())
            .collect();
        // Hash in name order so the fingerprint is insensitive to function
        // reordering that changes nothing observable.
        let mut sorted: Vec<&ompdart_frontend::ast::FunctionDef> =
            unit.parsed.unit.functions().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        let mut h = Fnv::new();
        for f in sorted {
            h.write_str(&f.name);
            h.write_u64(f.params.len() as u64);
            for p in &f.params {
                h.write(&[u8::from(p.is_const_pointee)]);
            }
            h.write(&[u8::from(f.is_variadic)]);
            // Unit-private `static` functions are invisible to other units'
            // call resolution but still participate in whole-program
            // liveness, so the storage class is part of the surface.
            h.write(&[u8::from(f.is_static)]);
            match unit.summaries.summaries.summary(&f.name) {
                Some(s) => {
                    h.write(&[1]);
                    h.write_u64(summary_fingerprint(s));
                }
                None => h.write(&[0]),
            }
            if let Some(vars) = refs.get(&f.name) {
                for var in vars {
                    h.write_str(var);
                }
            }
            h.write(&[0xfe]);
        }
        ExportedInterface {
            unit: unit.parsed.name.clone(),
            functions,
            fingerprint: h.finish(),
        }
    }
}

/// The referenced-variable sets of every function a unit defines, keyed by
/// function name — one AST walk per function, computed once per unit.
fn unit_referenced_vars(unit: &SummarizedUnit) -> ExternalRefs {
    unit.parsed
        .unit
        .functions()
        .map(|f| (f.name.clone(), function_referenced_vars(f)))
        .collect()
}

// ---------------------------------------------------------------------------
// LinkedSummaries and LinkContext
// ---------------------------------------------------------------------------

/// The output of the link fixed point: whole-program interprocedural
/// summaries (every cross-unit callee resolved to its real effects) plus
/// the map from function name to defining unit.
#[derive(Clone, Debug)]
pub struct LinkedSummaries {
    /// Merged summaries, converged across unit boundaries. Unit-private
    /// `static` functions are keyed by their mangled `name@unit` symbol.
    pub summaries: Arc<ProgramSummaries>,
    /// Resolved function name (statics mangled) → index (into the
    /// program's unit list) of the defining unit.
    pub defined_in: BTreeMap<String, usize>,
    /// Propagation passes the cross-unit fixed point took.
    pub passes: usize,
}

/// Everything the planning stage of *one unit* needs from the link layer.
#[derive(Clone, Debug)]
pub struct LinkContext {
    /// Whole-program summaries (shared across all units of the program).
    pub summaries: Arc<ProgramSummaries>,
    /// Referenced-variable sets of every function defined in another unit.
    pub extern_refs: Arc<ExternalRefs>,
    /// Fingerprint of `extern_refs`, mixed into `main`'s liveness cache
    /// fingerprint.
    pub extern_refs_fingerprint: u64,
    /// Fingerprint of all *other* units' [`ExportedInterface`]s — the
    /// unit's imported surface. Threaded through the persistent store key:
    /// editing one file invalidates another unit's stored plans only when
    /// this value changes, i.e. when the edited file's exported interface
    /// actually changed.
    pub imports_fingerprint: u64,
}

fn external_refs_fingerprint(refs: &ExternalRefs) -> u64 {
    let mut h = Fnv::new();
    for (name, vars) in refs {
        h.write_str(name);
        for v in vars {
            h.write_str(v);
        }
        h.write(&[0xfd]);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Program: the linked whole-program view
// ---------------------------------------------------------------------------

/// A linked program: every unit's summarize-phase artifacts, the exported
/// interfaces, and the converged cross-unit summaries.
#[derive(Debug)]
pub struct Program {
    /// The summarized units, in input order.
    pub units: Vec<Arc<SummarizedUnit>>,
    /// Per-unit exported interfaces (same order as `units`).
    pub interfaces: Vec<ExportedInterface>,
    /// The cross-unit link fixed point. Unit-private `static` functions
    /// appear under their mangled `name@unit` symbols here; per-unit
    /// [`LinkContext`]s expose them under their source-level names again.
    pub linked: LinkedSummaries,
    /// Per-unit referenced-variable sets (same order as `units`), computed
    /// once at link time and shared by every [`LinkContext`].
    unit_refs: Vec<ExternalRefs>,
    /// Per-unit sets of `static` function names (source-level), used to
    /// build the per-unit summary views.
    unit_statics: Vec<BTreeSet<String>>,
    /// Per-unit summary views, built once at link time for units that
    /// define statics (`None` for units without statics, which share
    /// `linked.summaries` directly instead of cloning it per scan).
    unit_views: Vec<Option<Arc<ProgramSummaries>>>,
}

/// The persisted outcome of one whole-program link, kept by the
/// [`AnalysisSession`] so the *next* link of the same program can start
/// from the previous fixed point: only functions whose local fingerprint
/// (seed summary + resolved call list) changed — plus their reverse
/// call-graph cone — are re-derived from their seeds
/// ([`ProgramSummaries::propagate_incremental`]). An unchanged program
/// relinks without running a single propagation pass, and the result is
/// pinned byte-identical to a cold link.
#[derive(Debug)]
pub struct LinkState {
    /// The unit names of the linked program, in input order. A link over a
    /// different unit set falls back to a cold fixed point.
    unit_names: Vec<String>,
    /// Per-function local fingerprints (resolved names): the seed summary
    /// plus everything the propagation reads from the caller side of each
    /// call site.
    local_fps: BTreeMap<String, u64>,
    /// The converged cross-unit summaries (resolved names).
    summaries: ProgramSummaries,
    /// Propagation passes of the converged fixed point (reported when an
    /// unchanged relink skips propagation entirely).
    passes: usize,
}

/// A failure of whole-program analysis.
#[derive(Clone, Debug)]
pub enum ProgramError {
    /// One unit failed a pipeline stage (parse error, input contract).
    Unit { name: String, error: StageError },
    /// Two units define the same function: the program has no consistent
    /// link-time meaning.
    DuplicateFunction {
        function: String,
        units: [String; 2],
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Unit { name, error } => write!(f, "`{name}`: {error}"),
            ProgramError::DuplicateFunction { function, units } => write!(
                f,
                "function `{function}` is defined in both `{}` and `{}`",
                units[0], units[1]
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Link already-summarized units into one program: export interfaces,
    /// merge the call graphs, and run the interprocedural fixed point to
    /// convergence across unit boundaries.
    ///
    /// The fixed point is computed by the exact algorithm the single-unit
    /// pipeline uses ([`ProgramSummaries::compute`]) over the merged view,
    /// which is what makes a linked multi-unit analysis provably equal to a
    /// single-unit analysis of the concatenated sources.
    pub fn link(
        units: Vec<Arc<SummarizedUnit>>,
        options: &crate::OmpDartOptions,
    ) -> Result<Program, ProgramError> {
        Program::relink(units, options, None).map(|(program, _, _)| program)
    }

    /// [`Program::link`] with an optional previously converged
    /// [`LinkState`]: the cross-unit fixed point starts from the previous
    /// summaries and re-seeds only the functions whose local fingerprint
    /// changed, plus their reverse call-graph cone. Returns the program,
    /// the new link state, and the number of re-seeded functions (zero for
    /// an unchanged relink, everything-defined for a cold link reported as
    /// zero — cold links have no "re-" to speak of).
    pub fn relink(
        units: Vec<Arc<SummarizedUnit>>,
        options: &crate::OmpDartOptions,
        previous: Option<&LinkState>,
    ) -> Result<(Program, Arc<LinkState>, u64), ProgramError> {
        // Reject duplicate definitions before merging anything. Functions
        // link under their *resolved* names: unit-private `static`
        // definitions mangle to `name@unit`, so same-named statics in
        // different units coexist instead of colliding (two statics with
        // one name inside the same unit still collide, as in C).
        let mut defined_in: BTreeMap<String, usize> = BTreeMap::new();
        let mut unit_statics: Vec<BTreeSet<String>> = Vec::with_capacity(units.len());
        for (idx, unit) in units.iter().enumerate() {
            let mut statics = BTreeSet::new();
            for f in unit.parsed.unit.functions() {
                let resolved = if f.is_static {
                    statics.insert(f.name.clone());
                    mangle_static(&f.name, &unit.parsed.name)
                } else {
                    f.name.clone()
                };
                if let Some(first) = defined_in.insert(resolved, idx) {
                    return Err(ProgramError::DuplicateFunction {
                        function: f.name.clone(),
                        units: [units[first].parsed.name.clone(), unit.parsed.name.clone()],
                    });
                }
            }
            unit_statics.push(statics);
        }

        // One AST walk per function: the referenced-variable sets feed both
        // the interface fingerprints and every unit's LinkContext.
        let unit_refs: Vec<ExternalRefs> = units.iter().map(|u| unit_referenced_vars(u)).collect();
        let interfaces: Vec<ExportedInterface> = units
            .iter()
            .zip(&unit_refs)
            .map(|(u, refs)| ExportedInterface::with_refs(u, refs))
            .collect();

        // The whole-program fixed point over per-function seeds. Each
        // unit's summarize phase already produced (and cached, function-
        // granularly) its local seeds; linking only merges them under
        // resolved names and (re-)runs the call-site propagation.
        let unit_names: Vec<String> = units.iter().map(|u| u.parsed.name.clone()).collect();
        let (summaries, passes, reseeded, local_fps) = if options.interprocedural {
            let threads = options.effective_link_threads();
            let (seeds, nodes) = merged_propagation_inputs(&units, &unit_statics);
            let local_fps: BTreeMap<String, u64> = nodes
                .iter()
                .map(|node| (node.name.clone(), local_fingerprint(node, &seeds)))
                .collect();

            // Previous state is only reusable for the same program (same
            // unit names, in order) — interleaving different programs over
            // one session falls back to a cold fixed point each time.
            let reusable = previous.filter(|state| state.unit_names == unit_names);
            match reusable {
                Some(state) => {
                    let dirty: BTreeSet<String> = local_fps
                        .iter()
                        .filter(|(name, fp)| state.local_fps.get(*name) != Some(fp))
                        .map(|(name, _)| name.clone())
                        .chain(
                            state
                                .local_fps
                                .keys()
                                .filter(|name| !local_fps.contains_key(*name))
                                .cloned(),
                        )
                        .collect();
                    let (mut merged, cone) = ProgramSummaries::propagate_incremental_parallel(
                        &nodes,
                        &seeds,
                        &state.summaries,
                        &dirty,
                        options.max_interproc_passes,
                        options.pessimistic_globals,
                        threads,
                    );
                    let passes = if cone.is_empty() {
                        // Nothing changed: the previous fixed point stands.
                        merged.passes = state.passes;
                        state.passes
                    } else {
                        merged.passes
                    };
                    (merged, passes, cone.len() as u64, local_fps)
                }
                None => {
                    let merged = ProgramSummaries::propagate_parallel(
                        &nodes,
                        &seeds,
                        options.max_interproc_passes,
                        options.pessimistic_globals,
                        threads,
                    );
                    let passes = merged.passes;
                    (merged, passes, 0, local_fps)
                }
            }
        } else {
            (ProgramSummaries::default(), 0, 0, BTreeMap::new())
        };

        let state = Arc::new(LinkState {
            unit_names,
            local_fps,
            summaries: summaries.clone(),
            passes,
        });
        // Per-unit views for static-bearing units, built once here rather
        // than on every `link_context` call: the unit's own statics appear
        // under their source-level names (shadowing any same-named
        // external symbol, as C scoping does).
        let summaries = Arc::new(summaries);
        let unit_views: Vec<Option<Arc<ProgramSummaries>>> = units
            .iter()
            .zip(&unit_statics)
            .map(|(unit, statics)| {
                if statics.is_empty() {
                    return None;
                }
                let mut view = (*summaries).clone();
                for name in statics {
                    let mangled = mangle_static(name, &unit.parsed.name);
                    if let Some(summary) = summaries.summary(&mangled) {
                        let mut summary = summary.clone();
                        summary.name = name.clone();
                        view.insert(name.clone(), summary);
                    }
                }
                Some(Arc::new(view))
            })
            .collect();
        let program = Program {
            units,
            interfaces,
            linked: LinkedSummaries {
                summaries,
                defined_in,
                passes,
            },
            unit_refs,
            unit_statics,
            unit_views,
        };
        Ok((program, state, reseeded))
    }

    /// Number of units in the program.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The [`LinkContext`] for the unit at `index`: linked summaries plus
    /// the referenced-variable sets and interface fingerprints of every
    /// *other* unit. In the context's summary view, this unit's `static`
    /// functions appear under their source-level names (so the unit's own
    /// call sites resolve them), while other units' statics stay under
    /// their private mangled symbols — invisible to name lookup here.
    pub fn link_context(&self, index: usize) -> LinkContext {
        let mut extern_refs: ExternalRefs = BTreeMap::new();
        for (idx, refs) in self.unit_refs.iter().enumerate() {
            if idx == index {
                continue;
            }
            for (name, vars) in refs {
                // Statics of other units keep their unit-private symbol so
                // two same-named statics never merge their variable sets.
                let key = if self.unit_statics[idx].contains(name) {
                    mangle_static(name, &self.units[idx].parsed.name)
                } else {
                    name.clone()
                };
                extern_refs.insert(key, vars.clone());
            }
        }
        // Imported surface: every other unit's (name, interface
        // fingerprint), hashed in input order.
        let mut h = Fnv::new();
        for (idx, interface) in self.interfaces.iter().enumerate() {
            if idx == index {
                continue;
            }
            h.write_str(&interface.unit);
            h.write_u64(interface.fingerprint);
        }
        let extern_refs_fingerprint = external_refs_fingerprint(&extern_refs);

        // Per-unit summary view, prebuilt at link time for static-bearing
        // units; everyone else shares the linked summaries directly.
        let summaries = match &self.unit_views[index] {
            Some(view) => Arc::clone(view),
            None => Arc::clone(&self.linked.summaries),
        };
        LinkContext {
            summaries,
            extern_refs: Arc::new(extern_refs),
            extern_refs_fingerprint,
            imports_fingerprint: h.finish(),
        }
    }

    /// The cross-unit interprocedural fixed point **alone**: seeds and call
    /// graphs merged exactly as [`Program::relink`] merges them (statics
    /// mangled), converged with the SCC-wavefront engine on `threads`
    /// workers. No interface export, liveness, or planning happens —
    /// parity tests and the `link_scale` bench use this to isolate the
    /// link fixed point from the rest of the pipeline.
    pub fn propagate_merged(
        units: &[Arc<SummarizedUnit>],
        options: &crate::OmpDartOptions,
        threads: usize,
    ) -> ProgramSummaries {
        let statics = unit_static_sets(units);
        let (seeds, nodes) = merged_propagation_inputs(units, &statics);
        ProgramSummaries::propagate_parallel(
            &nodes,
            &seeds,
            options.max_interproc_passes,
            options.pessimistic_globals,
            threads,
        )
    }

    /// [`Program::propagate_merged`] through the sequential reference
    /// engine (the pre-condensation whole-program sweep). Convergence on a
    /// call chain of depth `d` requires `options.max_interproc_passes >= d`
    /// here — the wavefront engine has no such requirement, which is the
    /// asymptotic difference the `link_scale` bench measures.
    pub fn propagate_merged_sequential(
        units: &[Arc<SummarizedUnit>],
        options: &crate::OmpDartOptions,
    ) -> ProgramSummaries {
        let statics = unit_static_sets(units);
        let (seeds, nodes) = merged_propagation_inputs(units, &statics);
        ProgramSummaries::propagate_sequential(
            &nodes,
            &seeds,
            options.max_interproc_passes,
            options.pessimistic_globals,
        )
    }
}

/// The per-unit sets of `static` function names (source-level), as
/// [`Program::relink`] computes them during duplicate rejection.
fn unit_static_sets(units: &[Arc<SummarizedUnit>]) -> Vec<BTreeSet<String>> {
    units
        .iter()
        .map(|unit| {
            unit.parsed
                .unit
                .functions()
                .filter(|f| f.is_static)
                .map(|f| f.name.clone())
                .collect()
        })
        .collect()
}

/// Merge every unit's per-function seeds and propagation nodes under their
/// link-resolved names: unit-private `static` functions (and calls to
/// them from inside their unit) mangle to `name@unit`, everything else
/// keeps its source-level name.
fn merged_propagation_inputs<'a>(
    units: &'a [Arc<SummarizedUnit>],
    unit_statics: &[BTreeSet<String>],
) -> (HashMap<String, FunctionSummary>, Vec<PropagationNode<'a>>) {
    let mut seeds: HashMap<String, FunctionSummary> = HashMap::new();
    let mut nodes: Vec<PropagationNode<'_>> = Vec::new();
    for (idx, unit) in units.iter().enumerate() {
        let statics = &unit_statics[idx];
        let uname = &unit.parsed.name;
        let resolve = |callee: &str| -> String {
            if statics.contains(callee) {
                mangle_static(callee, uname)
            } else {
                callee.to_string()
            }
        };
        for func in unit.parsed.unit.functions() {
            let Some(seed) = unit.summaries.seeds.get(&func.name) else {
                continue;
            };
            let Some(acc) = unit.accesses.accesses.get(&func.name) else {
                continue;
            };
            let Some(sym) = unit.accesses.symbols.get(&func.name) else {
                continue;
            };
            let resolved = resolve(&func.name);
            let mut seed = seed.clone();
            seed.name = resolved.clone();
            seeds.insert(resolved.clone(), seed);
            nodes.push(PropagationNode::build(resolved, func, acc, sym, resolve));
        }
    }
    (seeds, nodes)
}

/// Fingerprint of everything the cross-unit propagation reads from one
/// function's caller side: its local seed summary plus, for every call
/// site, the resolved callee, the execution space, and the classification
/// of each by-reference argument. Two links in which every function's
/// local fingerprint matches converge to identical summaries — which is
/// what lets the incremental relink skip them.
fn local_fingerprint(node: &PropagationNode<'_>, seeds: &HashMap<String, FunctionSummary>) -> u64 {
    let mut h = Fnv::new();
    match seeds.get(&node.name) {
        Some(seed) => {
            h.write(&[1]);
            h.write_u64(summary_fingerprint(seed));
        }
        None => h.write(&[0]),
    }
    for call in &node.calls {
        h.write_str(&call.callee);
        h.write(&[u8::from(call.on_device)]);
        for arg in &call.args {
            h.write(&[u8::from(arg.by_ref)]);
            match &arg.base_var {
                Some(var) => {
                    h.write_str(var);
                    h.write(&[
                        u8::from(node.sym.is_aggregate(var)),
                        u8::from(node.sym.is_global(var)),
                    ]);
                    h.write_u64(
                        node.params
                            .iter()
                            .position(|p| p == var)
                            .map(|i| i as u64 + 1)
                            .unwrap_or(0),
                    );
                }
                None => h.write(&[0xfe]),
            }
        }
        h.write(&[0xfd]);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// ProgramDriver: the two-phase whole-program pipeline
// ---------------------------------------------------------------------------

/// How one unit of a program analysis was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitServe {
    /// The complete linked analysis came from the in-memory cache.
    Cached,
    /// Plans were loaded from the persistent artifact store.
    Store,
    /// The unit was planned this run; `reused`/`replanned` split the
    /// function-granular plan cache outcome.
    Planned { reused: u64, replanned: u64 },
}

/// One whole-program analysis: every unit's full artifact bundle (input
/// order), the exported interfaces, and how each unit was served.
#[derive(Debug)]
pub struct ProgramAnalysis {
    /// Per-unit analyses, in input order.
    pub units: Vec<Arc<UnitAnalysis>>,
    /// Per-unit exported interfaces, in input order.
    pub interfaces: Vec<ExportedInterface>,
    /// How each unit was served, in input order.
    pub served: Vec<UnitServe>,
    /// Propagation passes of the cross-unit fixed point.
    pub link_passes: usize,
}

impl ProgramAnalysis {
    /// Sum of every unit's analysis statistics.
    pub fn stats(&self) -> crate::plan::ir::AnalysisStats {
        let mut total = crate::plan::ir::AnalysisStats::default();
        for unit in &self.units {
            let s = unit.plans.stats;
            total.functions_analyzed += s.functions_analyzed;
            total.functions_with_kernels += s.functions_with_kernels;
            total.kernels += s.kernels;
            total.mapped_variables += s.mapped_variables;
            total.map_clauses += s.map_clauses;
            total.update_directives += s.update_directives;
            total.firstprivate_clauses += s.firstprivate_clauses;
            total.unknown_callee_fallbacks += s.unknown_callee_fallbacks;
        }
        total
    }

    /// The concatenation of every unit's rewritten source, in input order
    /// (the multi-file analogue of a single rewritten translation unit).
    pub fn concatenated_rewrite(&self) -> String {
        self.units
            .iter()
            .map(|u| u.rewrite.source.as_str())
            .collect()
    }
}

/// Analyzes many translation units as *one linked program* over a shared
/// [`AnalysisSession`]: parallel summarize → sequential link → parallel
/// plan. Contrast with [`crate::pipeline::BatchDriver`], which analyzes
/// units independently (each a closed world).
#[derive(Debug)]
pub struct ProgramDriver {
    session: Arc<AnalysisSession>,
    threads: usize,
}

impl ProgramDriver {
    /// A driver over a fresh default session.
    pub fn new() -> ProgramDriver {
        ProgramDriver::with_session(Arc::new(AnalysisSession::new()))
    }

    /// A driver over an existing session (shares all of its caches).
    pub fn with_session(session: Arc<AnalysisSession>) -> ProgramDriver {
        let threads = session.parallelism();
        ProgramDriver { session, threads }
    }

    /// Override the number of worker threads for the parallel phases.
    pub fn with_threads(mut self, threads: usize) -> ProgramDriver {
        self.threads = threads.max(1);
        self
    }

    /// The underlying session.
    pub fn session(&self) -> &Arc<AnalysisSession> {
        &self.session
    }

    /// Phase 1+2 only: summarize every unit in parallel and link them.
    /// The link is *incremental* across calls on one session: the fixed
    /// point starts from the previously converged summaries and re-seeds
    /// only the edited functions' call-graph cone
    /// (`CacheStats::relink_reseeded_functions` proves it), byte-identical
    /// to a cold link.
    pub fn link(&self, inputs: &[(String, String)]) -> Result<Program, ProgramError> {
        let summarized = crate::pipeline::parallel_map_indexed(self.threads, inputs.len(), |i| {
            let (name, source) = &inputs[i];
            self.session
                .summarize(name, source)
                .map_err(|error| ProgramError::Unit {
                    name: name.clone(),
                    error,
                })
        });
        let mut units = Vec::with_capacity(summarized.len());
        for result in summarized {
            units.push(result?);
        }
        let previous = self.session.take_link_state();
        let (program, state, reseeded) =
            Program::relink(units, self.session.options(), previous.as_deref())?;
        self.session.note_link(state, reseeded);
        Ok(program)
    }

    /// The full two-phase pipeline: parallel summarize, sequential link,
    /// parallel plan+rewrite. Results preserve input order.
    pub fn analyze_program(
        &self,
        inputs: &[(String, String)],
    ) -> Result<ProgramAnalysis, ProgramError> {
        let program = self.link(inputs)?;
        let contexts: Vec<LinkContext> = (0..program.len())
            .map(|i| program.link_context(i))
            .collect();
        let planned = crate::pipeline::parallel_map_indexed(self.threads, program.len(), |i| {
            self.session.analyze_linked(&program.units[i], &contexts[i])
        });
        // One batched store flush for the whole program: the per-unit
        // write-backs queued by `analyze_linked` land on disk through a
        // single `save_many` (one directory sweep + one gc pass).
        self.session.flush_store_writes();
        let mut units = Vec::with_capacity(planned.len());
        let mut served = Vec::with_capacity(planned.len());
        for (analysis, serve) in planned {
            units.push(analysis);
            served.push(serve);
        }
        Ok(ProgramAnalysis {
            units,
            interfaces: program.interfaces,
            served,
            link_passes: program.linked.passes,
        })
    }
}

impl Default for ProgramDriver {
    fn default() -> Self {
        ProgramDriver::new()
    }
}
