//! # ompdart-core
//!
//! OMPDart — *OpenMP Data Reduction Tool* — reimplemented in Rust.
//!
//! Given a C (MiniC) OpenMP offload program **without** explicit data
//! mappings, OMPDart statically determines how data flows between the host
//! and device memory spaces and rewrites the source to insert efficient
//! OpenMP data-mapping constructs: `map(to/from/tofrom/alloc:)` clauses on a
//! single per-function `target data` region, `target update to/from`
//! directives hoisted out of loops that do not carry the dependency, and
//! `firstprivate` clauses for read-only scalars.
//!
//! The pipeline follows the paper's workflow (Figure 1):
//!
//! 1. parse (`ompdart-frontend`),
//! 2. build per-function CFGs and the hybrid AST-CFG (`ompdart-graph`),
//! 3. classify memory accesses ([`access`]),
//! 4. interprocedural side-effect analysis ([`interproc`]),
//! 5. host/device data-flow analysis and mapping decisions ([`dataflow`], [`bounds`]),
//! 6. source rewriting ([`rewrite`]).
//!
//! The public entry point is the [`Ompdart`] facade: build one with
//! [`Ompdart::builder`], then [`Ompdart::analyze`] sources into [`Analysis`]
//! handles. An analysis exposes the rewritten source, the
//! provenance-carrying [`MappingPlan`]s of the [`plan`] IR — serializable
//! via [`MappingPlan::to_json`] and explainable via [`Analysis::explain`] —
//! plus per-stage timings from the underlying [`pipeline::AnalysisSession`].
//!
//! ```
//! use ompdart_core::Ompdart;
//!
//! let src = r#"
//! #define N 256
//! double a[N];
//! int main() {
//!   for (int it = 0; it < 10; it++) {
//!     #pragma omp target teams distribute parallel for
//!     for (int i = 0; i < N; i++) a[i] += 1.0;
//!   }
//!   printf("%f\n", a[0]);
//!   return 0;
//! }
//! "#;
//! let tool = Ompdart::builder().build();
//! let analysis = tool.analyze("demo.c", src).unwrap();
//! assert!(analysis.rewritten_source().contains("#pragma omp target data"));
//! assert_eq!(analysis.stats().kernels, 1);
//! // Every mapping decision can explain itself.
//! assert!(analysis.plans().iter().all(|p| p.fully_justified()));
//! let json = analysis.plans_json();
//! let roundtrip = ompdart_core::plan::plans_from_json(&json).unwrap();
//! assert_eq!(&roundtrip[..], analysis.plans());
//! ```

pub mod access;
pub mod bounds;
pub mod dataflow;
pub mod interproc;
pub mod mapping;
pub mod pipeline;
pub mod plan;
pub mod pool;
pub mod program;
pub mod relocate;
pub mod rewrite;
pub mod scc;
pub mod shard;
pub mod store;
pub mod verify;

pub use access::{Access, AccessKind, AccessOrigin, FunctionAccesses, SymbolTable};
pub use bounds::{find_update_insert_loc, loop_bounds, LoopBounds};
pub use dataflow::{plan_function, plan_function_linked, DataflowOptions};
pub use interproc::{
    augment_with_call_effects, augment_with_call_effects_opts, seed_summary, Effect,
    FunctionSummary, ProgramSummaries, PropagationNode,
};
pub use pipeline::{
    AnalysisSession, BatchDriver, CacheStats, FunctionAccessCache, FunctionKeySnapshot,
    FunctionPlanCache, FunctionSummaryCache, Stage, StageError, StageTimings, SummarizedUnit,
    UnitAnalysis,
};
#[allow(deprecated)]
pub use plan::ir::RegionPlan;
pub use plan::{
    diff_plans, explain_plan, explain_plans, extract_explicit_plans, plans_from_json,
    plans_to_json, AnalysisStats, CollapseSpec, DiffEntry, EnterDataSpec, ExitDataSpec,
    FirstPrivateSpec, MapSpec, MappingConstruct, MappingPlan, Placement, PlanDiff, PlanJsonError,
    Provenance, ProvenanceFact, UpdateDirection, UpdateSpec, PLAN_FORMAT_VERSION,
};
pub use program::{
    DriverProfile, ExportedInterface, ExternalRefs, LinkContext, LinkState, LinkedSummaries,
    Program, ProgramAnalysis, ProgramDriver, ProgramError, UnitServe, UNLINKED,
};
pub use rewrite::apply_plans;
pub use store::{ArtifactStore, GcReport, StoredUnit, STORE_FORMAT_VERSION};
pub use verify::{verify_source, verify_unit, StaleRead, VerifyReport};

use ompdart_frontend::ast::{StmtKind, TranslationUnit};
use ompdart_frontend::diag::Diagnostics;
use ompdart_frontend::source::SourceFile;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the OMPDart pipeline.
#[derive(Clone, Copy, Debug)]
pub struct OmpDartOptions {
    /// Data-flow analysis knobs (firstprivate optimization, update hoisting).
    pub dataflow: DataflowOptions,
    /// Run the interprocedural side-effect analysis (Section IV-C). When
    /// disabled, call sites fall back to maximally pessimistic assumptions.
    pub interprocedural: bool,
    /// Upper bound on interprocedural propagation passes (the paper iterates
    /// up to the maximum call depth with early termination).
    pub max_interproc_passes: usize,
    /// Reject inputs that already contain `target data` / `target update`
    /// directives (the expected input contract of Section IV-A).
    pub reject_existing_mappings: bool,
    /// Opt-in: assume an unknown extern callee reads and writes **every
    /// global variable** on the host at the call site, not only the data
    /// reached through its non-`const` pointer arguments (the default
    /// assumption). Surfaced as `--pessimistic-globals` on the CLI; the
    /// synthesized accesses are explained with the
    /// `unknown_callee_pessimistic` provenance at the call site.
    pub pessimistic_globals: bool,
    /// Worker threads for the cross-unit link fixed point's SCC wavefronts
    /// (`--link-threads` on the CLI). `0` — the default — picks the
    /// machine's parallelism automatically. The thread count can never
    /// change results (the wavefront engine is deterministic by
    /// construction), so this knob deliberately stays **out of**
    /// [`OmpDartOptions::fingerprint`]: plans computed under any thread
    /// count are interchangeable.
    pub link_threads: usize,
}

impl OmpDartOptions {
    /// Stable fingerprint of this option set, part of every plan cache key
    /// (in memory and in the persistent store): plans produced under
    /// different analysis knobs are never interchangeable.
    pub fn fingerprint(&self) -> u64 {
        pipeline::options_fingerprint(self)
    }

    /// The resolved link-stage worker count: `link_threads`, or the
    /// machine's parallelism when the knob is 0 (auto).
    pub fn effective_link_threads(&self) -> usize {
        if self.link_threads == 0 {
            pipeline::default_parallelism()
        } else {
            self.link_threads
        }
    }
}

impl Default for OmpDartOptions {
    fn default() -> Self {
        OmpDartOptions {
            dataflow: DataflowOptions::default(),
            interprocedural: true,
            max_interproc_passes: 16,
            reject_existing_mappings: true,
            pessimistic_globals: false,
            link_threads: 0,
        }
    }
}

/// Errors that abort the transformation entirely.
#[derive(Debug)]
pub enum OmpDartError {
    /// The input failed to parse.
    ParseFailed(Diagnostics),
    /// The input already contains explicit data-mapping directives.
    AlreadyMapped { function: String },
}

impl fmt::Display for OmpDartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpDartError::ParseFailed(d) => {
                write!(f, "input failed to parse with {} error(s)", d.error_count())
            }
            OmpDartError::AlreadyMapped { function } => write!(
                f,
                "function `{function}` already contains target data/update directives; \
                 OMPDart expects input without explicit data mappings"
            ),
        }
    }
}

impl std::error::Error for OmpDartError {}

/// Result of a successful transformation.
#[derive(Debug)]
pub struct TransformResult {
    /// The rewritten source with data-mapping directives inserted.
    pub transformed_source: String,
    /// Per-function mapping plans.
    pub plans: Vec<MappingPlan>,
    /// Warnings and notes produced during analysis.
    pub diagnostics: Diagnostics,
    /// Aggregate statistics (kernels, mapped variables, inserted constructs).
    pub stats: AnalysisStats,
    /// Wall-clock time spent analyzing and rewriting (the paper's Table V).
    pub tool_time: Duration,
}

impl TransformResult {
    /// The plan for a given function.
    pub fn plan_for(&self, function: &str) -> Option<&MappingPlan> {
        self.plans.iter().find(|p| p.function == function)
    }
}

// ---------------------------------------------------------------------------
// The Ompdart facade: builder -> tool -> Analysis handles
// ---------------------------------------------------------------------------

/// Builder for the [`Ompdart`] facade.
///
/// ```
/// use ompdart_core::{DataflowOptions, Ompdart};
///
/// let tool = Ompdart::builder()
///     .dataflow(DataflowOptions { hoist_updates: false, ..Default::default() })
///     .interprocedural(true)
///     .parallelism(4)
///     .build();
/// assert!(!tool.options().dataflow.hoist_updates);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OmpdartBuilder {
    options: OmpDartOptions,
    parallelism: Option<usize>,
    cache_dir: Option<std::path::PathBuf>,
    cache_max_bytes: Option<u64>,
}

impl OmpdartBuilder {
    /// Replace the whole option set.
    pub fn options(mut self, options: OmpDartOptions) -> OmpdartBuilder {
        self.options = options;
        self
    }

    /// Set the data-flow analysis knobs (ablations flip these).
    pub fn dataflow(mut self, dataflow: DataflowOptions) -> OmpdartBuilder {
        self.options.dataflow = dataflow;
        self
    }

    /// Enable or disable the interprocedural side-effect analysis.
    pub fn interprocedural(mut self, enabled: bool) -> OmpdartBuilder {
        self.options.interprocedural = enabled;
        self
    }

    /// Accept inputs that already carry explicit data mappings.
    pub fn accept_existing_mappings(mut self) -> OmpdartBuilder {
        self.options.reject_existing_mappings = false;
        self
    }

    /// Opt into pessimistic-globals mode: unknown extern callees are
    /// assumed to read and write every global on the host (see
    /// [`OmpDartOptions::pessimistic_globals`]).
    pub fn pessimistic_globals(mut self, enabled: bool) -> OmpdartBuilder {
        self.options.pessimistic_globals = enabled;
        self
    }

    /// Plan unstructured device lifetimes: structured-region maps become
    /// `target enter data` / `target exit data` at the phase boundaries and
    /// perfectly nested offload loops gain `collapse(n)` (see
    /// [`DataflowOptions::lifetimes`]).
    pub fn lifetimes(mut self, enabled: bool) -> OmpdartBuilder {
        self.options.dataflow.lifetimes = enabled;
        self
    }

    /// Worker-thread fan-out of the planning stage (and batch analyses).
    pub fn parallelism(mut self, workers: usize) -> OmpdartBuilder {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Worker threads for the cross-unit link fixed point (0 = auto). Never
    /// affects results — see [`OmpDartOptions::link_threads`].
    pub fn link_threads(mut self, threads: usize) -> OmpdartBuilder {
        self.options.link_threads = threads;
        self
    }

    /// Attach a persistent artifact store rooted at `dir`: plans are loaded
    /// from disk when the full content key matches and written back after
    /// every planning run, so a new process with the same `dir` starts
    /// warm. Corrupt, stale, or foreign-options entries are rejected. A
    /// store-served [`Analysis`] carries empty access/summary artifacts
    /// (see [`Analysis::artifacts`]).
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> OmpdartBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Size-cap the persistent store (only meaningful together with
    /// [`OmpdartBuilder::cache_dir`]): after every write-back,
    /// least-recently-used entries are evicted until the store fits.
    pub fn cache_max_bytes(mut self, max_bytes: u64) -> OmpdartBuilder {
        self.cache_max_bytes = Some(max_bytes);
        self
    }

    /// Build the tool (one cached [`AnalysisSession`] behind an `Arc`).
    pub fn build(self) -> Ompdart {
        let mut session = AnalysisSession::with_options(self.options);
        if let Some(workers) = self.parallelism {
            session = session.with_parallelism(workers);
        }
        if let Some(dir) = self.cache_dir {
            let mut store = ArtifactStore::open(dir);
            if let Some(max) = self.cache_max_bytes {
                store = store.with_max_bytes(max);
            }
            session = session.with_store(store);
        }
        Ompdart {
            session: Arc::new(session),
        }
    }
}

/// The OMPDart tool: the builder-style facade over the staged pipeline.
///
/// One `Ompdart` owns one cached [`AnalysisSession`]; analyzing the same
/// content twice is served from the artifact cache. Clones share the
/// session (and its cache).
#[derive(Clone, Debug)]
pub struct Ompdart {
    session: Arc<AnalysisSession>,
}

impl Default for Ompdart {
    fn default() -> Self {
        Ompdart::builder().build()
    }
}

impl Ompdart {
    /// Start configuring a tool.
    pub fn builder() -> OmpdartBuilder {
        OmpdartBuilder::default()
    }

    /// A tool with default options.
    pub fn new() -> Ompdart {
        Ompdart::default()
    }

    /// The active options.
    pub fn options(&self) -> &OmpDartOptions {
        self.session.options()
    }

    /// The underlying session (stage-by-stage driving, cache statistics).
    pub fn session(&self) -> &Arc<AnalysisSession> {
        &self.session
    }

    /// Analyze one source: runs (or fetches from the cache) the complete
    /// pipeline and returns a typed [`Analysis`] handle.
    pub fn analyze(&self, name: &str, source: &str) -> Result<Analysis, StageError> {
        Ok(Analysis {
            unit: self.session.analyze(name, source)?,
        })
    }

    /// [`Ompdart::analyze`] plus a per-request [`UnitServe`] report: how
    /// *this* call was served (in-memory cache, persistent store, or
    /// planned with `reused`/`replanned` function-plan counts), derived
    /// from the request's own lookups rather than deltas of the
    /// session-global counters — sound even when many requests interleave
    /// on one shared session.
    pub fn analyze_with_serve(
        &self,
        name: &str,
        source: &str,
    ) -> Result<(Analysis, UnitServe), StageError> {
        self.session
            .analyze_served(name, source)
            .map(|(unit, serve)| (Analysis { unit }, serve))
    }

    /// Analyze many `(name, source)` pairs concurrently over this tool's
    /// shared session, preserving input order. The builder's `parallelism`
    /// governs the batch worker count as well as the per-function fan-out.
    ///
    /// Each unit is a *closed world* here: calls into other units fall back
    /// to pessimistic assumptions. Use [`Ompdart::analyze_program`] to link
    /// the inputs into one whole program instead.
    pub fn analyze_batch(&self, inputs: &[(String, String)]) -> Vec<Result<Analysis, StageError>> {
        BatchDriver::with_session(Arc::clone(&self.session))
            .with_threads(self.session.parallelism())
            .analyze_all(inputs)
            .into_iter()
            .map(|r| r.map(|unit| Analysis { unit }))
            .collect()
    }

    /// Analyze many `(name, source)` pairs as **one linked program**:
    /// parallel summarize, sequential cross-unit link (interprocedural
    /// fixed point over the merged call graph plus whole-program liveness),
    /// parallel plan. A unit's calls into sibling units resolve to their
    /// real summaries instead of the pessimistic fallback, and the result
    /// for each unit is byte-identical to analyzing the concatenation of
    /// all inputs as a single translation unit.
    pub fn analyze_program(
        &self,
        inputs: &[(String, String)],
    ) -> Result<ProgramAnalysis, ProgramError> {
        ProgramDriver::with_session(Arc::clone(&self.session))
            .with_threads(self.session.parallelism())
            .analyze_program(inputs)
    }

    /// [`Ompdart::analyze_program`] plus a [`DriverProfile`]: per-phase
    /// wall time, per-unit plan-time percentiles, identity-fast-path unit
    /// counts, and worker-pool / shard-lock counters for the call.
    pub fn analyze_program_profiled(
        &self,
        inputs: &[(String, String)],
    ) -> Result<(ProgramAnalysis, DriverProfile), ProgramError> {
        ProgramDriver::with_session(Arc::clone(&self.session))
            .with_threads(self.session.parallelism())
            .analyze_program_profiled(inputs)
    }
}

/// A fully analyzed translation unit: the typed handle returned by
/// [`Ompdart::analyze`].
///
/// The handle is a cheap `Arc` view over the pipeline's
/// [`UnitAnalysis`] artifacts; cloning it does not re-run anything.
#[derive(Clone, Debug)]
pub struct Analysis {
    unit: Arc<UnitAnalysis>,
}

impl Analysis {
    /// Wrap a raw pipeline artifact bundle (e.g. one unit of a
    /// [`ProgramAnalysis`]) in the typed handle.
    pub fn from_unit(unit: Arc<UnitAnalysis>) -> Analysis {
        Analysis { unit }
    }

    /// The rewritten source with data-mapping directives inserted.
    pub fn rewritten_source(&self) -> &str {
        &self.unit.rewrite.source
    }

    /// The provenance-carrying mapping plans, one per kernel-launching
    /// function.
    pub fn plans(&self) -> &[MappingPlan] {
        &self.unit.plans.plans
    }

    /// The plan for a given function.
    pub fn plan_for(&self, function: &str) -> Option<&MappingPlan> {
        self.plans().iter().find(|p| p.function == function)
    }

    /// Aggregate statistics (kernels, mapped variables, constructs).
    pub fn stats(&self) -> AnalysisStats {
        self.unit.plans.stats
    }

    /// Parse- and analysis-time diagnostics, merged.
    pub fn diagnostics(&self) -> Diagnostics {
        let mut diagnostics = self.unit.parsed.diagnostics.clone();
        diagnostics.extend(self.unit.plans.diagnostics.clone());
        diagnostics
    }

    /// Per-stage wall-clock timings of this analysis.
    pub fn timings(&self) -> StageTimings {
        self.unit.timings()
    }

    /// The parsed translation unit (AST).
    pub fn translation_unit(&self) -> &TranslationUnit {
        &self.unit.parsed.unit
    }

    /// The input source file (spans in plans and diagnostics point into it).
    pub fn source_file(&self) -> &SourceFile {
        &self.unit.parsed.file
    }

    /// Human-readable justification of every mapping decision: one line per
    /// construct with the dataflow fact and the deciding source location.
    pub fn explain(&self) -> String {
        self.unit.explain()
    }

    /// The versioned plan-JSON document for this unit
    /// (see [`plan::json`]).
    pub fn plans_json(&self) -> String {
        self.unit.plans_json()
    }

    /// The raw staged artifacts (graphs, accesses, summaries, ...).
    ///
    /// Note: when the analysis was served from a persistent store
    /// (`cache_dir`), the access and summary artifacts are *empty* — they
    /// are intermediates of the planning stage, which a store hit skips.
    /// Plans, stats, the rewrite, and the parse/graph artifacts are always
    /// populated.
    pub fn artifacts(&self) -> &Arc<UnitAnalysis> {
        &self.unit
    }

    /// Assemble the legacy [`TransformResult`] (owned copies of the
    /// rewritten source and plans).
    pub fn to_transform_result(&self) -> TransformResult {
        self.unit.to_transform_result()
    }
}

// ---------------------------------------------------------------------------
// Legacy one-shot API (deprecated wrappers over the facade)
// ---------------------------------------------------------------------------

/// The pre-builder OMPDart entry point.
#[derive(Clone, Copy, Debug, Default)]
pub struct OmpDart {
    options: OmpDartOptions,
}

impl OmpDart {
    /// Create the tool with default options.
    pub fn new() -> OmpDart {
        OmpDart {
            options: OmpDartOptions::default(),
        }
    }

    /// Create the tool with explicit options.
    pub fn with_options(options: OmpDartOptions) -> OmpDart {
        OmpDart { options }
    }

    /// The active options.
    pub fn options(&self) -> &OmpDartOptions {
        &self.options
    }

    /// Analyze and transform a source string.
    #[deprecated(
        note = "use `Ompdart::builder().options(..).build().analyze(name, source)` and the \
                returned `Analysis` handle"
    )]
    pub fn transform_source(
        &self,
        name: &str,
        source: &str,
    ) -> Result<TransformResult, OmpDartError> {
        Ompdart::builder()
            .options(self.options)
            .build()
            .analyze(name, source)
            .map(|a| a.to_transform_result())
            .map_err(OmpDartError::from)
    }

    /// Analyze a parsed translation unit and produce per-function plans
    /// without rewriting.
    #[deprecated(
        note = "use `Ompdart::analyze` and read `Analysis::plans`/`Analysis::stats`; the staged \
                `pipeline::stage_*` functions remain for borrowed-unit workflows"
    )]
    pub fn analyze_unit(
        &self,
        unit: &TranslationUnit,
        diagnostics: &mut Diagnostics,
    ) -> (Vec<MappingPlan>, AnalysisStats) {
        let graphs = pipeline::stage_graphs(unit);
        let accesses = pipeline::stage_accesses(unit, &graphs);
        let summaries = pipeline::stage_summaries(unit, &accesses, &self.options);
        let plans = pipeline::stage_plans(unit, &graphs, &accesses, &summaries, &self.options, 1);
        diagnostics.extend(plans.diagnostics.clone());
        (plans.plans, plans.stats)
    }
}

/// Find a function that already contains `target data`/`target update`
/// directives (disallowed input per Section IV-A).
fn function_with_existing_mappings(unit: &TranslationUnit) -> Option<String> {
    for func in unit.functions() {
        let mut found = false;
        if let Some(body) = &func.body {
            body.walk(&mut |s| {
                if let StmtKind::Omp(dir) = &s.kind {
                    if dir.kind.is_data_directive() {
                        found = true;
                    }
                }
            });
        }
        if found {
            return Some(func.name.to_string());
        }
    }
    None
}

/// Convenience wrapper: transform a source string with default options.
#[deprecated(note = "use `Ompdart::builder().build().analyze(name, source)`")]
pub fn transform(name: &str, source: &str) -> Result<TransformResult, OmpDartError> {
    Ompdart::builder()
        .build()
        .analyze(name, source)
        .map(|a| a.to_transform_result())
        .map_err(OmpDartError::from)
}

/// Re-exported for downstream crates that need to parse alongside the tool.
pub use ompdart_frontend as frontend;
pub use ompdart_graph as graph;

#[cfg(test)]
mod tests {
    use super::*;
    use ompdart_sim::{simulate_source, SimConfig};

    fn analyze(name: &str, src: &str) -> Result<Analysis, StageError> {
        Ompdart::builder().build().analyze(name, src)
    }

    /// End-to-end: the motivating Listing 1 program. OMPDart must hoist the
    /// mapping out of the loop, preserve program output, and dramatically
    /// reduce transfers.
    #[test]
    fn listing1_transform_preserves_output_and_reduces_transfers() {
        let src = "\
#define N 64
#define ITERS 20
int a[N];
int main() {
  for (int i = 0; i < ITERS; ++i) {
    #pragma omp target
    for (int j = 0; j < N; ++j) {
      a[j] += j;
    }
  }
  int checksum = 0;
  for (int j = 0; j < N; ++j) checksum += a[j];
  printf(\"%d\\n\", checksum);
  return 0;
}
";
        let analysis = analyze("listing1.c", src).expect("analysis failed");
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
        assert_eq!(
            before.output, after.output,
            "program output must be preserved"
        );
        assert!(after.profile.total_calls() < before.profile.total_calls());
        assert!(after.profile.total_bytes() < before.profile.total_bytes());
        // 20 iterations of implicit tofrom collapse into a single pair.
        assert_eq!(after.profile.htod_calls, 1);
        assert_eq!(after.profile.dtoh_calls, 1);
    }

    /// End-to-end: Listing 2 (back-to-back kernels).
    #[test]
    fn listing2_back_to_back_kernels() {
        let src = "\
#define N 64
int a[N];
int main() {
  #pragma omp target
  for (int i = 0; i < N; ++i) a[i] += i;
  #pragma omp target
  for (int i = 0; i < N; ++i) a[i] *= 2;
  printf(\"%d\\n\", a[10]);
  return 0;
}
";
        let analysis = analyze("listing2.c", src).unwrap();
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
        assert_eq!(before.output, after.output);
        assert_eq!(after.profile.htod_calls, 1);
        assert_eq!(after.profile.dtoh_calls, 1);
        assert_eq!(before.profile.htod_calls, 2);
    }

    /// End-to-end: the corrected Listing 3 pattern (host reduction inside the
    /// loop) — the tool must keep the program correct by inserting an update.
    #[test]
    fn listing3_host_reduction_stays_correct() {
        let src = "\
#define N 32
#define M 6
int a[N];
int main() {
  int sum = 0;
  for (int i = 0; i < M; ++i) {
    #pragma omp target
    for (int j = 0; j < N; ++j) {
      a[j] += j;
    }
    for (int j = 0; j < N; ++j) {
      sum += a[j];
    }
  }
  printf(\"%d\\n\", sum);
  return 0;
}
";
        let analysis = analyze("listing3.c", src).unwrap();
        assert!(analysis
            .rewritten_source()
            .contains("target update from(a)"));
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
        assert_eq!(
            before.output,
            after.output,
            "transformed:\n{}",
            analysis.rewritten_source()
        );
        assert!(after.profile.total_bytes() <= before.profile.total_bytes());
    }

    #[test]
    fn rejects_already_mapped_input() {
        let src = "\
#define N 8
double a[N];
void f() {
  #pragma omp target data map(tofrom: a)
  {
    #pragma omp target
    for (int i = 0; i < N; i++) a[i] = i;
  }
}
";
        let err = analyze("mapped.c", src).unwrap_err();
        assert!(matches!(err, StageError::AlreadyMapped { .. }));
        let legacy: OmpDartError = err.into();
        assert!(matches!(legacy, OmpDartError::AlreadyMapped { .. }));
        // ...unless the caller opts out of the input contract.
        let lenient = Ompdart::builder().accept_existing_mappings().build();
        assert!(lenient.analyze("mapped.c", src).is_ok());
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = analyze("broken.c", "int main( { return 0; }\n").unwrap_err();
        assert!(matches!(err, StageError::Parse { .. }));
    }

    #[test]
    fn stats_reflect_inserted_constructs() {
        let src = "\
#define N 32
double x[N];
double y[N];
void axpy(double alpha) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) y[i] = alpha * x[i] + y[i];
}
";
        let analysis = analyze("axpy.c", src).unwrap();
        let stats = analysis.stats();
        assert_eq!(stats.functions_with_kernels, 1);
        assert_eq!(stats.kernels, 1);
        assert!(stats.map_clauses >= 2);
        assert_eq!(stats.firstprivate_clauses, 1);
        assert!(stats.total_constructs() >= 3);
        assert!(analysis.timings().total().as_secs_f64() < 5.0);
        assert!(analysis.plan_for("axpy").is_some());
        // The explain rendering justifies each construct on its own line.
        let explained = analysis.explain();
        assert_eq!(
            plan::justified_line_count(&explained),
            stats.total_constructs(),
            "{explained}"
        );
    }

    /// The interprocedural analysis can be disabled; the tool then makes
    /// pessimistic assumptions but still produces a correct program.
    #[test]
    fn interprocedural_toggle_still_correct() {
        let src = "\
#define N 64
double field[N];
void host_adjust(double *f, int n) {
  for (int i = 0; i < n; i++) f[i] = f[i] * 0.5;
}
int main() {
  for (int i = 0; i < N; i++) field[i] = i;
  for (int step = 0; step < 4; step++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) field[i] += 1.0;
    host_adjust(field, N);
  }
  printf(\"%.2f\\n\", field[3]);
  return 0;
}
";
        for interprocedural in [true, false] {
            let tool = Ompdart::builder().interprocedural(interprocedural).build();
            let analysis = tool.analyze("ip.c", src).unwrap();
            let before = simulate_source(src, SimConfig::default()).unwrap();
            let after = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
            assert_eq!(
                before.output,
                after.output,
                "interprocedural={interprocedural}\n{}",
                analysis.rewritten_source()
            );
        }
    }

    /// Regression: a device-written global that the host only reads through
    /// a pointer alias must keep its exit copy — the dead-exit-copy
    /// demotion may not treat it as device-only.
    #[test]
    fn pointer_alias_keeps_exit_copy() {
        let src = "\
#define N 16
double a[N];
int main() {
  double *p = a;
  for (int it = 0; it < 3; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) a[i] = i + 1.0;
  }
  printf(\"%f\\n\", p[3]);
  return 0;
}
";
        let analysis = analyze("alias.c", src).unwrap();
        let map = analysis.plans()[0].map_for("a").expect("a must be mapped");
        assert!(
            map.map_type.copies_to_host(),
            "alias read requires from/tofrom, got {:?}\n{}",
            map.map_type,
            analysis.rewritten_source()
        );
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
        assert_eq!(
            before.output,
            after.output,
            "{}",
            analysis.rewritten_source()
        );
    }

    /// Scalars that stay read-only on the device become firstprivate and the
    /// transformed program still matches.
    #[test]
    fn firstprivate_end_to_end() {
        let src = "\
#define N 128
double data[N];
int main() {
  double scale = 1.5;
  int offset = 3;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) data[i] = scale * i + offset;
  printf(\"%.1f\\n\", data[10]);
  return 0;
}
";
        let analysis = analyze("fp.c", src).unwrap();
        assert!(analysis.rewritten_source().contains("firstprivate("));
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
        assert_eq!(before.output, after.output);
        assert!(after.profile.total_calls() <= before.profile.total_calls());
    }

    /// The facade's batch path preserves input order and shares the cache.
    #[test]
    fn facade_batch_preserves_order() {
        let inputs: Vec<(String, String)> = (0..4)
            .map(|i| {
                (
                    format!("u{i}.c"),
                    format!(
                        "#define N 16\ndouble a{i}[N];\nvoid f{i}() {{\n  #pragma omp target teams distribute parallel for\n  for (int j = 0; j < N; j++) a{i}[j] = j;\n}}\n"
                    ),
                )
            })
            .collect();
        let tool = Ompdart::builder().parallelism(4).build();
        let results = tool.analyze_batch(&inputs);
        assert_eq!(results.len(), 4);
        for (i, result) in results.iter().enumerate() {
            let analysis = result.as_ref().expect("unit failed");
            assert!(analysis.plan_for(&format!("f{i}")).is_some());
        }
    }
}
