//! # ompdart-core
//!
//! OMPDart — *OpenMP Data Reduction Tool* — reimplemented in Rust.
//!
//! Given a C (MiniC) OpenMP offload program **without** explicit data
//! mappings, OMPDart statically determines how data flows between the host
//! and device memory spaces and rewrites the source to insert efficient
//! OpenMP data-mapping constructs: `map(to/from/tofrom/alloc:)` clauses on a
//! single per-function `target data` region, `target update to/from`
//! directives hoisted out of loops that do not carry the dependency, and
//! `firstprivate` clauses for read-only scalars.
//!
//! The pipeline follows the paper's workflow (Figure 1):
//!
//! 1. parse (`ompdart-frontend`),
//! 2. build per-function CFGs and the hybrid AST-CFG (`ompdart-graph`),
//! 3. classify memory accesses ([`access`]),
//! 4. interprocedural side-effect analysis ([`interproc`]),
//! 5. host/device data-flow analysis and mapping decisions ([`dataflow`], [`bounds`]),
//! 6. source rewriting ([`rewrite`]).
//!
//! Those stages are first-class in the [`pipeline`] module: an
//! [`AnalysisSession`] runs them individually or end to end, records
//! per-stage timings, and caches finished artifacts under a content hash so
//! repeated analysis of unchanged sources is near-free; a [`BatchDriver`]
//! analyzes many translation units concurrently. The [`OmpDart`] type below
//! is a thin one-shot compatibility wrapper over that session API.
//!
//! ```
//! use ompdart_core::{OmpDart, OmpDartOptions};
//!
//! let src = r#"
//! #define N 256
//! double a[N];
//! int main() {
//!   for (int it = 0; it < 10; it++) {
//!     #pragma omp target teams distribute parallel for
//!     for (int i = 0; i < N; i++) a[i] += 1.0;
//!   }
//!   printf("%f\n", a[0]);
//!   return 0;
//! }
//! "#;
//! let result = OmpDart::new().transform_source("demo.c", src).unwrap();
//! assert!(result.transformed_source.contains("#pragma omp target data"));
//! assert_eq!(result.stats.kernels, 1);
//! ```

pub mod access;
pub mod bounds;
pub mod dataflow;
pub mod interproc;
pub mod mapping;
pub mod pipeline;
pub mod rewrite;
pub mod verify;

pub use access::{Access, AccessKind, FunctionAccesses, SymbolTable};
pub use bounds::{find_update_insert_loc, loop_bounds, LoopBounds};
pub use dataflow::{plan_function, DataflowOptions};
pub use interproc::{augment_with_call_effects, Effect, FunctionSummary, ProgramSummaries};
pub use mapping::{
    AnalysisStats, FirstPrivateSpec, MapSpec, MappingConstruct, Placement, RegionPlan,
    UpdateDirection, UpdateSpec,
};
pub use pipeline::{
    AnalysisSession, BatchDriver, CacheStats, Stage, StageError, StageTimings, UnitAnalysis,
};
pub use rewrite::apply_plans;
pub use verify::{verify_source, verify_unit, StaleRead, VerifyReport};

use ompdart_frontend::ast::{StmtKind, TranslationUnit};
use ompdart_frontend::diag::Diagnostics;
use std::fmt;
use std::time::Duration;

/// Configuration of the OMPDart pipeline.
#[derive(Clone, Copy, Debug)]
pub struct OmpDartOptions {
    /// Data-flow analysis knobs (firstprivate optimization, update hoisting).
    pub dataflow: DataflowOptions,
    /// Run the interprocedural side-effect analysis (Section IV-C). When
    /// disabled, call sites fall back to maximally pessimistic assumptions.
    pub interprocedural: bool,
    /// Upper bound on interprocedural propagation passes (the paper iterates
    /// up to the maximum call depth with early termination).
    pub max_interproc_passes: usize,
    /// Reject inputs that already contain `target data` / `target update`
    /// directives (the expected input contract of Section IV-A).
    pub reject_existing_mappings: bool,
}

impl Default for OmpDartOptions {
    fn default() -> Self {
        OmpDartOptions {
            dataflow: DataflowOptions::default(),
            interprocedural: true,
            max_interproc_passes: 16,
            reject_existing_mappings: true,
        }
    }
}

/// Errors that abort the transformation entirely.
#[derive(Debug)]
pub enum OmpDartError {
    /// The input failed to parse.
    ParseFailed(Diagnostics),
    /// The input already contains explicit data-mapping directives.
    AlreadyMapped { function: String },
}

impl fmt::Display for OmpDartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpDartError::ParseFailed(d) => {
                write!(f, "input failed to parse with {} error(s)", d.error_count())
            }
            OmpDartError::AlreadyMapped { function } => write!(
                f,
                "function `{function}` already contains target data/update directives; \
                 OMPDart expects input without explicit data mappings"
            ),
        }
    }
}

impl std::error::Error for OmpDartError {}

/// Result of a successful transformation.
#[derive(Debug)]
pub struct TransformResult {
    /// The rewritten source with data-mapping directives inserted.
    pub transformed_source: String,
    /// Per-function mapping plans.
    pub plans: Vec<RegionPlan>,
    /// Warnings and notes produced during analysis.
    pub diagnostics: Diagnostics,
    /// Aggregate statistics (kernels, mapped variables, inserted constructs).
    pub stats: AnalysisStats,
    /// Wall-clock time spent analyzing and rewriting (the paper's Table V).
    pub tool_time: Duration,
}

impl TransformResult {
    /// The plan for a given function.
    pub fn plan_for(&self, function: &str) -> Option<&RegionPlan> {
        self.plans.iter().find(|p| p.function == function)
    }
}

/// The OMPDart tool.
#[derive(Clone, Copy, Debug, Default)]
pub struct OmpDart {
    options: OmpDartOptions,
}

impl OmpDart {
    /// Create the tool with default options.
    pub fn new() -> OmpDart {
        OmpDart {
            options: OmpDartOptions::default(),
        }
    }

    /// Create the tool with explicit options.
    pub fn with_options(options: OmpDartOptions) -> OmpDart {
        OmpDart { options }
    }

    /// The active options.
    pub fn options(&self) -> &OmpDartOptions {
        &self.options
    }

    /// Analyze and transform a source string.
    ///
    /// This is a thin one-shot wrapper over [`pipeline::AnalysisSession`];
    /// callers that analyze many sources (or the same source repeatedly)
    /// should hold a session to benefit from its artifact cache, and batch
    /// workloads should use [`pipeline::BatchDriver`].
    pub fn transform_source(
        &self,
        name: &str,
        source: &str,
    ) -> Result<TransformResult, OmpDartError> {
        pipeline::AnalysisSession::with_options(self.options)
            .transform(name, source)
            .map_err(OmpDartError::from)
    }

    /// Analyze a parsed translation unit and produce per-function plans
    /// without rewriting (used by the complexity metrics and benches).
    /// Runs the graph, access, summary and plan stages of the pipeline on
    /// the borrowed unit.
    pub fn analyze_unit(
        &self,
        unit: &TranslationUnit,
        diagnostics: &mut Diagnostics,
    ) -> (Vec<RegionPlan>, AnalysisStats) {
        let graphs = pipeline::stage_graphs(unit);
        let accesses = pipeline::stage_accesses(unit, &graphs);
        let summaries = pipeline::stage_summaries(unit, &accesses, &self.options);
        let plans = pipeline::stage_plans(unit, &graphs, &accesses, &summaries, &self.options, 1);
        diagnostics.extend(plans.diagnostics.clone());
        (plans.plans, plans.stats)
    }
}

/// Find a function that already contains `target data`/`target update`
/// directives (disallowed input per Section IV-A).
fn function_with_existing_mappings(unit: &TranslationUnit) -> Option<String> {
    for func in unit.functions() {
        let mut found = false;
        if let Some(body) = &func.body {
            body.walk(&mut |s| {
                if let StmtKind::Omp(dir) = &s.kind {
                    if dir.kind.is_data_directive() {
                        found = true;
                    }
                }
            });
        }
        if found {
            return Some(func.name.clone());
        }
    }
    None
}

/// Convenience wrapper: transform a source string with default options.
pub fn transform(name: &str, source: &str) -> Result<TransformResult, OmpDartError> {
    OmpDart::new().transform_source(name, source)
}

/// Re-exported for downstream crates that need to parse alongside the tool.
pub use ompdart_frontend as frontend;
pub use ompdart_graph as graph;

#[cfg(test)]
mod tests {
    use super::*;
    use ompdart_sim::{simulate_source, SimConfig};

    /// End-to-end: the motivating Listing 1 program. OMPDart must hoist the
    /// mapping out of the loop, preserve program output, and dramatically
    /// reduce transfers.
    #[test]
    fn listing1_transform_preserves_output_and_reduces_transfers() {
        let src = "\
#define N 64
#define ITERS 20
int a[N];
int main() {
  for (int i = 0; i < ITERS; ++i) {
    #pragma omp target
    for (int j = 0; j < N; ++j) {
      a[j] += j;
    }
  }
  int checksum = 0;
  for (int j = 0; j < N; ++j) checksum += a[j];
  printf(\"%d\\n\", checksum);
  return 0;
}
";
        let result = transform("listing1.c", src).expect("transform failed");
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(&result.transformed_source, SimConfig::default()).unwrap();
        assert_eq!(
            before.output, after.output,
            "program output must be preserved"
        );
        assert!(after.profile.total_calls() < before.profile.total_calls());
        assert!(after.profile.total_bytes() < before.profile.total_bytes());
        // 20 iterations of implicit tofrom collapse into a single pair.
        assert_eq!(after.profile.htod_calls, 1);
        assert_eq!(after.profile.dtoh_calls, 1);
    }

    /// End-to-end: Listing 2 (back-to-back kernels).
    #[test]
    fn listing2_back_to_back_kernels() {
        let src = "\
#define N 64
int a[N];
int main() {
  #pragma omp target
  for (int i = 0; i < N; ++i) a[i] += i;
  #pragma omp target
  for (int i = 0; i < N; ++i) a[i] *= 2;
  printf(\"%d\\n\", a[10]);
  return 0;
}
";
        let result = transform("listing2.c", src).unwrap();
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(&result.transformed_source, SimConfig::default()).unwrap();
        assert_eq!(before.output, after.output);
        assert_eq!(after.profile.htod_calls, 1);
        assert_eq!(after.profile.dtoh_calls, 1);
        assert_eq!(before.profile.htod_calls, 2);
    }

    /// End-to-end: the corrected Listing 3 pattern (host reduction inside the
    /// loop) — the tool must keep the program correct by inserting an update.
    #[test]
    fn listing3_host_reduction_stays_correct() {
        let src = "\
#define N 32
#define M 6
int a[N];
int main() {
  int sum = 0;
  for (int i = 0; i < M; ++i) {
    #pragma omp target
    for (int j = 0; j < N; ++j) {
      a[j] += j;
    }
    for (int j = 0; j < N; ++j) {
      sum += a[j];
    }
  }
  printf(\"%d\\n\", sum);
  return 0;
}
";
        let result = transform("listing3.c", src).unwrap();
        assert!(result.transformed_source.contains("target update from(a)"));
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(&result.transformed_source, SimConfig::default()).unwrap();
        assert_eq!(
            before.output, after.output,
            "transformed:\n{}",
            result.transformed_source
        );
        assert!(after.profile.total_bytes() <= before.profile.total_bytes());
    }

    #[test]
    fn rejects_already_mapped_input() {
        let src = "\
#define N 8
double a[N];
void f() {
  #pragma omp target data map(tofrom: a)
  {
    #pragma omp target
    for (int i = 0; i < N; i++) a[i] = i;
  }
}
";
        let err = transform("mapped.c", src).unwrap_err();
        assert!(matches!(err, OmpDartError::AlreadyMapped { .. }));
        // ...unless the caller opts out of the input contract.
        let lenient = OmpDart::with_options(OmpDartOptions {
            reject_existing_mappings: false,
            ..OmpDartOptions::default()
        });
        assert!(lenient.transform_source("mapped.c", src).is_ok());
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = transform("broken.c", "int main( { return 0; }\n").unwrap_err();
        assert!(matches!(err, OmpDartError::ParseFailed(_)));
    }

    #[test]
    fn stats_reflect_inserted_constructs() {
        let src = "\
#define N 32
double x[N];
double y[N];
void axpy(double alpha) {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) y[i] = alpha * x[i] + y[i];
}
";
        let result = transform("axpy.c", src).unwrap();
        assert_eq!(result.stats.functions_with_kernels, 1);
        assert_eq!(result.stats.kernels, 1);
        assert!(result.stats.map_clauses >= 2);
        assert_eq!(result.stats.firstprivate_clauses, 1);
        assert!(result.stats.total_constructs() >= 3);
        assert!(result.tool_time.as_secs_f64() < 5.0);
        assert!(result.plan_for("axpy").is_some());
    }

    /// The interprocedural analysis can be disabled; the tool then makes
    /// pessimistic assumptions but still produces a correct program.
    #[test]
    fn interprocedural_toggle_still_correct() {
        let src = "\
#define N 64
double field[N];
void host_adjust(double *f, int n) {
  for (int i = 0; i < n; i++) f[i] = f[i] * 0.5;
}
int main() {
  for (int i = 0; i < N; i++) field[i] = i;
  for (int step = 0; step < 4; step++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) field[i] += 1.0;
    host_adjust(field, N);
  }
  printf(\"%.2f\\n\", field[3]);
  return 0;
}
";
        for interprocedural in [true, false] {
            let tool = OmpDart::with_options(OmpDartOptions {
                interprocedural,
                ..OmpDartOptions::default()
            });
            let result = tool.transform_source("ip.c", src).unwrap();
            let before = simulate_source(src, SimConfig::default()).unwrap();
            let after = simulate_source(&result.transformed_source, SimConfig::default()).unwrap();
            assert_eq!(
                before.output, after.output,
                "interprocedural={interprocedural}\n{}",
                result.transformed_source
            );
        }
    }

    /// Regression: a device-written global that the host only reads through
    /// a pointer alias must keep its exit copy — the dead-exit-copy
    /// demotion may not treat it as device-only.
    #[test]
    fn pointer_alias_keeps_exit_copy() {
        let src = "\
#define N 16
double a[N];
int main() {
  double *p = a;
  for (int it = 0; it < 3; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) a[i] = i + 1.0;
  }
  printf(\"%f\\n\", p[3]);
  return 0;
}
";
        let result = transform("alias.c", src).unwrap();
        let map = result.plans[0].map_for("a").expect("a must be mapped");
        assert!(
            map.map_type.copies_to_host(),
            "alias read requires from/tofrom, got {:?}\n{}",
            map.map_type,
            result.transformed_source
        );
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(&result.transformed_source, SimConfig::default()).unwrap();
        assert_eq!(before.output, after.output, "{}", result.transformed_source);
    }

    /// Scalars that stay read-only on the device become firstprivate and the
    /// transformed program still matches.
    #[test]
    fn firstprivate_end_to_end() {
        let src = "\
#define N 128
double data[N];
int main() {
  double scale = 1.5;
  int offset = 3;
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) data[i] = scale * i + offset;
  printf(\"%.1f\\n\", data[10]);
  return 0;
}
";
        let result = transform("fp.c", src).unwrap();
        assert!(result.transformed_source.contains("firstprivate("));
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(&result.transformed_source, SimConfig::default()).unwrap();
        assert_eq!(before.output, after.output);
        assert!(after.profile.total_calls() <= before.profile.total_calls());
    }
}
