//! Persistent on-disk artifact store: warm starts across process restarts.
//!
//! The store keeps one JSON document per analyzed translation unit, keyed
//! **content-addressed** — by the source text alone, *not* by the file
//! name — plus the analysis options and, for units analyzed as part of a
//! linked whole program, the fingerprint of the interfaces the unit
//! *imports* from the rest of the program. A renamed or copied file (or
//! two units that happen to share their full text, e.g. generated sources
//! sharing one header) therefore starts **warm**: the first analysis under
//! the new name is served from the entry the old name wrote. Nothing in a
//! stored document embeds the unit name — the artifacts that do carry the
//! name (parse diagnostics, the source file handle) are rebuilt from the
//! fresh parse by the relocation layer ([`crate::relocate`]) instead of
//! being persisted, which is what makes the name-free key sound.
//!
//! Documents reuse the versioned plan JSON of [`crate::plan::json`] and add
//! a *full verification key*: besides the primary FNV-1a content hash
//! (which also names the file on disk), every entry records the source
//! length, an independent second content hash, the [`OmpDartOptions`]
//! fingerprint, and the link fingerprint. A lookup only hits when every
//! component matches — a corrupt file, a hash collision, a stale entry
//! from an older format version (including the pre-v3 `(name, source)`
//! keyed layout, which degrades cleanly to a miss), or an entry produced
//! under different options or link surroundings is silently treated as a
//! miss and overwritten on the next write-back, never trusted.
//!
//! The link fingerprint is what makes store invalidation *interface
//! granular* across files: editing one unit changes its own content key
//! (its entry misses and is re-planned), but other units' entries keep
//! hitting unless the edited unit's **exported interface** changed — only
//! then does their imported-interface fingerprint move.
//!
//! Besides the plans, each entry persists per-function sub-entries
//! ([`FunctionKeySnapshot`]), so a warm-started session re-seeds its
//! in-memory function-plan cache from a store hit and the *first edit*
//! after a restart already re-plans only the edited function (access
//! collection and local summarization are not persisted — they are cheap
//! intermediates and re-run for the unit on that first edit).
//!
//! The store is deliberately plan-granular: plans are the expensive artifact
//! (the data-flow analysis), while parsing and rewriting are cheap and must
//! re-run anyway to rebuild spans and node ids for the current source.
//! Because parsing is deterministic, node ids serialized in a stored plan
//! line up with a fresh parse of the identical source, which is what makes
//! a store-served rewrite byte-identical to a cold one (the same property
//! the plan-JSON golden tests pin).
//!
//! Disk growth is bounded two ways. Content addressing removes the name
//! from the key, so "the previous version of this file" is tracked through
//! tiny `ref-*` side files — one per `(unit name, options, link)` — whose
//! only job is to let a write-back prune the entry the same file's previous
//! save produced (a shared entry another name still points at simply
//! re-materializes on that file's next save). On top of that, an optional
//! size cap ([`ArtifactStore::with_max_bytes`], surfaced as `ompdart cache
//! gc`) evicts least-recently-used entries. Eviction never touches the
//! entry being written and removes files one atomic unlink at a time, so a
//! concurrent reader sees either a full entry or a miss, never a torn one.

use crate::pipeline::{content_hash, content_hash2, FunctionKeySnapshot, FunctionPlanKey};
use crate::plan::ir::{AnalysisStats, MappingPlan, PLAN_FORMAT_VERSION};
use crate::plan::json::{stats_from_json, stats_to_json, Json};
use crate::OmpDartOptions;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Version of the on-disk store envelope. Bumped whenever the document
/// layout around the embedded plan JSON changes; entries written by any
/// other version are rejected as stale. v3 moved to the content-addressed
/// key (source text only); v2 `(name, source)` entries degrade to a miss.
pub const STORE_FORMAT_VERSION: u32 = 3;

/// FNV-1a hash of the source text alone — the primary content address.
fn source_hash(source: &str) -> u64 {
    content_hash("", source)
}

/// The independent second hash of the source text alone.
fn source_hash2(source: &str) -> u64 {
    content_hash2("", source)
}

/// A directory-backed store of per-unit planning artifacts.
///
/// Opening a store never fails: the directory is created lazily on the
/// first write, and every read error (missing directory, unreadable file,
/// corrupt JSON) degrades to a cache miss.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    /// When set, every write-back enforces this LRU size cap.
    max_bytes: Option<u64>,
}

/// One unit's stored planning artifacts, as returned by
/// [`ArtifactStore::load`].
#[derive(Clone, Debug)]
pub struct StoredUnit {
    /// The per-function mapping plans, in source order.
    pub plans: Vec<MappingPlan>,
    /// The aggregate statistics recorded when the plans were produced.
    pub stats: AnalysisStats,
    /// Per-function plan-cache key snapshots (source order), used to
    /// re-seed the in-memory function-plan cache on a hit.
    pub functions: Vec<FunctionKeySnapshot>,
}

/// One unit's queued write-back, as buffered by the session's write-behind
/// layer and flushed in bulk through [`ArtifactStore::save_many`].
#[derive(Clone, Debug)]
pub struct PendingUnitSave {
    pub name: String,
    pub source: String,
    pub link: u64,
    pub plans: Vec<MappingPlan>,
    pub stats: AnalysisStats,
    pub functions: Vec<FunctionKeySnapshot>,
}

/// One function's persisted planning result, stored (like the in-memory
/// [`crate::pipeline::FunctionPlanCache`] it mirrors) in the node-id/byte
/// coordinates of the parse that produced it and relocated on every hit.
#[derive(Clone, Debug)]
pub(crate) struct StoredFunctionPlan {
    pub(crate) base_id: u32,
    pub(crate) base_pos: u32,
    pub(crate) analyzed: bool,
    pub(crate) fallbacks: u64,
    pub(crate) plan: Option<MappingPlan>,
}

/// What one garbage-collection pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries present before the pass.
    pub entries_before: usize,
    /// Entries evicted (least-recently-used first).
    pub entries_evicted: usize,
    /// Bytes freed by eviction.
    pub bytes_freed: u64,
    /// Bytes still stored after the pass.
    pub bytes_kept: u64,
}

impl ArtifactStore {
    /// A store rooted at `dir`. The directory is created on first write.
    pub fn open(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore {
            dir: dir.into(),
            max_bytes: None,
        }
    }

    /// Enforce an LRU size cap: after every write-back, least-recently-used
    /// entries are evicted until the store fits in `max_bytes`. The entry
    /// just written is never evicted.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> ArtifactStore {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// The configured size cap, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path an entry for `source` under `options` and `link`
    /// lives at. The file name carries four hashes — two independent
    /// hashes of the source text (the content address; the unit name does
    /// not participate), the options fingerprint, and the link fingerprint
    /// — so sessions with different options or link surroundings sharing
    /// one `cache_dir` coexist instead of overwriting each other.
    /// Colliding hashes share a path but are disambiguated by the in-file
    /// verification key.
    pub fn entry_path(&self, source: &str, options: &OmpDartOptions, link: u64) -> PathBuf {
        self.dir.join(format!(
            "unit-{:016x}-{:016x}-{:016x}-{:016x}.json",
            source_hash(source),
            source_hash2(source),
            options.fingerprint(),
            link,
        ))
    }

    /// The path of the tiny side file remembering which content entry the
    /// unit called `name` last wrote under `options` and `link` — the only
    /// place the unit *name* still appears (hashed), and only so a later
    /// save can prune the superseded entry.
    fn ref_path(&self, name: &str, options: &OmpDartOptions, link: u64) -> PathBuf {
        self.dir.join(format!(
            "ref-{:016x}-{:016x}-{:016x}.ref",
            content_hash(name, ""),
            options.fingerprint(),
            link,
        ))
    }

    fn files_with_prefix(&self, prefix: &str) -> Vec<PathBuf> {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".json"))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn entry_files(&self) -> Vec<PathBuf> {
        self.files_with_prefix("unit-")
    }

    /// Every evictable cache file: unit entries plus function-level
    /// entries. The LRU garbage collector works over this set.
    fn cache_files(&self) -> Vec<PathBuf> {
        let mut files = self.files_with_prefix("unit-");
        files.extend(self.files_with_prefix("fn-"));
        files
    }

    /// Number of unit entries currently on disk (diagnostics and tests).
    pub fn entry_count(&self) -> usize {
        self.entry_files().len()
    }

    /// Number of function-level entries currently on disk.
    pub fn function_entry_count(&self) -> usize {
        self.files_with_prefix("fn-").len()
    }

    /// Total size in bytes of all cache files currently on disk.
    pub fn total_bytes(&self) -> u64 {
        self.cache_files()
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }

    /// Look up the stored plans for `source` under `options` and `link` —
    /// the unit name does not participate, so renamed or copied files hit
    /// the entries their previous name wrote. Returns `None` unless the
    /// entry exists, parses, carries the expected versions, and its full
    /// key — source length, both content hashes, the options fingerprint,
    /// and the link fingerprint — matches exactly. A hit refreshes the
    /// entry's modification time (best effort) so LRU eviction sees it as
    /// recently used.
    pub fn load(&self, source: &str, options: &OmpDartOptions, link: u64) -> Option<StoredUnit> {
        let path = self.entry_path(source, options, link);
        let text = std::fs::read_to_string(&path).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("store_version").and_then(Json::as_int) != Some(i64::from(STORE_FORMAT_VERSION))
            || doc.get("version").and_then(Json::as_int) != Some(i64::from(PLAN_FORMAT_VERSION))
        {
            return None;
        }
        let key = doc.get("key")?;
        let matches = key.get("len").and_then(Json::as_int) == Some(source.len() as i64)
            && key.get("fnv").and_then(Json::as_str)
                == Some(format!("{:016x}", source_hash(source)).as_str())
            && key.get("fnv2").and_then(Json::as_str)
                == Some(format!("{:016x}", source_hash2(source)).as_str())
            && doc.get("options").and_then(Json::as_str)
                == Some(format!("{:016x}", options.fingerprint()).as_str())
            && doc.get("link").and_then(Json::as_str) == Some(format!("{link:016x}").as_str());
        if !matches {
            return None;
        }
        let plans = doc
            .get("plans")
            .and_then(Json::as_array)?
            .iter()
            .map(MappingPlan::from_json_value)
            .collect::<Result<Vec<_>, _>>()
            .ok()?;
        let stats = stats_from_json(doc.get("stats")?).ok()?;
        let functions = doc
            .get("functions")
            .and_then(Json::as_array)?
            .iter()
            .map(function_key_from_json)
            .collect::<Option<Vec<_>>>()?;
        // LRU touch: a hit makes the entry "recently used". Best effort —
        // read-only stores simply age out faster.
        if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&path) {
            let _ = file.set_modified(SystemTime::now());
        }
        Some(StoredUnit {
            plans,
            stats,
            functions,
        })
    }

    /// Write back the plans for `source` produced under `options` and
    /// `link`. The write is atomic (temp file + rename) so concurrent
    /// writers and crashed processes never leave a torn entry behind.
    ///
    /// The entry itself is content-addressed and name-free; `name` is used
    /// only to update the unit's `ref-*` side file and prune the entry the
    /// same unit's *previous* save produced (plus any unloadable pre-v3
    /// entries for the same name), so a long editing session still leaves
    /// one content entry per (unit, options, link) on disk — not one per
    /// save. When a size cap is configured, least-recently-used entries
    /// are then evicted until the store fits, never including the entry
    /// just written.
    #[allow(clippy::too_many_arguments)]
    pub fn save(
        &self,
        name: &str,
        source: &str,
        options: &OmpDartOptions,
        link: u64,
        plans: &[MappingPlan],
        stats: &AnalysisStats,
        functions: &[FunctionKeySnapshot],
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.write_entry(source, options, link, plans, stats, functions)?;
        self.repoint_ref(name, options, link, &path);
        self.sweep_legacy(&[name], options, std::slice::from_ref(&path));
        if let Some(max) = self.max_bytes {
            let _ = self.gc_protecting(max, std::slice::from_ref(&path));
        }
        Ok(path)
    }

    /// Write back many units' plans in one batch — the write-behind flush
    /// of a whole-program analysis. Per-entry atomicity is identical to
    /// [`ArtifactStore::save`] (each entry is its own temp file + rename,
    /// each superseded previous entry its own atomic unlink), but the
    /// directory-wide work — the legacy sweep and the LRU garbage
    /// collection — runs **once** for the whole batch instead of once per
    /// unit, so a 1000-unit cold link pays one sweep, not 1000. None of the
    /// just-written entries is ever evicted by the batch's own gc pass.
    pub fn save_many(
        &self,
        options: &OmpDartOptions,
        saves: &[PendingUnitSave],
    ) -> std::io::Result<Vec<PathBuf>> {
        if saves.is_empty() {
            return Ok(Vec::new());
        }
        self.prepare_dir()?;
        let mut paths = Vec::with_capacity(saves.len());
        for save in saves {
            paths.push(self.save_one(options, save)?);
        }
        let names: Vec<&str> = saves.iter().map(|s| s.name.as_str()).collect();
        self.finish_batch(&names, options, &paths);
        Ok(paths)
    }

    /// Ensure the store directory exists — the once-per-batch prelude of
    /// [`ArtifactStore::save_one`] fan-outs.
    pub(crate) fn prepare_dir(&self) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)
    }

    /// Write one batch member's content entry and re-point its `ref-*`
    /// side file. Per-entry atomicity is identical to
    /// [`ArtifactStore::save`] (own temp file + rename), and entries are
    /// independent of each other, so a whole batch of `save_one` calls may
    /// run concurrently — e.g. fanned out over the session's worker pool
    /// by `AnalysisSession::flush_store_writes`. Callers must run
    /// [`ArtifactStore::prepare_dir`] once first and
    /// [`ArtifactStore::finish_batch`] once afterwards.
    pub(crate) fn save_one(
        &self,
        options: &OmpDartOptions,
        save: &PendingUnitSave,
    ) -> std::io::Result<PathBuf> {
        let path = self.write_entry(
            &save.source,
            options,
            save.link,
            &save.plans,
            &save.stats,
            &save.functions,
        )?;
        self.repoint_ref(&save.name, options, save.link, &path);
        Ok(path)
    }

    /// The directory-wide epilogue of a batch of [`ArtifactStore::save_one`]
    /// calls: one legacy sweep and one LRU garbage collection for the whole
    /// batch (never evicting the entries just written), so a 1000-unit cold
    /// link pays one sweep, not 1000.
    pub(crate) fn finish_batch(&self, names: &[&str], options: &OmpDartOptions, paths: &[PathBuf]) {
        self.sweep_legacy(names, options, paths);
        if let Some(max) = self.max_bytes {
            let _ = self.gc_protecting(max, paths);
        }
    }

    /// Atomically materialize one content-addressed entry document.
    fn write_entry(
        &self,
        source: &str,
        options: &OmpDartOptions,
        link: u64,
        plans: &[MappingPlan],
        stats: &AnalysisStats,
        functions: &[FunctionKeySnapshot],
    ) -> std::io::Result<PathBuf> {
        let doc = Json::Object(vec![
            (
                "store_version".into(),
                Json::Int(i64::from(STORE_FORMAT_VERSION)),
            ),
            ("version".into(), Json::Int(i64::from(PLAN_FORMAT_VERSION))),
            (
                "key".into(),
                Json::Object(vec![
                    ("len".into(), Json::Int(source.len() as i64)),
                    (
                        "fnv".into(),
                        Json::Str(format!("{:016x}", source_hash(source))),
                    ),
                    (
                        "fnv2".into(),
                        Json::Str(format!("{:016x}", source_hash2(source))),
                    ),
                ]),
            ),
            (
                "options".into(),
                Json::Str(format!("{:016x}", options.fingerprint())),
            ),
            ("link".into(), Json::Str(format!("{link:016x}"))),
            ("stats".into(), stats_to_json(stats)),
            (
                "functions".into(),
                Json::Array(functions.iter().map(function_key_to_json).collect()),
            ),
            (
                "plans".into(),
                Json::Array(plans.iter().map(MappingPlan::to_json_value).collect()),
            ),
        ]);
        let path = self.entry_path(source, options, link);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc.render_pretty())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Evict least-recently-used entries until the store's total size fits
    /// in `max_bytes`. Returns what the pass did. Entries are removed one
    /// atomic unlink at a time; in-flight temp files are never touched.
    pub fn gc(&self, max_bytes: u64) -> GcReport {
        self.gc_protecting(max_bytes, &[])
    }

    fn gc_protecting(&self, max_bytes: u64, protect: &[PathBuf]) -> GcReport {
        let mut entries: Vec<(PathBuf, SystemTime, u64)> = self
            .cache_files()
            .into_iter()
            .filter_map(|p| {
                let meta = std::fs::metadata(&p).ok()?;
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                Some((p, mtime, meta.len()))
            })
            .collect();
        let mut report = GcReport {
            entries_before: entries.len(),
            ..Default::default()
        };
        let mut total: u64 = entries.iter().map(|(_, _, len)| *len).sum();
        // Oldest first; ties broken by path for determinism.
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        for (path, _, len) in entries {
            if total <= max_bytes {
                break;
            }
            if protect.contains(&path) {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                report.entries_evicted += 1;
                report.bytes_freed += len;
            }
        }
        report.bytes_kept = total;
        report
    }

    /// Best-effort removal of the entry superseded by a fresh write.
    ///
    /// Content addressing removed the unit name from the entry key, so
    /// "this file's previous version" is remembered through the unit's
    /// `ref-*` side file: it names the content entry the same
    /// `(name, options, link)` triple last wrote. If that entry differs
    /// from the one just written, it is deleted (if another unit still
    /// shares that content, its next save simply re-materializes it — a
    /// cache miss, never an error) and the ref is repointed.
    fn repoint_ref(&self, name: &str, options: &OmpDartOptions, link: u64, keep: &Path) {
        let keep_file = keep.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let ref_path = self.ref_path(name, options, link);
        if let Ok(previous) = std::fs::read_to_string(&ref_path) {
            let previous = previous.trim();
            if !previous.is_empty()
                && previous != keep_file
                && previous.starts_with("unit-")
                && previous.ends_with(".json")
                && !previous.contains(['/', '\\'])
            {
                let _ = std::fs::remove_file(self.dir.join(previous));
            }
        }
        let _ = std::fs::write(&ref_path, keep_file);
    }

    /// Legacy (pre-v3) cleanup: entries keyed by any of `names`' hashes.
    /// One directory scan serves the whole batch.
    ///
    /// A v3 entry's first file-name field is a source hash, which collides
    /// with a name hash only with negligible probability — and a false
    /// positive costs one cache miss, nothing more.
    fn sweep_legacy(&self, names: &[&str], options: &OmpDartOptions, keep: &[PathBuf]) {
        let name_hashes: Vec<String> = names
            .iter()
            .map(|name| format!("{:016x}", content_hash(name, "")))
            .collect();
        let options_hash = format!("{:016x}", options.fingerprint());
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if keep.contains(&path) {
                continue;
            }
            let stale = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_entry_name)
                .is_some_and(|fields| match fields {
                    EntryName::Legacy4([n, _, o, _]) => {
                        o == options_hash && name_hashes.iter().any(|h| h == n)
                    }
                    EntryName::Legacy3([n, _, o]) => {
                        o == options_hash && name_hashes.iter().any(|h| h == n)
                    }
                });
            if stale {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Function-level entries
// ---------------------------------------------------------------------------

/// Hash over the non-snippet components of a function plan key, used as
/// the third field of a function entry's file name. Purely an index — the
/// in-file key re-verifies every component individually.
fn function_meta_hash(key: &FunctionPlanKey) -> u64 {
    content_hash(
        &format!(
            "{:016x}{:016x}{:016x}{:016x}",
            key.env_hash, key.callees_hash, key.refs_hash, key.options_hash
        ),
        "",
    )
}

impl ArtifactStore {
    /// The on-disk path of a function-level entry: two independent hashes
    /// of the function's source snippet plus one hash over the remaining
    /// key components (environment, callee summaries, refs, options). The
    /// file name only indexes — a hit additionally requires the in-file
    /// key to match, including the stored snippet byte for byte.
    pub(crate) fn function_entry_path(&self, key: &FunctionPlanKey) -> PathBuf {
        self.dir.join(format!(
            "fn-{:016x}-{:016x}-{:016x}.json",
            source_hash(&key.snippet),
            source_hash2(&key.snippet),
            function_meta_hash(key),
        ))
    }

    /// Look up one function's stored planning result under the full plan
    /// key. Same discipline as [`ArtifactStore::load`]: versions, every
    /// hash component, and the full snippet text must match exactly, and a
    /// hit refreshes the entry's mtime so LRU eviction sees it as recently
    /// used. This is what lets two units (or two processes) sharing a
    /// header-defined `static` function warm each other: the key carries
    /// no unit name, only the function's complete planning inputs.
    pub(crate) fn load_function(&self, key: &FunctionPlanKey) -> Option<StoredFunctionPlan> {
        let path = self.function_entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("store_version").and_then(Json::as_int) != Some(i64::from(STORE_FORMAT_VERSION))
            || doc.get("version").and_then(Json::as_int) != Some(i64::from(PLAN_FORMAT_VERSION))
        {
            return None;
        }
        let stored_key = doc.get("key")?;
        let matches = stored_key.get("len").and_then(Json::as_int)
            == Some(key.snippet.len() as i64)
            && hex_u64(stored_key.get("env")) == Some(key.env_hash)
            && hex_u64(stored_key.get("callees")) == Some(key.callees_hash)
            && hex_u64(stored_key.get("refs")) == Some(key.refs_hash)
            && hex_u64(stored_key.get("options")) == Some(key.options_hash)
            && doc.get("snippet").and_then(Json::as_str) == Some(key.snippet.as_str());
        if !matches {
            return None;
        }
        let int_u32 = |k: &str| -> Option<u32> {
            doc.get(k)
                .and_then(Json::as_int)
                .and_then(|n| u32::try_from(n).ok())
        };
        let plan = match doc.get("plan") {
            Some(value) => Some(MappingPlan::from_json_value(value).ok()?),
            None => None,
        };
        let entry = StoredFunctionPlan {
            base_id: int_u32("base_id")?,
            base_pos: int_u32("base_pos")?,
            analyzed: doc.get("analyzed").and_then(Json::as_bool)?,
            fallbacks: doc
                .get("fallbacks")
                .and_then(Json::as_int)
                .and_then(|n| u64::try_from(n).ok())?,
            plan,
        };
        if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&path) {
            let _ = file.set_modified(SystemTime::now());
        }
        Some(entry)
    }

    /// Write back one function's planning result under its full plan key.
    /// Atomic (temp file + rename) like the unit entries; no directory
    /// sweep or gc runs here — function entries participate in the LRU
    /// accounting of the next unit-level save's gc pass instead.
    pub(crate) fn save_function(
        &self,
        key: &FunctionPlanKey,
        entry: &StoredFunctionPlan,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let mut fields = vec![
            (
                "store_version".into(),
                Json::Int(i64::from(STORE_FORMAT_VERSION)),
            ),
            ("version".into(), Json::Int(i64::from(PLAN_FORMAT_VERSION))),
            (
                "key".into(),
                Json::Object(vec![
                    ("len".into(), Json::Int(key.snippet.len() as i64)),
                    ("env".into(), Json::Str(format!("{:016x}", key.env_hash))),
                    (
                        "callees".into(),
                        Json::Str(format!("{:016x}", key.callees_hash)),
                    ),
                    ("refs".into(), Json::Str(format!("{:016x}", key.refs_hash))),
                    (
                        "options".into(),
                        Json::Str(format!("{:016x}", key.options_hash)),
                    ),
                ]),
            ),
            ("snippet".into(), Json::Str(key.snippet.clone())),
            ("base_id".into(), Json::Int(i64::from(entry.base_id))),
            ("base_pos".into(), Json::Int(i64::from(entry.base_pos))),
            ("analyzed".into(), Json::Bool(entry.analyzed)),
            ("fallbacks".into(), Json::Int(entry.fallbacks as i64)),
        ];
        if let Some(plan) = &entry.plan {
            fields.push(("plan".into(), plan.to_json_value()));
        }
        let doc = Json::Object(fields);
        let path = self.function_entry_path(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc.render_pretty())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// A parsed store-entry file name, viewed as a *legacy candidate*: the v2
/// four-field `(name, content, options, link)` layout or the pre-link
/// three-field one. Neither can be loaded by this version; pruning cleans
/// them up after an upgrade. (The current v3 layout also has four fields —
/// disambiguation happens via the in-file `store_version`, and pruning only
/// ever matches on the name hash, which v3 entries do not carry.)
enum EntryName<'a> {
    Legacy4([&'a str; 4]),
    Legacy3([&'a str; 3]),
}

/// Split `unit-<a>-<b>-<c>[-<d>].json` into its hash fields; `None` for
/// anything that is not a store entry.
fn parse_entry_name(file_name: &str) -> Option<EntryName<'_>> {
    let body = file_name.strip_prefix("unit-")?.strip_suffix(".json")?;
    let fields: Vec<&str> = body.split('-').collect();
    if fields.iter().any(|f| f.len() != 16) {
        return None;
    }
    match fields.as_slice() {
        [a, b, c, d] => Some(EntryName::Legacy4([a, b, c, d])),
        [a, b, c] => Some(EntryName::Legacy3([a, b, c])),
        _ => None,
    }
}

fn hex_u64(value: Option<&Json>) -> Option<u64> {
    value
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
}

fn function_key_to_json(key: &FunctionKeySnapshot) -> Json {
    Json::Object(vec![
        ("function".into(), Json::Str(key.function.to_string())),
        ("base_id".into(), Json::Int(i64::from(key.base_id))),
        ("base_pos".into(), Json::Int(i64::from(key.base_pos))),
        ("snippet_len".into(), Json::Int(i64::from(key.snippet_len))),
        ("env".into(), Json::Str(format!("{:016x}", key.env_hash))),
        (
            "callees".into(),
            Json::Str(format!("{:016x}", key.callees_hash)),
        ),
        ("refs".into(), Json::Str(format!("{:016x}", key.refs_hash))),
        (
            "options".into(),
            Json::Str(format!("{:016x}", key.options_hash)),
        ),
        ("analyzed".into(), Json::Bool(key.analyzed)),
        ("has_plan".into(), Json::Bool(key.has_plan)),
        ("fallbacks".into(), Json::Int(key.fallbacks as i64)),
    ])
}

fn function_key_from_json(value: &Json) -> Option<FunctionKeySnapshot> {
    let int_u32 = |k: &str| -> Option<u32> {
        value
            .get(k)
            .and_then(Json::as_int)
            .and_then(|n| u32::try_from(n).ok())
    };
    Some(FunctionKeySnapshot {
        function: ompdart_frontend::Symbol::intern(value.get("function").and_then(Json::as_str)?),
        base_id: int_u32("base_id")?,
        base_pos: int_u32("base_pos")?,
        snippet_len: int_u32("snippet_len")?,
        env_hash: hex_u64(value.get("env"))?,
        callees_hash: hex_u64(value.get("callees"))?,
        refs_hash: hex_u64(value.get("refs"))?,
        options_hash: hex_u64(value.get("options"))?,
        analyzed: value.get("analyzed").and_then(Json::as_bool)?,
        has_plan: value.get("has_plan").and_then(Json::as_bool)?,
        fallbacks: value
            .get("fallbacks")
            .and_then(Json::as_int)
            .and_then(|n| u64::try_from(n).ok())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ir::MapSpec;
    use crate::program::UNLINKED;
    use ompdart_frontend::omp::MapType;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("ompdart-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir)
    }

    fn sample_plans() -> Vec<MappingPlan> {
        let mut plan = MappingPlan {
            function: "main".into(),
            ..Default::default()
        };
        plan.maps.push(MapSpec::new("a", MapType::ToFrom));
        vec![plan]
    }

    fn sample_keys() -> Vec<FunctionKeySnapshot> {
        vec![FunctionKeySnapshot {
            function: "main".into(),
            base_id: 3,
            base_pos: 14,
            snippet_len: 25,
            env_hash: 0x1111,
            callees_hash: 0x2222,
            refs_hash: 0x3333,
            options_hash: 0x4444,
            analyzed: true,
            has_plan: true,
            fallbacks: 1,
        }]
    }

    #[test]
    fn round_trip_hits_only_on_exact_key() {
        let store = temp_store("roundtrip");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats {
            map_clauses: 1,
            ..Default::default()
        };
        let plans = sample_plans();
        store
            .save(
                "demo.c",
                "int main() {}",
                &options,
                UNLINKED,
                &plans,
                &stats,
                &sample_keys(),
            )
            .unwrap();
        assert_eq!(store.entry_count(), 1);

        let hit = store.load("int main() {}", &options, UNLINKED).unwrap();
        assert_eq!(hit.plans, plans);
        assert_eq!(hit.stats, stats);
        assert_eq!(hit.functions, sample_keys());

        // Different source, options, or link fingerprint must miss.
        assert!(store.load("int main() { }", &options, UNLINKED).is_none());
        let other_options = OmpDartOptions {
            interprocedural: false,
            ..OmpDartOptions::default()
        };
        assert!(store
            .load("int main() {}", &other_options, UNLINKED)
            .is_none());
        assert!(store.load("int main() {}", &options, 0xdead_beef).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// The key is the *content*, not the name: a renamed or copied file
    /// hits the entry its previous name wrote, and saving identical
    /// content under a second name shares the entry instead of duplicating
    /// it.
    #[test]
    fn content_addressing_shares_entries_across_names() {
        let store = temp_store("content");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        store
            .save(
                "a.c",
                "void f() {}",
                &options,
                UNLINKED,
                &plans,
                &stats,
                &[],
            )
            .unwrap();
        // The "renamed file" does not even participate in the lookup —
        // only the content does.
        assert!(store.load("void f() {}", &options, UNLINKED).is_some());

        // A second unit with identical content shares the entry.
        store
            .save(
                "b.c",
                "void f() {}",
                &options,
                UNLINKED,
                &plans,
                &stats,
                &[],
            )
            .unwrap();
        assert_eq!(store.entry_count(), 1, "identical content must share");

        // Editing a.c prunes only its own previous entry (the shared one);
        // b.c's next save re-materializes it — a miss, never corruption.
        store
            .save(
                "a.c",
                "void f() { f(); }",
                &options,
                UNLINKED,
                &plans,
                &stats,
                &[],
            )
            .unwrap();
        assert_eq!(store.entry_count(), 1);
        assert!(store.load("void f() {}", &options, UNLINKED).is_none());
        assert!(store
            .load("void f() { f(); }", &options, UNLINKED)
            .is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_and_stale_entries_are_rejected() {
        let store = temp_store("corrupt");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let save = || {
            store
                .save(
                    "x.c",
                    "void f() {}",
                    &options,
                    UNLINKED,
                    &sample_plans(),
                    &stats,
                    &[],
                )
                .unwrap()
        };
        save();
        let path = store.entry_path("void f() {}", &options, UNLINKED);

        // Corrupt JSON: miss, not a panic or a bad deserialization.
        std::fs::write(&path, "{ not json").unwrap();
        assert!(store.load("void f() {}", &options, UNLINKED).is_none());

        // A valid document from a future store version: stale, rejected.
        save();
        let bumped = std::fs::read_to_string(&path).unwrap().replacen(
            "\"store_version\": 3",
            "\"store_version\": 99",
            1,
        );
        std::fs::write(&path, bumped).unwrap();
        assert!(store.load("void f() {}", &options, UNLINKED).is_none());

        // An entry whose key was tampered with (collision simulation).
        save();
        let tampered =
            std::fs::read_to_string(&path)
                .unwrap()
                .replacen("\"len\": 11", "\"len\": 12", 1);
        std::fs::write(&path, tampered).unwrap();
        assert!(store.load("void f() {}", &options, UNLINKED).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Store migration: a v2 `(name, source)`-keyed document — whether it
    /// sits at its legacy path or happens to collide with a v3 path —
    /// degrades cleanly to a miss, and the legacy files are pruned by the
    /// next save for the same unit name.
    #[test]
    fn v2_entries_degrade_to_miss_and_are_pruned() {
        let store = temp_store("migrate");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        let source = "void f() {}";

        // A v2-era document at its own four-field path: first field is the
        // *name* hash, which v3 never looks up — unreadable dead weight.
        let v2_path = store.dir().join(format!(
            "unit-{:016x}-{:016x}-{:016x}-{:016x}.json",
            content_hash("old.c", ""),
            content_hash("old.c", source),
            options.fingerprint(),
            UNLINKED,
        ));
        std::fs::create_dir_all(store.dir()).unwrap();
        std::fs::write(&v2_path, "{\"store_version\": 2}").unwrap();
        // ...and a pre-link three-field one.
        let v2_short = store.dir().join(format!(
            "unit-{:016x}-{:016x}-{:016x}.json",
            content_hash("old.c", ""),
            content_hash("old.c", source),
            options.fingerprint(),
        ));
        std::fs::write(&v2_short, "{}").unwrap();
        assert!(store.load(source, &options, UNLINKED).is_none());

        // Even a v2 document sitting exactly at the v3 path (simulated
        // collision) is rejected by its store_version.
        let v3_path = store.entry_path(source, &options, UNLINKED);
        std::fs::write(
            &v3_path,
            format!(
                "{{\"store_version\": 2, \"version\": 1, \"key\": {{\"name\": \"old.c\", \
                 \"len\": {}, \"fnv\": \"x\", \"fnv2\": \"x\"}}}}",
                source.len()
            ),
        )
        .unwrap();
        assert!(
            store.load(source, &options, UNLINKED).is_none(),
            "a v2 document must degrade to a miss, never be trusted"
        );

        // The first save for the same unit name sweeps the legacy files.
        store
            .save("old.c", source, &options, UNLINKED, &plans, &stats, &[])
            .unwrap();
        assert!(!v2_path.exists(), "v2 four-field entry must be pruned");
        assert!(!v2_short.exists(), "v2 three-field entry must be pruned");
        assert!(store.load(source, &options, UNLINKED).is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Different option sets sharing one cache dir coexist (distinct
    /// files), while superseded content of the same (unit, options) pair
    /// is pruned on write-back so disk is bounded by the unit count, not
    /// the save count.
    #[test]
    fn options_variants_coexist_and_superseded_versions_are_pruned() {
        let store = temp_store("prune");
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        let defaults = OmpDartOptions::default();
        let no_ip = OmpDartOptions {
            interprocedural: false,
            ..OmpDartOptions::default()
        };
        let save = |name: &str, src: &str, opts: &OmpDartOptions| {
            store
                .save(name, src, opts, UNLINKED, &plans, &stats, &[])
                .unwrap();
        };
        save("a.c", "v1", &defaults);
        save("a.c", "v1", &no_ip);
        assert_eq!(store.entry_count(), 2, "options variants must coexist");
        assert!(store.load("v1", &defaults, UNLINKED).is_some());
        assert!(store.load("v1", &no_ip, UNLINKED).is_some());

        // New content for the default options: the old default entry is
        // pruned, the other-options entry survives.
        save("a.c", "v2", &defaults);
        assert_eq!(store.entry_count(), 2);
        assert!(store.load("v1", &defaults, UNLINKED).is_none());
        assert!(store.load("v2", &defaults, UNLINKED).is_some());
        assert!(store.load("v1", &no_ip, UNLINKED).is_some());

        // Other units are untouched by pruning.
        save("b.c", "w1", &defaults);
        save("a.c", "v3", &defaults);
        assert_eq!(store.entry_count(), 3);
        assert!(store.load("w1", &defaults, UNLINKED).is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Entries for the same unit under different *link* surroundings
    /// coexist through write-backs (a unit analyzed stand-alone and inside
    /// a program shares one cache dir without thrashing), while superseded
    /// content under the *same* link is still pruned.
    #[test]
    fn link_variants_coexist_and_superseded_content_is_pruned() {
        let store = temp_store("linkprune");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        let linked = 0xabcd_u64;

        store
            .save("u.c", "v1", &options, UNLINKED, &plans, &stats, &[])
            .unwrap();
        store
            .save("u.c", "v1", &options, linked, &plans, &stats, &[])
            .unwrap();
        assert_eq!(store.entry_count(), 2, "link variants must coexist");
        assert!(store.load("v1", &options, UNLINKED).is_some());
        assert!(store.load("v1", &options, linked).is_some());

        // New content under one link prunes only that link's old entry.
        store
            .save("u.c", "v2", &options, linked, &plans, &stats, &[])
            .unwrap();
        assert_eq!(store.entry_count(), 2);
        assert!(store.load("v1", &options, UNLINKED).is_some());
        assert!(store.load("v1", &options, linked).is_none());
        assert!(store.load("v2", &options, linked).is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// `save_many` batches a whole program's write-backs: per-entry
    /// atomicity and ref-repointing match `save` (superseded content is
    /// pruned), with one legacy sweep and one gc pass for the batch.
    #[test]
    fn save_many_batches_and_prunes_like_save() {
        let store = temp_store("many");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        let batch = |srcs: &[(&str, &str)]| -> Vec<PendingUnitSave> {
            srcs.iter()
                .map(|(name, src)| PendingUnitSave {
                    name: name.to_string(),
                    source: src.to_string(),
                    link: UNLINKED,
                    plans: plans.clone(),
                    stats,
                    functions: Vec::new(),
                })
                .collect()
        };
        let paths = store
            .save_many(
                &options,
                &batch(&[("a.c", "s1"), ("b.c", "s2"), ("c.c", "s3")]),
            )
            .unwrap();
        assert_eq!(paths.len(), 3);
        assert_eq!(store.entry_count(), 3);
        for src in ["s1", "s2", "s3"] {
            assert!(store.load(src, &options, UNLINKED).is_some());
        }

        // A re-flush with one edited unit prunes only its superseded entry.
        store
            .save_many(
                &options,
                &batch(&[("a.c", "s1-edited"), ("b.c", "s2"), ("c.c", "s3")]),
            )
            .unwrap();
        assert_eq!(store.entry_count(), 3);
        assert!(store.load("s1", &options, UNLINKED).is_none());
        assert!(store.load("s1-edited", &options, UNLINKED).is_some());
        assert!(store.load("s2", &options, UNLINKED).is_some());

        // The empty batch is a no-op.
        assert!(store.save_many(&options, &[]).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// The batch flush enforces the size cap once, and never evicts an
    /// entry the batch itself just wrote — only older entries age out.
    #[test]
    fn save_many_gc_protects_the_whole_batch() {
        let dir =
            std::env::temp_dir().join(format!("ompdart-store-test-{}-manycap", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let probe = ArtifactStore::open(&dir);
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        probe
            .save("probe.c", "p", &options, UNLINKED, &plans, &stats, &[])
            .unwrap();
        let one = probe.total_bytes();
        let _ = probe.gc(0);

        // Room for roughly three entries; one old entry, then a batch of
        // three: the old entry is the only eviction candidate.
        let store = ArtifactStore::open(&dir).with_max_bytes(one * 3 + one / 2);
        store
            .save("old.c", "old", &options, UNLINKED, &plans, &stats, &[])
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let batch: Vec<PendingUnitSave> = [("n0.c", "n0"), ("n1.c", "n1"), ("n2.c", "n2")]
            .iter()
            .map(|(name, src)| PendingUnitSave {
                name: name.to_string(),
                source: src.to_string(),
                link: UNLINKED,
                plans: plans.clone(),
                stats,
                functions: Vec::new(),
            })
            .collect();
        store.save_many(&options, &batch).unwrap();
        for src in ["n0", "n1", "n2"] {
            assert!(
                store.load(src, &options, UNLINKED).is_some(),
                "batch member {src} must survive its own flush"
            );
        }
        assert!(
            store.load("old", &options, UNLINKED).is_none(),
            "the pre-existing entry must be the one evicted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sample_fn_key() -> FunctionPlanKey {
        FunctionPlanKey {
            snippet: "static void f(void) { }".into(),
            env_hash: 0xaaaa,
            callees_hash: 0xbbbb,
            refs_hash: 0,
            options_hash: 0xcccc,
        }
    }

    /// Function-level entries round-trip under the full plan key, reject
    /// any differing component (including a tampered snippet), and
    /// participate in the LRU gc accounting.
    #[test]
    fn function_entries_round_trip_and_verify_their_key() {
        let store = temp_store("fnentry");
        let key = sample_fn_key();
        let entry = StoredFunctionPlan {
            base_id: 7,
            base_pos: 120,
            analyzed: true,
            fallbacks: 2,
            plan: Some(sample_plans().remove(0)),
        };
        store.save_function(&key, &entry).unwrap();
        assert_eq!(store.function_entry_count(), 1);
        assert_eq!(
            store.entry_count(),
            0,
            "function entries are not unit entries"
        );
        let hit = store.load_function(&key).expect("exact key must hit");
        assert_eq!(hit.base_id, 7);
        assert_eq!(hit.base_pos, 120);
        assert!(hit.analyzed);
        assert_eq!(hit.fallbacks, 2);
        assert_eq!(hit.plan, entry.plan);

        // Any differing key component must miss.
        let mut other = sample_fn_key();
        other.env_hash ^= 1;
        assert!(store.load_function(&other).is_none());
        let mut other = sample_fn_key();
        other.callees_hash ^= 1;
        assert!(store.load_function(&other).is_none());
        let mut other = sample_fn_key();
        other.snippet.push(' ');
        assert!(store.load_function(&other).is_none());

        // A tampered snippet (index-collision simulation) is rejected by
        // the byte-for-byte verification.
        let path = store.function_entry_path(&key);
        let tampered = std::fs::read_to_string(&path).unwrap().replacen(
            "static void f(void) { }",
            "static void g(void) { }",
            1,
        );
        std::fs::write(&path, tampered).unwrap();
        assert!(store.load_function(&key).is_none());

        // Entries without a plan round-trip too.
        let planless = StoredFunctionPlan {
            base_id: 1,
            base_pos: 0,
            analyzed: false,
            fallbacks: 0,
            plan: None,
        };
        store.save_function(&key, &planless).unwrap();
        let hit = store.load_function(&key).unwrap();
        assert!(hit.plan.is_none());
        assert!(!hit.analyzed);

        // Function entries are part of the gc accounting.
        assert!(store.total_bytes() > 0);
        let report = store.gc(0);
        assert!(report.entries_evicted >= 1);
        assert_eq!(store.function_entry_count(), 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_directory_degrades_to_miss() {
        let store = ArtifactStore::open("/nonexistent/ompdart-store");
        assert!(store
            .load("int x;", &OmpDartOptions::default(), UNLINKED)
            .is_none());
        assert!(store.is_empty());
        assert_eq!(store.gc(0), GcReport::default());
    }

    /// LRU gc evicts oldest entries first and never the protected (just
    /// written) one; the explicit `gc` entry point reports its work.
    #[test]
    fn gc_evicts_least_recently_used_first() {
        let store = temp_store("gc");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        for (name, src) in [("a.c", "s1"), ("b.c", "s2"), ("c.c", "s3")] {
            store
                .save(name, src, &options, UNLINKED, &plans, &stats, &[])
                .unwrap();
            // Distinct mtimes even on coarse-grained filesystems.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(store.entry_count(), 3);
        let total = store.total_bytes();
        let one = total / 3;

        // Touch a.c (the oldest) via a load hit: b.c becomes the LRU.
        assert!(store.load("s1", &options, UNLINKED).is_some());
        std::thread::sleep(std::time::Duration::from_millis(20));

        let report = store.gc(total - one);
        assert_eq!(report.entries_before, 3);
        assert!(report.entries_evicted >= 1);
        assert!(report.bytes_kept <= total - one);
        assert!(
            store.load("s1", &options, UNLINKED).is_some(),
            "recently-used entry must survive"
        );
        assert!(
            store.load("s2", &options, UNLINKED).is_none(),
            "least-recently-used entry must be evicted"
        );

        // gc(0) clears everything.
        let report = store.gc(0);
        assert_eq!(report.bytes_kept, 0);
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// A capped store stays under its limit on every save, and the entry
    /// being written is never the one evicted.
    #[test]
    fn size_cap_is_enforced_on_save() {
        let dir =
            std::env::temp_dir().join(format!("ompdart-store-test-{}-cap", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let probe = ArtifactStore::open(&dir);
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        probe
            .save("probe.c", "p", &options, UNLINKED, &plans, &stats, &[])
            .unwrap();
        let one = probe.total_bytes();
        let _ = probe.gc(0);

        // Room for roughly two entries.
        let store = ArtifactStore::open(&dir).with_max_bytes(one * 2 + one / 2);
        for (i, name) in ["u0.c", "u1.c", "u2.c", "u3.c"].iter().enumerate() {
            store
                .save(
                    name,
                    &format!("src{i}"),
                    &options,
                    UNLINKED,
                    &plans,
                    &stats,
                    &[],
                )
                .unwrap();
            assert!(
                store.total_bytes() <= one * 2 + one / 2,
                "cap exceeded after saving {name}"
            );
            // The freshly written entry always survives its own save.
            assert!(store.load(&format!("src{i}"), &options, UNLINKED).is_some());
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(store.entry_count() <= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
