//! Persistent on-disk artifact store: warm starts across process restarts.
//!
//! The store keeps one JSON document per analyzed translation unit, keyed by
//! the content of `(file name, source text)` plus the analysis options and
//! — for units analyzed as part of a linked whole program — the fingerprint
//! of the interfaces the unit *imports* from the rest of the program.
//! Documents reuse the versioned plan JSON of [`crate::plan::json`] and add
//! a *full verification key*: besides the primary FNV-1a content hash
//! (which also names the file on disk), every entry records the unit name,
//! the source length, an independent second content hash, the
//! [`OmpDartOptions`] fingerprint, and the link fingerprint. A lookup only
//! hits when every component matches — a corrupt file, a hash collision, a
//! stale entry from an older format version, or an entry produced under
//! different options or link surroundings is silently treated as a miss
//! and overwritten on the next write-back, never trusted.
//!
//! The link fingerprint is what makes store invalidation *interface
//! granular* across files: editing one unit changes its own content key
//! (its entry misses and is re-planned), but other units' entries keep
//! hitting unless the edited unit's **exported interface** changed — only
//! then does their imported-interface fingerprint move.
//!
//! Besides the plans, each entry persists the per-function plan-cache key
//! snapshots ([`FunctionKeySnapshot`]), so a warm-started session re-seeds
//! its in-memory function-granular cache from a store hit and the *first
//! edit* after a restart already re-plans only the edited function.
//!
//! The store is deliberately plan-granular: plans are the expensive artifact
//! (the data-flow analysis), while parsing and rewriting are cheap and must
//! re-run anyway to rebuild spans and node ids for the current source.
//! Because parsing is deterministic, node ids serialized in a stored plan
//! line up with a fresh parse of the identical source, which is what makes
//! a store-served rewrite byte-identical to a cold one (the same property
//! the plan-JSON golden tests pin).
//!
//! Disk growth is bounded two ways: superseded content of the same
//! `(unit, options)` pair is pruned on every write-back, and an optional
//! size cap ([`ArtifactStore::with_max_bytes`], surfaced as `ompdart cache
//! gc`) evicts least-recently-used entries. Eviction never touches the
//! entry being written and removes files one atomic unlink at a time, so a
//! concurrent reader sees either a full entry or a miss, never a torn one.

use crate::pipeline::{content_hash, content_hash2, FunctionKeySnapshot};
use crate::plan::ir::{AnalysisStats, MappingPlan, PLAN_FORMAT_VERSION};
use crate::plan::json::{stats_from_json, stats_to_json, Json};
use crate::OmpDartOptions;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Version of the on-disk store envelope. Bumped whenever the document
/// layout around the embedded plan JSON changes; entries written by any
/// other version are rejected as stale.
pub const STORE_FORMAT_VERSION: u32 = 2;

/// A directory-backed store of per-unit planning artifacts.
///
/// Opening a store never fails: the directory is created lazily on the
/// first write, and every read error (missing directory, unreadable file,
/// corrupt JSON) degrades to a cache miss.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    /// When set, every write-back enforces this LRU size cap.
    max_bytes: Option<u64>,
}

/// One unit's stored planning artifacts, as returned by
/// [`ArtifactStore::load`].
#[derive(Clone, Debug)]
pub struct StoredUnit {
    /// The per-function mapping plans, in source order.
    pub plans: Vec<MappingPlan>,
    /// The aggregate statistics recorded when the plans were produced.
    pub stats: AnalysisStats,
    /// Per-function plan-cache key snapshots (source order), used to
    /// re-seed the in-memory function-plan cache on a hit.
    pub functions: Vec<FunctionKeySnapshot>,
}

/// What one garbage-collection pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries present before the pass.
    pub entries_before: usize,
    /// Entries evicted (least-recently-used first).
    pub entries_evicted: usize,
    /// Bytes freed by eviction.
    pub bytes_freed: u64,
    /// Bytes still stored after the pass.
    pub bytes_kept: u64,
}

impl ArtifactStore {
    /// A store rooted at `dir`. The directory is created on first write.
    pub fn open(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore {
            dir: dir.into(),
            max_bytes: None,
        }
    }

    /// Enforce an LRU size cap: after every write-back, least-recently-used
    /// entries are evicted until the store fits in `max_bytes`. The entry
    /// just written is never evicted.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> ArtifactStore {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// The configured size cap, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path an entry for `(name, source)` under `options` and
    /// `link` lives at. The file name carries four hashes — the unit name
    /// alone, the full content, the options fingerprint, and the link
    /// fingerprint — so (a) sessions with different options or link
    /// surroundings sharing one `cache_dir` coexist instead of overwriting
    /// each other, and (b) superseded content versions of the same unit are
    /// identifiable (and pruned) by their shared name/options fields.
    /// Colliding hashes share a path but are disambiguated by the in-file
    /// verification key.
    pub fn entry_path(
        &self,
        name: &str,
        source: &str,
        options: &OmpDartOptions,
        link: u64,
    ) -> PathBuf {
        self.dir.join(format!(
            "unit-{:016x}-{:016x}-{:016x}-{:016x}.json",
            content_hash(name, ""),
            content_hash(name, source),
            options.fingerprint(),
            link,
        ))
    }

    fn entry_files(&self) -> Vec<PathBuf> {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("unit-") && n.ends_with(".json"))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of entries currently on disk (diagnostics and tests).
    pub fn entry_count(&self) -> usize {
        self.entry_files().len()
    }

    /// Total size in bytes of all entries currently on disk.
    pub fn total_bytes(&self) -> u64 {
        self.entry_files()
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }

    /// Look up the stored plans for `(name, source)` under `options` and
    /// `link`. Returns `None` unless the entry exists, parses, carries the
    /// expected versions, and its full key — name, source length, both
    /// content hashes, the options fingerprint, and the link fingerprint —
    /// matches exactly. A hit refreshes the entry's modification time
    /// (best effort) so LRU eviction sees it as recently used.
    pub fn load(
        &self,
        name: &str,
        source: &str,
        options: &OmpDartOptions,
        link: u64,
    ) -> Option<StoredUnit> {
        let path = self.entry_path(name, source, options, link);
        let text = std::fs::read_to_string(&path).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("store_version").and_then(Json::as_int) != Some(i64::from(STORE_FORMAT_VERSION))
            || doc.get("version").and_then(Json::as_int) != Some(i64::from(PLAN_FORMAT_VERSION))
        {
            return None;
        }
        let key = doc.get("key")?;
        let matches = key.get("name").and_then(Json::as_str) == Some(name)
            && key.get("len").and_then(Json::as_int) == Some(source.len() as i64)
            && key.get("fnv").and_then(Json::as_str)
                == Some(format!("{:016x}", content_hash(name, source)).as_str())
            && key.get("fnv2").and_then(Json::as_str)
                == Some(format!("{:016x}", content_hash2(name, source)).as_str())
            && doc.get("options").and_then(Json::as_str)
                == Some(format!("{:016x}", options.fingerprint()).as_str())
            && doc.get("link").and_then(Json::as_str) == Some(format!("{link:016x}").as_str());
        if !matches {
            return None;
        }
        let plans = doc
            .get("plans")
            .and_then(Json::as_array)?
            .iter()
            .map(MappingPlan::from_json_value)
            .collect::<Result<Vec<_>, _>>()
            .ok()?;
        let stats = stats_from_json(doc.get("stats")?).ok()?;
        let functions = doc
            .get("functions")
            .and_then(Json::as_array)?
            .iter()
            .map(function_key_from_json)
            .collect::<Option<Vec<_>>>()?;
        // LRU touch: a hit makes the entry "recently used". Best effort —
        // read-only stores simply age out faster.
        if let Ok(file) = std::fs::OpenOptions::new().write(true).open(&path) {
            let _ = file.set_modified(SystemTime::now());
        }
        Some(StoredUnit {
            plans,
            stats,
            functions,
        })
    }

    /// Write back the plans for `(name, source)` produced under `options`
    /// and `link`. The write is atomic (temp file + rename) so concurrent
    /// writers and crashed processes never leave a torn entry behind.
    /// Entries for *superseded* content of the same unit under the same
    /// options and link surroundings are pruned afterwards, so a long
    /// editing session leaves one file per (unit, options, link) on disk —
    /// not one per save. When a
    /// size cap is configured, least-recently-used entries are then evicted
    /// until the store fits, never including the entry just written.
    #[allow(clippy::too_many_arguments)]
    pub fn save(
        &self,
        name: &str,
        source: &str,
        options: &OmpDartOptions,
        link: u64,
        plans: &[MappingPlan],
        stats: &AnalysisStats,
        functions: &[FunctionKeySnapshot],
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let doc = Json::Object(vec![
            (
                "store_version".into(),
                Json::Int(i64::from(STORE_FORMAT_VERSION)),
            ),
            ("version".into(), Json::Int(i64::from(PLAN_FORMAT_VERSION))),
            (
                "key".into(),
                Json::Object(vec![
                    ("name".into(), Json::Str(name.to_string())),
                    ("len".into(), Json::Int(source.len() as i64)),
                    (
                        "fnv".into(),
                        Json::Str(format!("{:016x}", content_hash(name, source))),
                    ),
                    (
                        "fnv2".into(),
                        Json::Str(format!("{:016x}", content_hash2(name, source))),
                    ),
                ]),
            ),
            (
                "options".into(),
                Json::Str(format!("{:016x}", options.fingerprint())),
            ),
            ("link".into(), Json::Str(format!("{link:016x}"))),
            ("stats".into(), stats_to_json(stats)),
            (
                "functions".into(),
                Json::Array(functions.iter().map(function_key_to_json).collect()),
            ),
            (
                "plans".into(),
                Json::Array(plans.iter().map(MappingPlan::to_json_value).collect()),
            ),
        ]);
        let path = self.entry_path(name, source, options, link);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc.render_pretty())?;
        std::fs::rename(&tmp, &path)?;
        self.prune_superseded(name, options, link, &path);
        if let Some(max) = self.max_bytes {
            let _ = self.gc_protecting(max, Some(&path));
        }
        Ok(path)
    }

    /// Evict least-recently-used entries until the store's total size fits
    /// in `max_bytes`. Returns what the pass did. Entries are removed one
    /// atomic unlink at a time; in-flight temp files are never touched.
    pub fn gc(&self, max_bytes: u64) -> GcReport {
        self.gc_protecting(max_bytes, None)
    }

    fn gc_protecting(&self, max_bytes: u64, protect: Option<&Path>) -> GcReport {
        let mut entries: Vec<(PathBuf, SystemTime, u64)> = self
            .entry_files()
            .into_iter()
            .filter_map(|p| {
                let meta = std::fs::metadata(&p).ok()?;
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                Some((p, mtime, meta.len()))
            })
            .collect();
        let mut report = GcReport {
            entries_before: entries.len(),
            ..Default::default()
        };
        let mut total: u64 = entries.iter().map(|(_, _, len)| *len).sum();
        // Oldest first; ties broken by path for determinism.
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        for (path, _, len) in entries {
            if total <= max_bytes {
                break;
            }
            if protect.is_some_and(|keep| keep == path) {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                report.entries_evicted += 1;
                report.bytes_freed += len;
            }
        }
        report.bytes_kept = total;
        report
    }

    /// Best-effort removal of entries superseded by a fresh write:
    /// everything sharing the fresh entry's name, options, *and link*
    /// fields except the fresh entry itself. Entries under other link
    /// surroundings (or other options) coexist — the same unit analyzed
    /// both stand-alone and inside a program keeps both entries; size
    /// growth across *changing* link surroundings is the LRU cap's job.
    /// Legacy three-field (pre-link) entry names can never be loaded by
    /// this version, so any of them matching the name+options pair is
    /// removed as well.
    fn prune_superseded(&self, name: &str, options: &OmpDartOptions, link: u64, keep: &Path) {
        let name_hash = format!("{:016x}", content_hash(name, ""));
        let options_hash = format!("{:016x}", options.fingerprint());
        let link_hash = format!("{link:016x}");
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path == keep {
                continue;
            }
            let stale = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_entry_name)
                .is_some_and(|fields| match fields {
                    EntryName::Linked([n, _, o, l]) => {
                        n == name_hash && o == options_hash && l == link_hash
                    }
                    EntryName::Legacy([n, _, o]) => n == name_hash && o == options_hash,
                });
            if stale {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

/// A parsed store-entry file name: the current four-field layout or the
/// legacy pre-link three-field one (unloadable, kept only so pruning can
/// clean it up after an upgrade).
enum EntryName<'a> {
    Linked([&'a str; 4]),
    Legacy([&'a str; 3]),
}

/// Split `unit-<name>-<content>-<options>[-<link>].json` into its hash
/// fields; `None` for anything that is not a store entry.
fn parse_entry_name(file_name: &str) -> Option<EntryName<'_>> {
    let body = file_name.strip_prefix("unit-")?.strip_suffix(".json")?;
    let fields: Vec<&str> = body.split('-').collect();
    if fields.iter().any(|f| f.len() != 16) {
        return None;
    }
    match fields.as_slice() {
        [a, b, c, d] => Some(EntryName::Linked([a, b, c, d])),
        [a, b, c] => Some(EntryName::Legacy([a, b, c])),
        _ => None,
    }
}

fn hex_u64(value: Option<&Json>) -> Option<u64> {
    value
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
}

fn function_key_to_json(key: &FunctionKeySnapshot) -> Json {
    Json::Object(vec![
        ("function".into(), Json::Str(key.function.clone())),
        ("base_id".into(), Json::Int(i64::from(key.base_id))),
        ("base_pos".into(), Json::Int(i64::from(key.base_pos))),
        ("snippet_len".into(), Json::Int(i64::from(key.snippet_len))),
        ("env".into(), Json::Str(format!("{:016x}", key.env_hash))),
        (
            "callees".into(),
            Json::Str(format!("{:016x}", key.callees_hash)),
        ),
        ("refs".into(), Json::Str(format!("{:016x}", key.refs_hash))),
        (
            "options".into(),
            Json::Str(format!("{:016x}", key.options_hash)),
        ),
        ("analyzed".into(), Json::Bool(key.analyzed)),
        ("has_plan".into(), Json::Bool(key.has_plan)),
        ("fallbacks".into(), Json::Int(key.fallbacks as i64)),
    ])
}

fn function_key_from_json(value: &Json) -> Option<FunctionKeySnapshot> {
    let int_u32 = |k: &str| -> Option<u32> {
        value
            .get(k)
            .and_then(Json::as_int)
            .and_then(|n| u32::try_from(n).ok())
    };
    Some(FunctionKeySnapshot {
        function: value.get("function").and_then(Json::as_str)?.to_string(),
        base_id: int_u32("base_id")?,
        base_pos: int_u32("base_pos")?,
        snippet_len: int_u32("snippet_len")?,
        env_hash: hex_u64(value.get("env"))?,
        callees_hash: hex_u64(value.get("callees"))?,
        refs_hash: hex_u64(value.get("refs"))?,
        options_hash: hex_u64(value.get("options"))?,
        analyzed: value.get("analyzed").and_then(Json::as_bool)?,
        has_plan: value.get("has_plan").and_then(Json::as_bool)?,
        fallbacks: value
            .get("fallbacks")
            .and_then(Json::as_int)
            .and_then(|n| u64::try_from(n).ok())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ir::MapSpec;
    use crate::program::UNLINKED;
    use ompdart_frontend::omp::MapType;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("ompdart-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir)
    }

    fn sample_plans() -> Vec<MappingPlan> {
        let mut plan = MappingPlan {
            function: "main".into(),
            ..Default::default()
        };
        plan.maps.push(MapSpec::new("a", MapType::ToFrom));
        vec![plan]
    }

    fn sample_keys() -> Vec<FunctionKeySnapshot> {
        vec![FunctionKeySnapshot {
            function: "main".into(),
            base_id: 3,
            base_pos: 14,
            snippet_len: 25,
            env_hash: 0x1111,
            callees_hash: 0x2222,
            refs_hash: 0x3333,
            options_hash: 0x4444,
            analyzed: true,
            has_plan: true,
            fallbacks: 1,
        }]
    }

    #[test]
    fn round_trip_hits_only_on_exact_key() {
        let store = temp_store("roundtrip");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats {
            map_clauses: 1,
            ..Default::default()
        };
        let plans = sample_plans();
        store
            .save(
                "demo.c",
                "int main() {}",
                &options,
                UNLINKED,
                &plans,
                &stats,
                &sample_keys(),
            )
            .unwrap();
        assert_eq!(store.entry_count(), 1);

        let hit = store
            .load("demo.c", "int main() {}", &options, UNLINKED)
            .unwrap();
        assert_eq!(hit.plans, plans);
        assert_eq!(hit.stats, stats);
        assert_eq!(hit.functions, sample_keys());

        // Different source, name, options, or link fingerprint must miss.
        assert!(store
            .load("demo.c", "int main() { }", &options, UNLINKED)
            .is_none());
        assert!(store
            .load("other.c", "int main() {}", &options, UNLINKED)
            .is_none());
        let other_options = OmpDartOptions {
            interprocedural: false,
            ..OmpDartOptions::default()
        };
        assert!(store
            .load("demo.c", "int main() {}", &other_options, UNLINKED)
            .is_none());
        assert!(store
            .load("demo.c", "int main() {}", &options, 0xdead_beef)
            .is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_and_stale_entries_are_rejected() {
        let store = temp_store("corrupt");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let save = || {
            store
                .save(
                    "x.c",
                    "void f() {}",
                    &options,
                    UNLINKED,
                    &sample_plans(),
                    &stats,
                    &[],
                )
                .unwrap()
        };
        save();
        let path = store.entry_path("x.c", "void f() {}", &options, UNLINKED);

        // Corrupt JSON: miss, not a panic or a bad deserialization.
        std::fs::write(&path, "{ not json").unwrap();
        assert!(store
            .load("x.c", "void f() {}", &options, UNLINKED)
            .is_none());

        // A valid document from a future store version: stale, rejected.
        save();
        let bumped = std::fs::read_to_string(&path).unwrap().replacen(
            "\"store_version\": 2",
            "\"store_version\": 99",
            1,
        );
        std::fs::write(&path, bumped).unwrap();
        assert!(store
            .load("x.c", "void f() {}", &options, UNLINKED)
            .is_none());

        // An entry whose key was tampered with (collision simulation).
        save();
        let tampered = std::fs::read_to_string(&path).unwrap().replacen(
            "\"name\": \"x.c\"",
            "\"name\": \"y.c\"",
            1,
        );
        std::fs::write(&path, tampered).unwrap();
        assert!(store
            .load("x.c", "void f() {}", &options, UNLINKED)
            .is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Different option sets sharing one cache dir coexist (distinct
    /// files), while superseded content of the same (unit, options) pair
    /// is pruned on write-back so disk is bounded by the unit count, not
    /// the save count.
    #[test]
    fn options_variants_coexist_and_superseded_versions_are_pruned() {
        let store = temp_store("prune");
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        let defaults = OmpDartOptions::default();
        let no_ip = OmpDartOptions {
            interprocedural: false,
            ..OmpDartOptions::default()
        };
        let save = |name: &str, src: &str, opts: &OmpDartOptions| {
            store
                .save(name, src, opts, UNLINKED, &plans, &stats, &[])
                .unwrap();
        };
        save("a.c", "v1", &defaults);
        save("a.c", "v1", &no_ip);
        assert_eq!(store.entry_count(), 2, "options variants must coexist");
        assert!(store.load("a.c", "v1", &defaults, UNLINKED).is_some());
        assert!(store.load("a.c", "v1", &no_ip, UNLINKED).is_some());

        // New content for the default options: the old default entry is
        // pruned, the other-options entry survives.
        save("a.c", "v2", &defaults);
        assert_eq!(store.entry_count(), 2);
        assert!(store.load("a.c", "v1", &defaults, UNLINKED).is_none());
        assert!(store.load("a.c", "v2", &defaults, UNLINKED).is_some());
        assert!(store.load("a.c", "v1", &no_ip, UNLINKED).is_some());

        // Other units are untouched by pruning.
        save("b.c", "v1", &defaults);
        save("a.c", "v3", &defaults);
        assert_eq!(store.entry_count(), 3);
        assert!(store.load("b.c", "v1", &defaults, UNLINKED).is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Entries for the same unit under different *link* surroundings
    /// coexist through write-backs (a unit analyzed stand-alone and inside
    /// a program shares one cache dir without thrashing), while superseded
    /// content under the *same* link is still pruned — and unloadable
    /// legacy three-field entries are cleaned up by the first save.
    #[test]
    fn link_variants_coexist_and_legacy_entries_are_pruned() {
        let store = temp_store("linkprune");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        let linked = 0xabcd_u64;

        store
            .save("u.c", "v1", &options, UNLINKED, &plans, &stats, &[])
            .unwrap();
        store
            .save("u.c", "v1", &options, linked, &plans, &stats, &[])
            .unwrap();
        assert_eq!(store.entry_count(), 2, "link variants must coexist");
        assert!(store.load("u.c", "v1", &options, UNLINKED).is_some());
        assert!(store.load("u.c", "v1", &options, linked).is_some());

        // New content under one link prunes only that link's old entry.
        store
            .save("u.c", "v2", &options, linked, &plans, &stats, &[])
            .unwrap();
        assert_eq!(store.entry_count(), 2);
        assert!(store.load("u.c", "v1", &options, UNLINKED).is_some());
        assert!(store.load("u.c", "v1", &options, linked).is_none());
        assert!(store.load("u.c", "v2", &options, linked).is_some());

        // A legacy pre-link entry (three hash fields) for the same unit and
        // options is unloadable dead weight: the next save removes it.
        let legacy = store.dir().join(format!(
            "unit-{:016x}-{:016x}-{:016x}.json",
            crate::pipeline::content_hash("u.c", ""),
            0x1111_u64,
            options.fingerprint(),
        ));
        std::fs::write(&legacy, "{}").unwrap();
        store
            .save("u.c", "v3", &options, UNLINKED, &plans, &stats, &[])
            .unwrap();
        assert!(!legacy.exists(), "legacy entry must be pruned on save");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_directory_degrades_to_miss() {
        let store = ArtifactStore::open("/nonexistent/ompdart-store");
        assert!(store
            .load("a.c", "int x;", &OmpDartOptions::default(), UNLINKED)
            .is_none());
        assert!(store.is_empty());
        assert_eq!(store.gc(0), GcReport::default());
    }

    /// LRU gc evicts oldest entries first and never the protected (just
    /// written) one; the explicit `gc` entry point reports its work.
    #[test]
    fn gc_evicts_least_recently_used_first() {
        let store = temp_store("gc");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        for (name, src) in [("a.c", "s1"), ("b.c", "s2"), ("c.c", "s3")] {
            store
                .save(name, src, &options, UNLINKED, &plans, &stats, &[])
                .unwrap();
            // Distinct mtimes even on coarse-grained filesystems.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(store.entry_count(), 3);
        let total = store.total_bytes();
        let one = total / 3;

        // Touch a.c (the oldest) via a load hit: b.c becomes the LRU.
        assert!(store.load("a.c", "s1", &options, UNLINKED).is_some());
        std::thread::sleep(std::time::Duration::from_millis(20));

        let report = store.gc(total - one);
        assert_eq!(report.entries_before, 3);
        assert!(report.entries_evicted >= 1);
        assert!(report.bytes_kept <= total - one);
        assert!(
            store.load("a.c", "s1", &options, UNLINKED).is_some(),
            "recently-used entry must survive"
        );
        assert!(
            store.load("b.c", "s2", &options, UNLINKED).is_none(),
            "least-recently-used entry must be evicted"
        );

        // gc(0) clears everything.
        let report = store.gc(0);
        assert_eq!(report.bytes_kept, 0);
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// A capped store stays under its limit on every save, and the entry
    /// being written is never the one evicted.
    #[test]
    fn size_cap_is_enforced_on_save() {
        let dir =
            std::env::temp_dir().join(format!("ompdart-store-test-{}-cap", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let probe = ArtifactStore::open(&dir);
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        probe
            .save("probe.c", "p", &options, UNLINKED, &plans, &stats, &[])
            .unwrap();
        let one = probe.total_bytes();
        let _ = probe.gc(0);

        // Room for roughly two entries.
        let store = ArtifactStore::open(&dir).with_max_bytes(one * 2 + one / 2);
        for (i, name) in ["u0.c", "u1.c", "u2.c", "u3.c"].iter().enumerate() {
            store
                .save(
                    name,
                    &format!("src{i}"),
                    &options,
                    UNLINKED,
                    &plans,
                    &stats,
                    &[],
                )
                .unwrap();
            assert!(
                store.total_bytes() <= one * 2 + one / 2,
                "cap exceeded after saving {name}"
            );
            // The freshly written entry always survives its own save.
            assert!(store
                .load(name, &format!("src{i}"), &options, UNLINKED)
                .is_some());
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(store.entry_count() <= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
