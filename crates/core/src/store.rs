//! Persistent on-disk artifact store: warm starts across process restarts.
//!
//! The store keeps one JSON document per analyzed translation unit, keyed by
//! the content of `(file name, source text)`. Documents reuse the versioned
//! plan JSON of [`crate::plan::json`] and add a *full verification key*:
//! besides the primary FNV-1a content hash (which also names the file on
//! disk), every entry records the unit name, the source length, an
//! independent second content hash, and the fingerprint of the
//! [`OmpDartOptions`] that produced the plans. A lookup only hits when every
//! component matches — a corrupt file, a hash collision, a stale entry from
//! an older format version, or an entry produced under different options is
//! silently treated as a miss and overwritten on the next write-back, never
//! trusted.
//!
//! The store is deliberately plan-granular: plans are the expensive artifact
//! (the data-flow analysis), while parsing and rewriting are cheap and must
//! re-run anyway to rebuild spans and node ids for the current source.
//! Because parsing is deterministic, node ids serialized in a stored plan
//! line up with a fresh parse of the identical source, which is what makes
//! a store-served rewrite byte-identical to a cold one (the same property
//! the plan-JSON golden tests pin).

use crate::pipeline::{content_hash, content_hash2};
use crate::plan::ir::{AnalysisStats, MappingPlan, PLAN_FORMAT_VERSION};
use crate::plan::json::{stats_from_json, stats_to_json, Json};
use crate::OmpDartOptions;
use std::path::{Path, PathBuf};

/// Version of the on-disk store envelope. Bumped whenever the document
/// layout around the embedded plan JSON changes; entries written by any
/// other version are rejected as stale.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// A directory-backed store of per-unit planning artifacts.
///
/// Opening a store never fails: the directory is created lazily on the
/// first write, and every read error (missing directory, unreadable file,
/// corrupt JSON) degrades to a cache miss.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
}

/// One unit's stored planning artifacts, as returned by
/// [`ArtifactStore::load`].
#[derive(Clone, Debug)]
pub struct StoredUnit {
    /// The per-function mapping plans, in source order.
    pub plans: Vec<MappingPlan>,
    /// The aggregate statistics recorded when the plans were produced.
    pub stats: AnalysisStats,
}

impl ArtifactStore {
    /// A store rooted at `dir`. The directory is created on first write.
    pub fn open(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore { dir: dir.into() }
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path an entry for `(name, source)` under `options`
    /// lives at. The file name carries three hashes — the unit name alone,
    /// the full content, and the options fingerprint — so (a) sessions
    /// with different options sharing one `cache_dir` coexist instead of
    /// overwriting each other, and (b) superseded content versions of the
    /// same unit are identifiable (and pruned) by their shared name/options
    /// prefix. Colliding hashes share a path but are disambiguated by the
    /// in-file verification key.
    pub fn entry_path(&self, name: &str, source: &str, options: &OmpDartOptions) -> PathBuf {
        self.dir.join(format!(
            "unit-{:016x}-{:016x}-{:016x}.json",
            content_hash(name, ""),
            content_hash(name, source),
            options.fingerprint()
        ))
    }

    /// Number of entries currently on disk (diagnostics and tests).
    pub fn entry_count(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| {
                        e.file_name()
                            .to_str()
                            .is_some_and(|n| n.starts_with("unit-") && n.ends_with(".json"))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }

    /// Look up the stored plans for `(name, source)` under `options`.
    /// Returns `None` unless the entry exists, parses, carries the expected
    /// versions, and its full key — name, source length, both content
    /// hashes, and the options fingerprint — matches exactly.
    pub fn load(&self, name: &str, source: &str, options: &OmpDartOptions) -> Option<StoredUnit> {
        let text = std::fs::read_to_string(self.entry_path(name, source, options)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("store_version").and_then(Json::as_int) != Some(i64::from(STORE_FORMAT_VERSION))
            || doc.get("version").and_then(Json::as_int) != Some(i64::from(PLAN_FORMAT_VERSION))
        {
            return None;
        }
        let key = doc.get("key")?;
        let matches = key.get("name").and_then(Json::as_str) == Some(name)
            && key.get("len").and_then(Json::as_int) == Some(source.len() as i64)
            && key.get("fnv").and_then(Json::as_str)
                == Some(format!("{:016x}", content_hash(name, source)).as_str())
            && key.get("fnv2").and_then(Json::as_str)
                == Some(format!("{:016x}", content_hash2(name, source)).as_str())
            && doc.get("options").and_then(Json::as_str)
                == Some(format!("{:016x}", options.fingerprint()).as_str());
        if !matches {
            return None;
        }
        let plans = doc
            .get("plans")
            .and_then(Json::as_array)?
            .iter()
            .map(MappingPlan::from_json_value)
            .collect::<Result<Vec<_>, _>>()
            .ok()?;
        let stats = stats_from_json(doc.get("stats")?).ok()?;
        Some(StoredUnit { plans, stats })
    }

    /// Write back the plans for `(name, source)` produced under `options`.
    /// The write is atomic (temp file + rename) so concurrent writers and
    /// crashed processes never leave a torn entry behind. Entries for
    /// *superseded* content of the same unit under the same options are
    /// pruned afterwards, so a long editing session leaves one file per
    /// (unit, options) on disk — not one per save.
    pub fn save(
        &self,
        name: &str,
        source: &str,
        options: &OmpDartOptions,
        plans: &[MappingPlan],
        stats: &AnalysisStats,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let doc = Json::Object(vec![
            (
                "store_version".into(),
                Json::Int(i64::from(STORE_FORMAT_VERSION)),
            ),
            ("version".into(), Json::Int(i64::from(PLAN_FORMAT_VERSION))),
            (
                "key".into(),
                Json::Object(vec![
                    ("name".into(), Json::Str(name.to_string())),
                    ("len".into(), Json::Int(source.len() as i64)),
                    (
                        "fnv".into(),
                        Json::Str(format!("{:016x}", content_hash(name, source))),
                    ),
                    (
                        "fnv2".into(),
                        Json::Str(format!("{:016x}", content_hash2(name, source))),
                    ),
                ]),
            ),
            (
                "options".into(),
                Json::Str(format!("{:016x}", options.fingerprint())),
            ),
            ("stats".into(), stats_to_json(stats)),
            (
                "plans".into(),
                Json::Array(plans.iter().map(MappingPlan::to_json_value).collect()),
            ),
        ]);
        let path = self.entry_path(name, source, options);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, doc.render_pretty())?;
        std::fs::rename(&tmp, &path)?;
        self.prune_superseded(name, options, &path);
        Ok(path)
    }

    /// Best-effort removal of entries for older content of `(name,
    /// options)`: everything sharing the fresh entry's name/options hash
    /// pair except the fresh entry itself.
    fn prune_superseded(&self, name: &str, options: &OmpDartOptions, keep: &Path) {
        let prefix = format!("unit-{:016x}-", content_hash(name, ""));
        let suffix = format!("-{:016x}.json", options.fingerprint());
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path == keep {
                continue;
            }
            let stale = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(&suffix));
            if stale {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ir::MapSpec;
    use ompdart_frontend::omp::MapType;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("ompdart-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir)
    }

    fn sample_plans() -> Vec<MappingPlan> {
        let mut plan = MappingPlan {
            function: "main".into(),
            ..Default::default()
        };
        plan.maps.push(MapSpec::new("a", MapType::ToFrom));
        vec![plan]
    }

    #[test]
    fn round_trip_hits_only_on_exact_key() {
        let store = temp_store("roundtrip");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats {
            map_clauses: 1,
            ..Default::default()
        };
        let plans = sample_plans();
        store
            .save("demo.c", "int main() {}", &options, &plans, &stats)
            .unwrap();
        assert_eq!(store.entry_count(), 1);

        let hit = store.load("demo.c", "int main() {}", &options).unwrap();
        assert_eq!(hit.plans, plans);
        assert_eq!(hit.stats, stats);

        // Different source, name, or options must miss.
        assert!(store.load("demo.c", "int main() { }", &options).is_none());
        assert!(store.load("other.c", "int main() {}", &options).is_none());
        let other_options = OmpDartOptions {
            interprocedural: false,
            ..OmpDartOptions::default()
        };
        assert!(store
            .load("demo.c", "int main() {}", &other_options)
            .is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_and_stale_entries_are_rejected() {
        let store = temp_store("corrupt");
        let options = OmpDartOptions::default();
        let stats = AnalysisStats::default();
        store
            .save("x.c", "void f() {}", &options, &sample_plans(), &stats)
            .unwrap();
        let path = store.entry_path("x.c", "void f() {}", &options);

        // Corrupt JSON: miss, not a panic or a bad deserialization.
        std::fs::write(&path, "{ not json").unwrap();
        assert!(store.load("x.c", "void f() {}", &options).is_none());

        // A valid document from a future store version: stale, rejected.
        store
            .save("x.c", "void f() {}", &options, &sample_plans(), &stats)
            .unwrap();
        let bumped = std::fs::read_to_string(&path).unwrap().replacen(
            "\"store_version\": 1",
            "\"store_version\": 99",
            1,
        );
        std::fs::write(&path, bumped).unwrap();
        assert!(store.load("x.c", "void f() {}", &options).is_none());

        // An entry whose key was tampered with (collision simulation).
        store
            .save("x.c", "void f() {}", &options, &sample_plans(), &stats)
            .unwrap();
        let tampered = std::fs::read_to_string(&path).unwrap().replacen(
            "\"name\": \"x.c\"",
            "\"name\": \"y.c\"",
            1,
        );
        std::fs::write(&path, tampered).unwrap();
        assert!(store.load("x.c", "void f() {}", &options).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// Different option sets sharing one cache dir coexist (distinct
    /// files), while superseded content of the same (unit, options) pair
    /// is pruned on write-back so disk is bounded by the unit count, not
    /// the save count.
    #[test]
    fn options_variants_coexist_and_superseded_versions_are_pruned() {
        let store = temp_store("prune");
        let stats = AnalysisStats::default();
        let plans = sample_plans();
        let defaults = OmpDartOptions::default();
        let no_ip = OmpDartOptions {
            interprocedural: false,
            ..OmpDartOptions::default()
        };
        store.save("a.c", "v1", &defaults, &plans, &stats).unwrap();
        store.save("a.c", "v1", &no_ip, &plans, &stats).unwrap();
        assert_eq!(store.entry_count(), 2, "options variants must coexist");
        assert!(store.load("a.c", "v1", &defaults).is_some());
        assert!(store.load("a.c", "v1", &no_ip).is_some());

        // New content for the default options: the old default entry is
        // pruned, the other-options entry survives.
        store.save("a.c", "v2", &defaults, &plans, &stats).unwrap();
        assert_eq!(store.entry_count(), 2);
        assert!(store.load("a.c", "v1", &defaults).is_none());
        assert!(store.load("a.c", "v2", &defaults).is_some());
        assert!(store.load("a.c", "v1", &no_ip).is_some());

        // Other units are untouched by pruning.
        store.save("b.c", "v1", &defaults, &plans, &stats).unwrap();
        store.save("a.c", "v3", &defaults, &plans, &stats).unwrap();
        assert_eq!(store.entry_count(), 3);
        assert!(store.load("b.c", "v1", &defaults).is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_directory_degrades_to_miss() {
        let store = ArtifactStore::open("/nonexistent/ompdart-store");
        assert!(store
            .load("a.c", "int x;", &OmpDartOptions::default())
            .is_none());
        assert!(store.is_empty());
    }
}
