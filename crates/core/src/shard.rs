//! A sharded concurrent map for the session's hot caches.
//!
//! Every [`crate::pipeline::AnalysisSession`] cache used to be one global
//! `Mutex<HashMap>`: eight workers probing the parse/unit/plan caches
//! serialized on a single lock per lookup. [`ShardMap`] splits the key
//! space over [`SHARDS`] independent `RwLock<HashMap>` shards — the key's
//! hash selects the shard, concurrent readers of one shard share the read
//! lock, and writers contend only with traffic that hashes to the same
//! shard. std-only by design (no new dependencies): this is a fixed-width
//! shard array, not a lock-free map, because the session's access pattern
//! is read-mostly with short critical sections.
//!
//! Lock contention is *measured*, not guessed: every acquisition first
//! tries the non-blocking path, and only a failed try falls back to the
//! blocking call with a timer around it. The totals feed the
//! [`crate::program::DriverProfile`] lock-wait counters.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::Instant;

/// Number of shards. A small power of two: enough to make cross-shard
/// collisions rare at the session's worker counts (≤ 8), small enough that
/// whole-map sweeps (`retain`, `len`) stay cheap.
pub const SHARDS: usize = 16;

/// Nanoseconds spent blocked on shard locks, process-wide.
static LOCK_WAIT_NS: AtomicU64 = AtomicU64::new(0);
/// Number of shard-lock acquisitions that found the lock held.
static LOCK_CONTENTIONS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide shard-lock contention counters:
/// `(lock_wait_ns, lock_contentions)`.
pub fn lock_stats() -> (u64, u64) {
    (
        LOCK_WAIT_NS.load(Ordering::Relaxed),
        LOCK_CONTENTIONS.load(Ordering::Relaxed),
    )
}

fn read_timed<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match lock.try_read() {
        Ok(guard) => guard,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            let start = Instant::now();
            let guard = lock.read().unwrap_or_else(|p| p.into_inner());
            LOCK_WAIT_NS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            LOCK_CONTENTIONS.fetch_add(1, Ordering::Relaxed);
            guard
        }
    }
}

fn write_timed<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match lock.try_write() {
        Ok(guard) => guard,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            let start = Instant::now();
            let guard = lock.write().unwrap_or_else(|p| p.into_inner());
            LOCK_WAIT_NS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            LOCK_CONTENTIONS.fetch_add(1, Ordering::Relaxed);
            guard
        }
    }
}

/// An N-way sharded `HashMap` behind per-shard `RwLock`s. See the module
/// docs for the design rationale.
#[derive(Debug)]
pub struct ShardMap<K, V> {
    shards: [RwLock<HashMap<K, V>>; SHARDS],
    hasher: RandomState,
}

impl<K, V> Default for ShardMap<K, V> {
    fn default() -> Self {
        ShardMap::new()
    }
}

impl<K, V> ShardMap<K, V> {
    /// An empty map.
    pub fn new() -> ShardMap<K, V> {
        ShardMap {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hasher: RandomState::new(),
        }
    }

    /// Total number of keys across all shards. Shards are visited one at a
    /// time, so the count is a consistent-per-shard snapshot, not a frozen
    /// whole-map one — exactly what a size gauge needs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_timed(s).len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq, V> ShardMap<K, V> {
    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % SHARDS]
    }

    /// Apply `f` to the value under `key` (or `None`) while holding the
    /// shard's *read* lock. Concurrent readers of one shard proceed in
    /// parallel.
    pub fn read<R>(&self, key: &K, f: impl FnOnce(Option<&V>) -> R) -> R {
        let guard = read_timed(self.shard(key));
        f(guard.get(key))
    }

    /// Insert (or replace) the value under `key`.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        write_timed(self.shard(&key)).insert(key, value)
    }

    /// Apply `f` to the (default-created if absent) value under `key`
    /// while holding the shard's write lock. This is the first-writer-wins
    /// primitive the bucketed caches use: probe the bucket again under the
    /// lock, then push.
    pub fn update<R>(&self, key: K, f: impl FnOnce(&mut V) -> R) -> R
    where
        V: Default,
    {
        let mut guard = write_timed(self.shard(&key));
        f(guard.entry(key).or_default())
    }

    /// Retain only the entries for which `f` returns true, shard by shard.
    pub fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) {
        for shard in &self.shards {
            write_timed(shard).retain(|k, v| f(k, v));
        }
    }

    /// Fold over every entry, shard by shard (each shard read-locked for
    /// the duration of its visit; unspecified order).
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &K, &V) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            let guard = read_timed(shard);
            for (k, v) in guard.iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Eight threads hammering one key must serialize their bucket pushes
    /// without losing a single write and without aliasing: the bucket ends
    /// up with exactly one entry per distinct value, first writer winning
    /// per value.
    #[test]
    fn eight_threads_hammer_one_key() {
        let map: ShardMap<u64, Vec<usize>> = ShardMap::new();
        let inserted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let map = &map;
                let inserted = &inserted;
                scope.spawn(move || {
                    for round in 0..200 {
                        let value = t * 1000 + round;
                        map.update(42, |bucket| {
                            if !bucket.contains(&value) {
                                bucket.push(value);
                                inserted.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                        // Read path: the bucket must always contain what
                        // this thread already pushed.
                        let seen =
                            map.read(&42, |b| b.map(|b| b.contains(&value)).unwrap_or(false));
                        assert!(seen, "thread {t} lost its own write of {value}");
                    }
                });
            }
        });
        assert_eq!(inserted.load(Ordering::Relaxed), 8 * 200);
        let len = map.read(&42, |b| b.map(Vec::len).unwrap_or(0));
        assert_eq!(len, 8 * 200, "no write may be lost, none duplicated");
        assert_eq!(map.len(), 1, "all traffic targeted one key");
    }

    #[test]
    fn retain_and_fold_cover_every_shard() {
        let map: ShardMap<u64, u64> = ShardMap::new();
        for k in 0..1000u64 {
            map.insert(k, k * 2);
        }
        assert_eq!(map.len(), 1000);
        let sum = map.fold(0u64, |acc, _, v| acc + v);
        assert_eq!(sum, (0..1000u64).map(|k| k * 2).sum());
        map.retain(|k, _| k % 2 == 0);
        assert_eq!(map.len(), 500);
    }

    #[test]
    fn distinct_keys_spread_over_shards() {
        let map: ShardMap<u64, u64> = ShardMap::new();
        for k in 0..256u64 {
            map.insert(k, k);
        }
        let populated = map
            .shards
            .iter()
            .filter(|s| !s.read().unwrap().is_empty())
            .count();
        assert!(
            populated > 1,
            "256 keys must not all hash to a single shard"
        );
    }
}
