//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, providing the API subset used by the `ompdart-bench` benches.
//!
//! The container this workspace builds in has no network access, so the real
//! crates.io `criterion` cannot be fetched; this shim keeps the bench
//! sources untouched and compiling, runs each benchmark for a small fixed
//! number of timed iterations, and prints mean/min wall-clock times. It is a
//! smoke-run harness, not a statistics engine — swap the path dependency for
//! the real `criterion` when building with network access.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for a parameterized benchmark, as in
/// `BenchmarkId::from_parameter(name)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver handed to `b.iter(..)` closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
    min: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Bencher {
        Bencher {
            iters,
            total: Duration::ZERO,
            min: Duration::MAX,
        }
    }

    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            hint::black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            if elapsed < self.min {
                self.min = elapsed;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 || self.total.is_zero() {
            println!("bench {name:<44} (not measured)");
            return;
        }
        let mean = self.total / self.iters as u32;
        println!(
            "bench {name:<44} mean {:>12?}  min {:>12?}  ({} iters)",
            mean, self.min, self.iters
        );
    }
}

/// Top-level handle mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    /// `cargo test --benches` passes `--test`: run one iteration per bench.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark (the real criterion treats
    /// this as a statistical sample count; the shim uses it directly).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn iters(&self) -> u64 {
        if self.test_mode {
            1
        } else {
            self.sample_size as u64
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.iters());
        f(&mut b);
        b.report(id);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Grouped benchmarks mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.iters());
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.iters());
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!` — both the configured and the simple form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!` — generates the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new(7);
        let mut runs = 0u64;
        b.iter(|| runs += 1);
        assert_eq!(runs, 7);
        assert!(b.total > Duration::ZERO || b.min == Duration::MAX || runs == 7);
    }

    #[test]
    fn group_and_function_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("smoke/one", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("smoke");
        group.bench_function("two", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3, |b, i| {
            b.iter(|| black_box(i + 1))
        });
        group.finish();
    }
}
