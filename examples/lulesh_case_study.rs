//! The LULESH case study (Section VI): OMPDart finds better mappings than
//! the expert implementation by removing redundant per-step `target update`
//! directives, which the paper reports as an 85% transfer reduction and a
//! 1.6x speedup over the expert-defined mappings.
//!
//! ```sh
//! cargo run --release --example lulesh_case_study
//! ```

use ompdart_sim::format_bytes;
use ompdart_suite::by_name;
use ompdart_suite::experiment::{run_benchmark, ExperimentConfig};

fn main() {
    let bench = by_name("lulesh").expect("lulesh benchmark missing");
    let config = ExperimentConfig::default();
    let result = run_benchmark(&bench, &config).expect("lulesh run failed");
    let cost = config.cost;

    println!("LULESH 2.0 (reduced) — three variants\n");
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>12}",
        "variant", "HtoD calls", "DtoH calls", "bytes moved", "runtime (est.)"
    );
    for (label, profile) in [
        ("unoptimized", &result.unoptimized.profile),
        ("OMPDart", &result.ompdart.profile),
        ("expert (HeCBench)", &result.expert.profile),
    ] {
        println!(
            "{:<22} {:>12} {:>12} {:>14} {:>11.3}ms",
            label,
            profile.htod_calls,
            profile.dtoh_calls,
            format_bytes(profile.total_bytes()),
            profile.total_time(&cost) * 1e3
        );
    }

    let vs_expert = result
        .ompdart
        .profile
        .speedup_over(&result.expert.profile, &cost);
    let transfer_cut = 100.0
        * (1.0
            - result.ompdart.profile.total_bytes() as f64
                / result.expert.profile.total_bytes().max(1) as f64);
    println!();
    println!("OMPDart vs expert: {vs_expert:.2}x faster, {transfer_cut:.0}% less data transferred");
    println!(
        "outputs identical: {} (expert) / {} (unoptimized)",
        result.output_matches_expert(),
        result.output_matches_unoptimized()
    );
    println!("\nWhy: the expert implementation re-synchronizes nodal coordinates, velocities");
    println!("and thermodynamic fields to the host every time step even though the host only");
    println!("needs the reduced time-step constraints; OMPDart's data-flow analysis proves");
    println!("those updates unnecessary and keeps the fields resident on the device.");

    // The Mapping IR makes that judgement inspectable: every construct
    // carries its justifying dataflow fact...
    println!("\nMappings OMPDart generated, with their provenance:");
    for plan in &result.plans {
        print!("{}", ompdart_core::explain_plan(plan, None));
    }
    // ...and the construct-level diff shows exactly which expert updates
    // the analysis proved redundant.
    println!();
    print!(
        "{}",
        result.plan_diff_vs_expert().render("ompdart", "expert")
    );
}
