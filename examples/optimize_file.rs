//! Command-line use of OMPDart: read an OpenMP offload C file, insert data
//! mappings, and print (or write) the transformed source — the same workflow
//! as the paper's LibTooling-based tool, driven stage by stage through the
//! `AnalysisSession` API.
//!
//! ```sh
//! cargo run --release --example optimize_file -- input.c            # to stdout
//! cargo run --release --example optimize_file -- input.c output.c   # to a file
//! ```
//!
//! Without arguments the example optimizes the bundled unoptimized `hotspot`
//! benchmark so it can be run out of the box.

use ompdart_core::{AnalysisSession, OmpDartOptions};
use ompdart_suite::by_name;
use std::error::Error;

fn main() {
    if let Err(err) = run() {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (name, source) = match args.first() {
        Some(path) => (path.clone(), std::fs::read_to_string(path)?),
        None => {
            let bench = by_name("hotspot").expect("bundled hotspot benchmark missing");
            eprintln!("no input given; optimizing the bundled hotspot benchmark");
            (bench.unoptimized_file(), bench.unoptimized.to_string())
        }
    };

    // Drive the pipeline one stage at a time: parse -> hybrid AST-CFG ->
    // access classification -> interprocedural summaries -> mapping plans ->
    // rewrite. `?` works because every stage error is a std::error::Error.
    let session = AnalysisSession::with_options(OmpDartOptions::default());
    let parsed = session.parse(&name, &source)?;
    ompdart_core::pipeline::check_input_contract(&parsed)?;
    let graphs = session.graphs(&parsed);
    let accesses = session.accesses(&parsed, &graphs);
    let summaries = session.summaries(&parsed, &accesses);
    let plans = session.plan(&parsed, &graphs, &accesses, &summaries);
    let rewritten = session.rewrite(&parsed, &graphs, &plans);

    eprintln!(
        "{}: {} kernels, {} mapped variables, {} constructs inserted",
        name,
        plans.stats.kernels,
        plans.stats.mapped_variables,
        plans.stats.total_constructs(),
    );
    eprintln!("stage timings: {}", session.timings());
    for diag in parsed.diagnostics.iter().chain(plans.diagnostics.iter()) {
        eprintln!("note: {}", diag.message);
    }
    match args.get(1) {
        Some(out_path) => {
            std::fs::write(out_path, &rewritten.source)?;
            eprintln!("wrote {out_path}");
        }
        None => println!("{}", rewritten.source),
    }
    Ok(())
}
