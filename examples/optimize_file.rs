//! Command-line use of OMPDart: read an OpenMP offload C file, insert data
//! mappings, and print (or write) the transformed source — the same workflow
//! as the paper's LibTooling-based tool, driven through the `Ompdart`
//! builder facade. (The installable `ompdart` binary wraps the same API
//! with `analyze`/`explain`/`diff-plan`/`batch` subcommands.)
//!
//! ```sh
//! cargo run --release --example optimize_file -- input.c            # to stdout
//! cargo run --release --example optimize_file -- input.c output.c   # to a file
//! ```
//!
//! Without arguments the example optimizes the bundled unoptimized `hotspot`
//! benchmark so it can be run out of the box, and — like
//! `reproduce_paper` — finishes by running the result through `explain()`
//! so every inserted construct justifies itself.

use ompdart_core::{OmpDartOptions, Ompdart};
use ompdart_suite::by_name;
use std::error::Error;

fn main() {
    if let Err(err) = run() {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (name, source) = match args.first() {
        Some(path) => (path.clone(), std::fs::read_to_string(path)?),
        None => {
            let bench = by_name("hotspot").expect("bundled hotspot benchmark missing");
            eprintln!("no input given; optimizing the bundled hotspot benchmark");
            (bench.unoptimized_file(), bench.unoptimized.to_string())
        }
    };

    // The builder facade: configure once, analyze into a typed handle.
    let tool = Ompdart::builder()
        .options(OmpDartOptions::default())
        .build();
    let analysis = tool.analyze(&name, &source)?;

    let stats = analysis.stats();
    eprintln!(
        "{}: {} kernels, {} mapped variables, {} constructs inserted",
        name,
        stats.kernels,
        stats.mapped_variables,
        stats.total_constructs(),
    );
    eprintln!("stage timings: {}", analysis.timings());
    for diag in analysis.diagnostics().iter() {
        eprintln!("{}", diag.render(analysis.source_file()));
    }

    // Every mapping decision explains itself: the dataflow fact, the
    // deciding pipeline stage, and the source location that forced it.
    eprintln!(
        "\n=== why each construct exists ===\n{}",
        analysis.explain()
    );

    match args.get(1) {
        Some(out_path) => {
            std::fs::write(out_path, analysis.rewritten_source())?;
            eprintln!("wrote {out_path}");
        }
        None => println!("{}", analysis.rewritten_source()),
    }
    Ok(())
}
