//! Command-line use of OMPDart: read an OpenMP offload C file, insert data
//! mappings, and print (or write) the transformed source — the same workflow
//! as the paper's LibTooling-based tool.
//!
//! ```sh
//! cargo run --release --example optimize_file -- input.c            # to stdout
//! cargo run --release --example optimize_file -- input.c output.c   # to a file
//! ```
//!
//! Without arguments the example optimizes the bundled unoptimized `hotspot`
//! benchmark so it can be run out of the box.

use ompdart_core::{OmpDart, OmpDartOptions};
use ompdart_suite::by_name;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (name, source) = match args.first() {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            (path.clone(), text)
        }
        None => {
            let bench = by_name("hotspot").unwrap();
            eprintln!("no input given; optimizing the bundled hotspot benchmark");
            (bench.unoptimized_file(), bench.unoptimized.to_string())
        }
    };

    let tool = OmpDart::with_options(OmpDartOptions::default());
    match tool.transform_source(&name, &source) {
        Ok(result) => {
            eprintln!(
                "{}: {} kernels, {} mapped variables, {} constructs inserted in {:.2} ms",
                name,
                result.stats.kernels,
                result.stats.mapped_variables,
                result.stats.total_constructs(),
                result.tool_time.as_secs_f64() * 1e3
            );
            for diag in result.diagnostics.iter() {
                eprintln!("note: {}", diag.message);
            }
            match args.get(1) {
                Some(out_path) => {
                    std::fs::write(out_path, &result.transformed_source)
                        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
                    eprintln!("wrote {out_path}");
                }
                None => println!("{}", result.transformed_source),
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
