//! Visualize the hybrid AST-CFG (Section IV-B, Figure 2 of the paper) for a
//! small function: prints the control-flow graph in Graphviz DOT format with
//! offloaded nodes highlighted, plus the statement index that links graph
//! nodes back to loops, kernels and data regions.
//!
//! ```sh
//! cargo run --release --example astcfg_dot | dot -Tsvg > astcfg.svg
//! ```

use ompdart_core::Ompdart;
use ompdart_frontend::parser::parse_str;
use ompdart_graph::ProgramGraphs;

const PROGRAM: &str = r#"
int foo(int a[], int n) {
  int x = 0;
  for (int it = 0; it < 10; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) {
      a[i] = a[i] + it;
    }
    if (a[0] > 0) {
      x = x + a[0];
    }
  }
  return x;
}
"#;

fn main() {
    let (_file, result) = parse_str("foo.c", PROGRAM);
    assert!(result.is_ok(), "{:?}", result.diagnostics);
    let graphs = ProgramGraphs::build(&result.unit);
    let g = graphs.function("foo").expect("function not found");

    // The CFG half of the hybrid representation, as DOT.
    println!("{}", g.cfg.to_dot());

    // The AST half: per-statement structural facts.
    eprintln!("function `{}`:", g.function());
    eprintln!("  kernels: {}", g.kernel_count());
    eprintln!("  loops:   {}", g.index.loops().len());
    for info in g.index.stmts_in_order() {
        eprintln!(
            "  stmt #{:<3} {:?}{}{}",
            info.order,
            info.kind,
            if info.offloaded { "  [device]" } else { "" },
            if info.enclosing_loops.is_empty() {
                String::new()
            } else {
                format!("  (loop depth {})", info.enclosing_loops.len())
            }
        );
    }

    // The same hybrid AST-CFG drives the mapping decisions; show what the
    // analysis concludes for this function and why.
    let analysis = Ompdart::builder()
        .build()
        .analyze("foo.c", PROGRAM)
        .expect("analysis failed");
    eprintln!("\nmapping decisions derived from this graph:");
    eprint!("{}", analysis.explain());
}
