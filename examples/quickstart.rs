//! Quickstart: run OMPDart on a small OpenMP offload program and see what it
//! inserts and what it saves.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ompdart_core::Ompdart;
use ompdart_sim::{format_bytes, simulate_source, CostModel, SimConfig};

const PROGRAM: &str = r#"
#define N 4096
#define STEPS 25
double field[N];
double forcing[N];

int main() {
  for (int i = 0; i < N; i++) {
    field[i] = 0.0;
    forcing[i] = 0.001 * i;
  }
  for (int step = 0; step < STEPS; step++) {
    #pragma omp target teams distribute parallel for
    for (int i = 1; i < N - 1; i++) {
      field[i] = field[i] + 0.25 * (field[i - 1] - 2.0 * field[i] + field[i + 1]) + forcing[i];
    }
  }
  double total = 0.0;
  for (int i = 0; i < N; i++) total += field[i];
  printf("field_sum %.6f\n", total);
  return 0;
}
"#;

fn main() {
    // 1. Run the static analysis + source rewriting.
    let tool = Ompdart::builder().build();
    let analysis = tool
        .analyze("quickstart.c", PROGRAM)
        .expect("OMPDart failed");

    println!(
        "=== OMPDart transformed source ===\n{}",
        analysis.rewritten_source()
    );
    let stats = analysis.stats();
    println!(
        "constructs inserted: {} ({} map clauses, {} updates, {} firstprivate)",
        stats.total_constructs(),
        stats.map_clauses,
        stats.update_directives,
        stats.firstprivate_clauses,
    );
    println!(
        "analysis time: {:.3} ms\n",
        analysis.timings().total().as_secs_f64() * 1e3
    );
    println!("=== why each construct exists ===\n{}", analysis.explain());

    // 2. Execute both versions on the offload runtime simulator and compare
    //    the nsys-style transfer profiles.
    let cost = CostModel::default();
    let before = simulate_source(PROGRAM, SimConfig::default()).expect("baseline run failed");
    let after = simulate_source(analysis.rewritten_source(), SimConfig::default())
        .expect("transformed run failed");

    assert_eq!(
        before.output, after.output,
        "the transformation must not change results"
    );
    println!(
        "program output: {:?} (identical before/after)",
        after.output
    );
    println!();
    println!(
        "{:<28} {:>16} {:>16}",
        "metric", "implicit mappings", "OMPDart"
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "HtoD memcpy calls", before.profile.htod_calls, after.profile.htod_calls
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "DtoH memcpy calls", before.profile.dtoh_calls, after.profile.dtoh_calls
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "bytes transferred",
        format_bytes(before.profile.total_bytes()),
        format_bytes(after.profile.total_bytes())
    );
    println!(
        "{:<28} {:>15.2}x",
        "speedup (est.)",
        after.profile.speedup_over(&before.profile, &cost)
    );
}
