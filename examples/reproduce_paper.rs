//! Reproduce every table and figure of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release --example reproduce_paper              # everything
//! cargo run --release --example reproduce_paper -- --fig5    # one artifact
//! cargo run --release --example reproduce_paper -- --timings # pipeline stages
//! ```
//!
//! Accepted flags: `--table1` .. `--table5`, `--fig3` .. `--fig6`,
//! `--summary`, `--timings`, `--plan-diff` (construct-level tool-vs-expert
//! comparison), `--plans` (plan-JSON emission), `--explain` (justify every
//! inserted construct), `--lifetimes` (run the unstructured
//! `enter/exit data` variant as a fourth row and compare its transfer
//! volume against the expert mapping). With no flags every tabular
//! artifact — including the plan-vs-expert diff — is printed in order;
//! the large `--plans` / `--explain` dumps and the extra `--lifetimes`
//! run are opt-in. The nine benchmarks run concurrently
//! over one shared `AnalysisSession`, so repeated artifacts reuse the
//! cached analyses.

use ompdart_core::plan::explain_plans;
use ompdart_core::AnalysisSession;
use ompdart_suite::experiment::{
    run_all_with_session, run_multifile_benchmark_with_session, ExperimentConfig,
};
use ompdart_suite::report;
use std::sync::Arc;

const FLAGS: [&str; 14] = [
    "--table1",
    "--table2",
    "--table3",
    "--table4",
    "--table5",
    "--fig3",
    "--fig4",
    "--fig5",
    "--fig6",
    "--summary",
    "--plans",
    "--plan-diff",
    "--explain",
    "--lifetimes",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for arg in &args {
        if arg != "--timings" && !FLAGS.contains(&arg.as_str()) {
            eprintln!(
                "unknown flag `{arg}`; accepted: {} --timings",
                FLAGS.join(" ")
            );
            std::process::exit(2);
        }
    }
    // The `--plans` JSON dump and the per-construct `--explain` listing are
    // large, so they are opt-in; every tabular artifact (the plan-vs-expert
    // diff included) prints by default.
    let want = |flag: &str| {
        if matches!(flag, "--plans" | "--explain" | "--lifetimes") {
            args.iter().any(|a| a == flag)
        } else {
            args.is_empty() || args.iter().any(|a| a == flag)
        }
    };

    // The static tables need no execution.
    if want("--table1") {
        println!("{}", report::table1());
    }
    if want("--table2") {
        println!("{}", report::table2());
    }
    if want("--table3") {
        println!("{}", report::table3());
    }
    if want("--table4") {
        println!("{}", report::table4());
    }

    let needs_run = [
        "--table5",
        "--fig3",
        "--fig4",
        "--fig5",
        "--fig6",
        "--summary",
        "--timings",
        "--plans",
        "--plan-diff",
        "--explain",
        "--lifetimes",
    ]
    .iter()
    .any(|f| want(f));
    if !needs_run {
        return;
    }

    eprintln!(
        "running the nine benchmarks plus the linked multi-file lulesh port \
         (unoptimized / OMPDart / expert)..."
    );
    let config = ExperimentConfig {
        // Opt-in fourth variant: every benchmark is re-planned with
        // unstructured `enter/exit data` lifetimes and simulated alongside
        // the three paper variants.
        lifetimes: want("--lifetimes"),
        ..ExperimentConfig::default()
    };
    let session = Arc::new(AnalysisSession::with_options(config.tool));
    let mut results = run_all_with_session(&config, &session);
    // The tenth row: the three-file lulesh port, analyzed as one *linked*
    // program and compared against its hand-mapped expert counterpart.
    results.push(
        run_multifile_benchmark_with_session(&config, &session)
            .unwrap_or_else(|e| panic!("lulesh_mf: {e}")),
    );
    let results = results;

    if want("--table5") {
        println!("{}", report::table5(&results));
    }
    if want("--fig3") {
        println!("{}", report::figure3(&results));
    }
    if want("--fig4") {
        println!("{}", report::figure4(&results));
    }
    if want("--fig5") {
        println!("{}", report::figure5(&results, &config.cost));
    }
    if want("--fig6") {
        println!("{}", report::figure6(&results, &config.cost));
    }
    if want("--summary") {
        println!("{}", report::summary(&results, &config.cost));
    }
    if want("--plan-diff") {
        println!("{}", report::plan_vs_expert(&results));
    }
    if want("--lifetimes") {
        println!("{}", report::lifetimes_vs_expert(&results));
    }
    if want("--plans") {
        println!("{}", report::plans_json(&results));
    }
    if want("--explain") {
        for r in &results {
            println!("=== {} ===", r.name);
            println!("{}", explain_plans(&r.plans, None));
        }
    }
    if want("--timings") {
        println!("Pipeline stage timings per benchmark");
        println!("------------------------------------");
        for r in &results {
            println!("{:<10} {}", r.name, r.stage_timings);
        }
        println!("{:<10} {}", "session", session.timings());
        let stats = session.cache_stats();
        println!(
            "cache: {} analysis misses, {} analysis hits, {} parse misses, {} parse hits",
            stats.analysis_misses, stats.analysis_hits, stats.parse_misses, stats.parse_hits
        );
    }
}
