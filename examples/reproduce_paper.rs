//! Reproduce every table and figure of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release --example reproduce_paper            # everything
//! cargo run --release --example reproduce_paper -- --fig5  # one artifact
//! ```
//!
//! Accepted flags: `--table1` .. `--table5`, `--fig3` .. `--fig6`,
//! `--summary`. With no flags all artifacts are printed in order.

use ompdart_suite::experiment::{run_all, ExperimentConfig};
use ompdart_suite::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |flag: &str| args.is_empty() || args.iter().any(|a| a == flag);

    // The static tables need no execution.
    if want("--table1") {
        println!("{}", report::table1());
    }
    if want("--table2") {
        println!("{}", report::table2());
    }
    if want("--table3") {
        println!("{}", report::table3());
    }
    if want("--table4") {
        println!("{}", report::table4());
    }

    let needs_run = ["--table5", "--fig3", "--fig4", "--fig5", "--fig6", "--summary"]
        .iter()
        .any(|f| want(f));
    if !needs_run {
        return;
    }

    eprintln!("running the nine benchmarks (unoptimized / OMPDart / expert)...");
    let config = ExperimentConfig::default();
    let results = run_all(&config);

    if want("--table5") {
        println!("{}", report::table5(&results));
    }
    if want("--fig3") {
        println!("{}", report::figure3(&results));
    }
    if want("--fig4") {
        println!("{}", report::figure4(&results));
    }
    if want("--fig5") {
        println!("{}", report::figure5(&results, &config.cost));
    }
    if want("--fig6") {
        println!("{}", report::figure6(&results, &config.cost));
    }
    if want("--summary") {
        println!("{}", report::summary(&results, &config.cost));
    }
}
