//! Pinned golden outputs: with `--lifetimes` **off** (the default), the
//! rewritten source of every benchmark — the nine single-file programs and
//! the linked three-file lulesh port — is byte-identical to the committed
//! `tests/golden/*.mapped.c` files.
//!
//! These goldens were captured before the unstructured-lifetimes planner
//! landed; this test is the proof that the lifetimes mode is purely opt-in
//! and the default pipeline's output never moved.

use ompdart_core::{Ompdart, ProgramDriver};
use ompdart_suite::benchmarks;

const GOLDENS: [(&str, &str); 9] = [
    ("accuracy", include_str!("golden/accuracy.mapped.c")),
    ("ace", include_str!("golden/ace.mapped.c")),
    ("backprop", include_str!("golden/backprop.mapped.c")),
    ("bfs", include_str!("golden/bfs.mapped.c")),
    ("clenergy", include_str!("golden/clenergy.mapped.c")),
    ("hotspot", include_str!("golden/hotspot.mapped.c")),
    ("lulesh", include_str!("golden/lulesh.mapped.c")),
    ("nw", include_str!("golden/nw.mapped.c")),
    ("xsbench", include_str!("golden/xsbench.mapped.c")),
];

#[test]
fn default_rewrites_are_byte_identical_to_goldens() {
    let tool = Ompdart::builder().build();
    for (name, golden) in GOLDENS {
        let bench = benchmarks::by_name(name).unwrap();
        let analysis = tool
            .analyze(&bench.unoptimized_file(), bench.unoptimized)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            analysis.rewritten_source(),
            golden,
            "{name}: default (lifetimes-off) rewrite moved off its golden"
        );
        // The v2 plan document for the default mode round-trips and keeps
        // the structured shape: no lifetime-placed specs anywhere.
        let plans = ompdart_core::plan::plans_from_json(&analysis.plans_json()).unwrap();
        for plan in &plans {
            assert!(plan.enter_data.is_empty() && plan.exit_data.is_empty());
            assert!(plan.collapses.is_empty());
        }
    }
}

#[test]
fn linked_multifile_rewrites_are_byte_identical_to_goldens() {
    let goldens = [
        (
            "lulesh_mf_main.c",
            include_str!("golden/lulesh_mf/lulesh_mf_main.mapped.c"),
        ),
        (
            "lulesh_mf_mesh.c",
            include_str!("golden/lulesh_mf/lulesh_mf_mesh.mapped.c"),
        ),
        (
            "lulesh_mf_eos.c",
            include_str!("golden/lulesh_mf/lulesh_mf_eos.mapped.c"),
        ),
    ];
    let units: Vec<(String, String)> = benchmarks::lulesh_multifile()
        .into_iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    let program = ProgramDriver::new().analyze_program(&units).unwrap();
    for (name, golden) in goldens {
        let unit = program
            .units
            .iter()
            .zip(&units)
            .find(|(_, (n, _))| n == name)
            .map(|(u, _)| u)
            .unwrap_or_else(|| panic!("{name}: unit missing from linked program"));
        assert_eq!(
            unit.rewrite.source, golden,
            "{name}: linked (lifetimes-off) rewrite moved off its golden"
        );
    }
}

/// The cold-path overhaul (interning, CSR graphs, memoized link inputs)
/// must never move a benchmark's output between rounds: on every
/// benchmark, a warm second analysis over the same session rewrites
/// byte-identically and serializes identical plan JSON; the linked
/// multi-file program additionally agrees at every link worker count.
#[test]
fn warm_rounds_and_thread_counts_keep_benchmarks_byte_identical() {
    let tool = Ompdart::builder().build();
    for bench in benchmarks::all() {
        let name = bench.unoptimized_file();
        let cold = tool
            .analyze(&name, bench.unoptimized)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let warm = tool
            .analyze(&name, bench.unoptimized)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            warm.rewritten_source(),
            cold.rewritten_source(),
            "{name}: warm rewrite moved"
        );
        assert_eq!(warm.plans_json(), cold.plans_json(), "{name}: warm plan JSON moved");
    }

    let units: Vec<(String, String)> = benchmarks::lulesh_multifile()
        .into_iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    let outputs = |program: &ompdart_core::ProgramAnalysis| -> Vec<(String, String)> {
        program
            .units
            .iter()
            .map(|u| {
                let a = ompdart_core::Analysis::from_unit(std::sync::Arc::clone(u));
                (a.rewritten_source().to_string(), a.plans_json())
            })
            .collect()
    };
    let driver = ProgramDriver::new().with_threads(1);
    let baseline = outputs(&driver.analyze_program(&units).unwrap());
    assert_eq!(
        outputs(&driver.analyze_program(&units).unwrap()),
        baseline,
        "lulesh_mf: warm linked round moved"
    );
    for threads in [2, 4, 8] {
        let program = ProgramDriver::new()
            .with_threads(threads)
            .analyze_program(&units)
            .unwrap();
        assert_eq!(
            outputs(&program),
            baseline,
            "lulesh_mf: {threads}-thread link moved the output"
        );
    }
}
