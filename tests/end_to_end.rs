//! Cross-crate integration tests: frontend -> graph -> core -> sim on the
//! motivating examples of the paper and a subset of the benchmark suite,
//! all through the `Ompdart` builder facade.

use ompdart_core::plan::{justified_line_count, plans_from_json};
use ompdart_core::{MappingConstruct, Ompdart};
use ompdart_frontend::omp::DirectiveKind;
use ompdart_sim::{simulate_source, CostModel, SimConfig};
use ompdart_suite::experiment::{run_all, run_benchmark, ExperimentConfig};
use ompdart_suite::{by_name, table4_rows};

fn analyze(name: &str, src: &str) -> ompdart_core::Analysis {
    Ompdart::builder()
        .build()
        .analyze(name, src)
        .unwrap_or_else(|e| panic!("analysis of {name} failed: {e}"))
}

/// Table I: every offload-kernel directive kind must be recognized by the
/// frontend, marked offloaded by the graph crate, and mapped by the core.
#[test]
fn table1_every_kernel_directive_is_supported_end_to_end() {
    for kind in DirectiveKind::all_offload_kernels() {
        let src = format!(
            "#define N 32\ndouble a[N];\nvoid f() {{\n  #pragma omp {}\n  for (int i = 0; i < N; i++) a[i] = i;\n}}\nint main() {{ f(); printf(\"%.0f\\n\", a[5]); return 0; }}\n",
            kind.directive_text()
        );
        let analysis = analyze("kernel.c", &src);
        assert_eq!(analysis.stats().kernels, 1, "{kind:?}");
        assert!(analysis.stats().map_clauses >= 1, "{kind:?}");
        let before = simulate_source(&src, SimConfig::default()).unwrap();
        let after = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
        assert_eq!(before.output, after.output, "{kind:?}");
    }
}

/// Table II: the seven constructs of the paper are exactly the ones the tool
/// can insert, and each can be observed in at least one transformation.
#[test]
fn table2_constructs_are_observable() {
    assert_eq!(MappingConstruct::all().len(), 7);

    // A program that needs map(to), map(from), map(alloc), update to,
    // update from and firstprivate all at once.
    let src = "\
#define N 64
#define STEPS 4
double input[N];
double output[N];
double scratch[N];
int flag;
int main() {
  for (int i = 0; i < N; i++) { input[i] = i; output[i] = 0.0; scratch[i] = 0.0; }
  double scale = 0.5;
  for (int s = 0; s < STEPS; s++) {
    flag = s;
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      scratch[i] = input[i] * scale + flag;
      if (i > 0) {
        output[i] = scratch[i] + output[i - 1];
      }
    }
    double probe = 0.0;
    for (int i = 0; i < N; i++) probe += output[i];
    printf(\"probe %.1f\\n\", probe);
  }
  printf(\"last %.1f\\n\", output[N - 1] + scratch[N - 1]);
  return 0;
}
";
    let analysis = analyze("all_constructs.c", src);
    let text = analysis.rewritten_source();
    assert!(text.contains("map(to:"), "{text}");
    assert!(
        text.contains("map(from:") || text.contains("map(tofrom:"),
        "{text}"
    );
    assert!(text.contains("firstprivate("), "{text}");
    assert!(text.contains("target update from("), "{text}");
    let before = simulate_source(src, SimConfig::default()).unwrap();
    let after = simulate_source(text, SimConfig::default()).unwrap();
    assert_eq!(before.output, after.output, "{text}");
}

/// The paper's three motivating listings, end to end through the public API.
#[test]
fn motivating_listings_reduce_transfers_and_stay_correct() {
    let listing1 = "\
#define N 128
int a[N];
int main() {
  for (int i = 0; i < N; ++i) {
    #pragma omp target
    for (int j = 0; j < N; ++j) a[j] += j;
  }
  int s = 0;
  for (int j = 0; j < N; ++j) s += a[j];
  printf(\"%d\\n\", s);
  return 0;
}
";
    let listing2 = "\
#define N 128
int a[N];
int main() {
  #pragma omp target
  for (int i = 0; i < N; ++i) a[i] += i;
  #pragma omp target
  for (int i = 0; i < N; ++i) a[i] *= i;
  printf(\"%d\\n\", a[64]);
  return 0;
}
";
    for (name, src, min_reduction) in [("listing1", listing1, 10.0), ("listing2", listing2, 1.5)] {
        let analysis = analyze(name, src);
        let before = simulate_source(src, SimConfig::default()).unwrap();
        let after = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
        assert_eq!(before.output, after.output, "{name}");
        let reduction =
            before.profile.total_bytes() as f64 / after.profile.total_bytes().max(1) as f64;
        assert!(
            reduction >= min_reduction,
            "{name}: expected at least {min_reduction}x transfer reduction, got {reduction:.2}x"
        );
    }
}

/// Acceptance: for all nine benchmarks, every construct of every plan
/// carries a non-default provenance, the explain rendering justifies each
/// construct on its own line, and the plan JSON round-trips.
#[test]
fn every_benchmark_plan_is_fully_explained() {
    let results = run_all(&ExperimentConfig::default());
    assert_eq!(results.len(), 9);
    for r in &results {
        assert!(!r.plans.is_empty(), "{}: no plans", r.name);
        let mut constructs = 0;
        for plan in &r.plans {
            constructs += plan.construct_count();
            for p in plan.provenances() {
                assert!(
                    p.is_justified(),
                    "{}: construct without provenance in `{}`",
                    r.name,
                    plan.function
                );
                assert!(
                    !p.detail.is_empty(),
                    "{}: empty provenance detail in `{}`",
                    r.name,
                    plan.function
                );
            }
        }
        assert!(constructs > 0, "{}: no constructs", r.name);
        // One justified line per construct.
        let explained = ompdart_core::explain_plans(&r.plans, None);
        assert_eq!(
            justified_line_count(&explained),
            constructs,
            "{}: explain must print one justified line per construct:\n{explained}",
            r.name
        );
        // The serialized IR is the identity under round-trip.
        let back = plans_from_json(&r.plans_json()).unwrap();
        assert_eq!(back, r.plans, "{}", r.name);
    }
}

/// A focused subset of the benchmark suite (the full nine-benchmark run lives
/// in `ompdart-suite`); checks the cross-crate plumbing with the default and
/// a non-default cost model.
#[test]
fn benchmark_subset_end_to_end() {
    let config = ExperimentConfig {
        cost: CostModel::fast_interconnect(),
        ..Default::default()
    };
    for name in ["backprop", "clenergy"] {
        let bench = by_name(name).unwrap();
        let result = run_benchmark(&bench, &config).unwrap();
        assert!(result.output_matches_expert(), "{name}");
        assert!(result.output_matches_unoptimized(), "{name}");
        assert!(
            result.speedup_ompdart(&config.cost) >= result.speedup_expert(&config.cost) * 0.95,
            "{name}"
        );
    }
}

/// The ablation knobs change what the tool emits but never break programs.
#[test]
fn ablation_options_preserve_correctness() {
    let bench = by_name("backprop").unwrap();
    let variants = [
        Ompdart::builder(),
        Ompdart::builder().dataflow(ompdart_core::DataflowOptions {
            firstprivate_optimization: false,
            ..Default::default()
        }),
        Ompdart::builder().dataflow(ompdart_core::DataflowOptions {
            hoist_updates: false,
            ..Default::default()
        }),
        Ompdart::builder().interprocedural(false),
    ];
    let baseline = simulate_source(bench.unoptimized, SimConfig::default()).unwrap();
    for (i, builder) in variants.into_iter().enumerate() {
        let tool = builder.build();
        let analysis = tool.analyze("backprop.c", bench.unoptimized).unwrap();
        let run = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
        assert_eq!(
            baseline.output, run.output,
            "ablation variant {i} changed the result"
        );
    }
}

/// Table IV sanity from the workspace root: lulesh dominates the mapping
/// search space, mirroring the paper.
#[test]
fn table4_rows_available_from_root() {
    let rows = table4_rows();
    assert_eq!(rows.len(), 9);
    let lulesh = rows.iter().find(|r| r.name == "lulesh").unwrap();
    assert_eq!(lulesh.kernels, 15);
    assert!(rows
        .iter()
        .all(|r| lulesh.possible_mappings >= r.possible_mappings));
}
