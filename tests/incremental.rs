//! Golden tests for the incremental analysis engine.
//!
//! * **Incremental == cold**: after a one-function edit, re-analysis in a
//!   warm session — where unchanged functions are served by plan
//!   relocation — must produce byte-identical output (and identical plans
//!   and stats) to a cold analysis of the edited source, across the whole
//!   corpus.
//! * **Persistent store == cold**: a second session over the same
//!   `cache_dir` (a simulated process restart) must reproduce every
//!   rewrite byte-identically from disk without planning a single
//!   function.

use ompdart_core::{AnalysisSession, Ompdart};
use ompdart_suite::{all_benchmarks, incremental_demo, one_function_edit};
use std::sync::Arc;

/// The nine paper benchmarks plus the multi-function incremental demo.
fn corpus() -> Vec<(String, String)> {
    let mut inputs: Vec<(String, String)> = all_benchmarks()
        .iter()
        .map(|b| (b.unoptimized_file(), b.unoptimized.to_string()))
        .collect();
    inputs.push(("incremental_demo.c".into(), incremental_demo().to_string()));
    inputs
}

/// Acceptance golden: incremental re-analysis after a one-function edit is
/// byte-identical to a cold analysis on every corpus unit, and the
/// multi-function unit re-plans *only* the edited function.
#[test]
fn incremental_reanalysis_matches_cold_analysis_on_all_benchmarks() {
    for (name, source) in corpus() {
        let session = AnalysisSession::new();
        session.analyze(&name, &source).unwrap();

        let (edited, edited_func) = one_function_edit(&name, &source)
            .unwrap_or_else(|| panic!("{name}: no editable function"));
        let before = session.cache_stats();
        let incremental = session.analyze(&name, &edited).unwrap();
        let after = session.cache_stats();

        let cold = AnalysisSession::new();
        let fresh = cold.analyze(&name, &edited).unwrap();
        assert_eq!(
            fresh.rewrite.source, incremental.rewrite.source,
            "{name}: incremental rewrite diverges from cold analysis"
        );
        assert_eq!(fresh.plans.stats, incremental.plans.stats, "{name}");
        assert_eq!(
            fresh.plans.plans, incremental.plans.plans,
            "{name}: relocated plans must equal freshly computed plans"
        );

        let functions = fresh.parsed.unit.functions().count();
        let hits = after.function_plan_hits - before.function_plan_hits;
        let misses = after.function_plan_misses - before.function_plan_misses;
        assert_eq!(
            hits + misses,
            functions as u64,
            "{name}: every function must be accounted for"
        );
        if functions > 1 {
            assert_eq!(
                misses, 1,
                "{name}: only the edited function (`{edited_func}`) may be re-planned"
            );
            assert_eq!(hits, functions as u64 - 1, "{name}");
        }
    }
}

/// A *growing* edit displaces every function behind the edited one: the
/// relocated plans must still land the directives at the right places.
#[test]
fn incremental_reanalysis_survives_offset_and_node_id_shifts() {
    let demo = incremental_demo();
    let session = AnalysisSession::new();
    session.analyze("demo.c", demo).unwrap();

    // Grow the *first* function body with real statements (not just a
    // comment): node ids and byte offsets of all later functions shift.
    let edited = demo.replacen(
        "grid[i] = 0.001 * i;",
        "grid[i] = 0.001 * i;\n    grid[i] = grid[i] + 0.0;",
        1,
    );
    assert_ne!(edited, demo);
    let incremental = session.analyze("demo.c", &edited).unwrap();
    let cold = AnalysisSession::new().analyze("demo.c", &edited).unwrap();
    assert_eq!(cold.rewrite.source, incremental.rewrite.source);
    assert_eq!(cold.plans.plans, incremental.plans.plans);
    let stats = session.cache_stats();
    assert!(
        stats.function_plan_hits >= 3,
        "unchanged kernel functions must be relocated, not re-planned: {stats:?}"
    );
}

/// Acceptance golden: a second process (here: a second session) started
/// with the same `cache_dir` reproduces all corpus rewrites byte-identically
/// from the persistent store without re-planning anything.
#[test]
fn persistent_store_reproduces_corpus_across_restart() {
    let dir = std::env::temp_dir().join(format!("ompdart-store-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = corpus();

    let first = Ompdart::builder().cache_dir(&dir).build();
    let mut cold_rewrites = Vec::new();
    for (name, source) in &corpus {
        let analysis = first.analyze(name, source).unwrap();
        cold_rewrites.push(analysis.rewritten_source().to_string());
    }
    let stats = first.session().cache_stats();
    assert_eq!(stats.store_hits, 0);
    assert_eq!(stats.store_misses, corpus.len() as u64);
    assert_eq!(
        first.session().artifact_store().unwrap().entry_count(),
        corpus.len()
    );

    // "Process restart": a brand-new tool over the same directory.
    let second = Ompdart::builder().cache_dir(&dir).build();
    for ((name, source), cold) in corpus.iter().zip(&cold_rewrites) {
        let analysis = second.analyze(name, source).unwrap();
        assert_eq!(
            analysis.rewritten_source(),
            cold,
            "{name}: store-served rewrite diverges"
        );
    }
    let stats = second.session().cache_stats();
    assert_eq!(stats.store_hits, corpus.len() as u64, "{stats:?}");
    assert_eq!(stats.store_misses, 0);
    assert_eq!(
        stats.function_plan_misses, 0,
        "a warm start must not re-plan any function: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every stage after parsing is function-granular: a one-function edit
/// re-collects accesses, re-seeds the local summary, and re-plans for the
/// edited function only — on every corpus unit — while the relocated
/// artifacts keep the result byte-identical to a cold run (pinned by the
/// golden test above).
#[test]
fn one_function_edit_misses_one_access_and_one_summary_on_all_benchmarks() {
    for (name, source) in corpus() {
        let session = AnalysisSession::new();
        session.analyze(&name, &source).unwrap();

        let (edited, edited_func) = one_function_edit(&name, &source)
            .unwrap_or_else(|| panic!("{name}: no editable function"));
        let before = session.cache_stats();
        let incremental = session.analyze(&name, &edited).unwrap();
        let after = session.cache_stats();

        let functions = incremental.parsed.unit.functions().count() as u64;
        let access_hits = after.function_access_hits - before.function_access_hits;
        let access_misses = after.function_access_misses - before.function_access_misses;
        let summary_hits = after.function_summary_hits - before.function_summary_hits;
        let summary_misses = after.function_summary_misses - before.function_summary_misses;
        assert_eq!(
            access_misses, 1,
            "{name}: only `{edited_func}` may re-collect accesses"
        );
        assert_eq!(access_hits, functions - 1, "{name}");
        assert_eq!(
            summary_misses, 1,
            "{name}: only `{edited_func}` may re-seed its summary"
        );
        assert_eq!(summary_hits, functions - 1, "{name}");
    }
}

/// The store key is the *content*, not the `(name, source)` pair: a
/// renamed file (same bytes, new name) starts warm from the entry its old
/// name wrote, rewriting byte-identically without planning a single
/// function — and its parse-side artifacts (diagnostics, source handle)
/// carry the *new* name, because they are rebuilt from the fresh parse
/// rather than persisted.
#[test]
fn renamed_file_starts_warm_from_the_content_addressed_store() {
    let dir = std::env::temp_dir().join(format!("ompdart-store-rename-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let demo = incremental_demo();

    let first = Ompdart::builder().cache_dir(&dir).build();
    let cold = first.analyze("original_name.c", demo).unwrap();

    // "Rename": a fresh process analyzes the same bytes under a new name.
    let second = Ompdart::builder().cache_dir(&dir).build();
    let warm = second.analyze("renamed_copy.c", demo).unwrap();
    let stats = second.session().cache_stats();
    assert_eq!(
        stats.store_hits, 1,
        "the rename must hit the store: {stats:?}"
    );
    assert_eq!(stats.function_plan_misses, 0, "{stats:?}");
    assert_eq!(warm.rewritten_source(), cold.rewritten_source());
    assert_eq!(warm.plans(), cold.plans());
    assert_eq!(warm.source_file().name(), "renamed_copy.c");

    // The warm start seeded the function-plan cache, so the first edit
    // under the *new* name is already incremental.
    let (edited, _) = one_function_edit("renamed_copy.c", demo).unwrap();
    second.analyze("renamed_copy.c", &edited).unwrap();
    let stats = second.session().cache_stats();
    assert_eq!(
        stats.function_plan_misses, 1,
        "the renamed file's first edit must re-plan one function: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The persistent store and the in-memory caches compose: within one
/// session the unit cache wins, across sessions the store wins, and an
/// edit falls back to incremental planning.
#[test]
fn store_unit_cache_and_function_cache_compose() {
    let dir = std::env::temp_dir().join(format!("ompdart-store-compose-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let demo = incremental_demo();

    let warmup = AnalysisSession::new().with_cache_dir(&dir);
    warmup.analyze("demo.c", demo).unwrap();

    let session = AnalysisSession::new().with_cache_dir(&dir);
    let served = session.analyze("demo.c", demo).unwrap();
    assert_eq!(session.cache_stats().store_hits, 1);
    // Same content again: the in-memory unit cache answers, not the store.
    let again = session.analyze("demo.c", demo).unwrap();
    assert!(Arc::ptr_eq(&served, &again));
    let stats = session.cache_stats();
    assert_eq!(stats.analysis_hits, 1);
    assert_eq!(stats.store_hits, 1, "the store must not be consulted twice");

    // An edit misses the store, but the store hit above *seeded* the
    // function-plan cache from the persisted per-function keys — so even
    // the first edit after a warm start re-plans only the edited function.
    let functions = served.parsed.unit.functions().count() as u64;
    let (edited, _) = one_function_edit("demo.c", demo).unwrap();
    session.analyze("demo.c", &edited).unwrap();
    let stats = session.cache_stats();
    assert_eq!(stats.store_misses, 1);
    assert_eq!(
        stats.function_plan_misses, 1,
        "the warm-started first edit must already be incremental: {stats:?}"
    );
    assert_eq!(stats.function_plan_hits, functions - 1);
    let edited2 = edited.replacen("0.001 * i", "0.001 * i + 0.0", 1);
    assert_ne!(edited2, edited);
    let before = session.cache_stats();
    session.analyze("demo.c", &edited2).unwrap();
    let after = session.cache_stats();
    assert_eq!(
        after.function_plan_hits - before.function_plan_hits,
        functions - 1,
        "second edit must reuse all unchanged functions"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
