//! Integration tests for the staged `AnalysisSession` / `BatchDriver` API:
//! stage-by-stage artifacts must compose to exactly the facade result, the
//! artifact cache must serve repeated analyses without re-running any
//! stage, the batch driver must analyze several translation units
//! concurrently with deterministic, order-preserving results, and the
//! serialized Mapping IR must round-trip into a byte-identical rewrite.

use ompdart_core::pipeline::Stage;
use ompdart_core::plan::plans_from_json;
use ompdart_core::{
    apply_plans, AnalysisSession, BatchDriver, OmpDartOptions, Ompdart, StageError,
};
use ompdart_sim::{simulate_source, SimConfig};
use std::sync::Arc;
use std::time::Duration;

/// Golden test: running the six stages by hand produces byte-identical
/// output and identical plans/statistics to the `Ompdart` facade on every
/// bundled benchmark.
#[test]
fn staged_artifacts_compose_to_the_facade_analysis() {
    for bench in ompdart_suite::all_benchmarks() {
        let session = AnalysisSession::new();
        let parsed = session
            .parse(&bench.unoptimized_file(), bench.unoptimized)
            .unwrap();
        let graphs = session.graphs(&parsed);
        let accesses = session.accesses(&parsed, &graphs);
        let summaries = session.summaries(&parsed, &accesses);
        let plans = session.plan(&parsed, &graphs, &accesses, &summaries);
        let rewritten = session.rewrite(&parsed, &graphs, &plans);

        let facade = Ompdart::builder()
            .build()
            .analyze(&bench.unoptimized_file(), bench.unoptimized)
            .unwrap();
        assert_eq!(
            facade.rewritten_source(),
            rewritten.source,
            "{}: staged rewrite diverges from the facade analysis",
            bench.name
        );
        assert_eq!(facade.stats(), plans.stats, "{}", bench.name);
        assert_eq!(facade.plans(), &plans.plans[..], "{}", bench.name);
    }
}

/// Acceptance golden: serializing every benchmark's plans to JSON,
/// deserializing them, and re-running only the rewrite stage yields the
/// one-shot rewrite byte for byte. Node ids survive the round-trip because
/// parsing is deterministic.
#[test]
fn plan_json_round_trip_rewrites_byte_identically() {
    for bench in ompdart_suite::all_benchmarks() {
        let tool = Ompdart::builder().build();
        let analysis = tool
            .analyze(&bench.unoptimized_file(), bench.unoptimized)
            .unwrap();

        let json = analysis.plans_json();
        let plans = plans_from_json(&json)
            .unwrap_or_else(|e| panic!("{}: plan JSON failed to parse: {e}", bench.name));
        assert_eq!(&plans[..], analysis.plans(), "{}", bench.name);

        // Rebuild the rewrite from the deserialized plans alone plus a
        // *fresh* parse of the same source: node ids in the JSON must line
        // up with a new AST because parsing is deterministic.
        let parsed =
            ompdart_core::pipeline::stage_parse(&bench.unoptimized_file(), bench.unoptimized)
                .unwrap();
        let graphs = ompdart_core::pipeline::stage_graphs(&parsed.unit);
        let rewritten = apply_plans(&parsed.file, &parsed.unit, &graphs.graphs, &plans);
        assert_eq!(
            rewritten,
            analysis.rewritten_source(),
            "{}: rewrite from deserialized plans diverges",
            bench.name
        );
    }
}

/// The cache returns identical plans for identical source content and skips
/// every stage: counters prove the second run did not re-parse, and the
/// cumulative stage timings do not advance on a hit.
#[test]
fn artifact_cache_returns_identical_plans_without_reparsing() {
    let bench = ompdart_suite::by_name("backprop").unwrap();
    let session = AnalysisSession::new();

    let first = session
        .analyze(&bench.unoptimized_file(), bench.unoptimized)
        .unwrap();
    let stats = session.cache_stats();
    assert_eq!(stats.analysis_misses, 1);
    assert_eq!(stats.parse_misses, 1);
    let spent = session.timings().total();
    assert!(spent > Duration::ZERO);

    let second = session
        .analyze(&bench.unoptimized_file(), bench.unoptimized)
        .unwrap();
    let stats = session.cache_stats();
    assert_eq!(
        stats.analysis_hits, 1,
        "identical content must hit the cache"
    );
    assert_eq!(stats.parse_misses, 1, "the cache hit must skip re-parsing");
    assert_eq!(
        session.timings().total(),
        spent,
        "a cache hit must not spend any stage time"
    );
    assert!(Arc::ptr_eq(&first, &second));
    assert_eq!(first.plans.plans.len(), second.plans.plans.len());
    assert_eq!(first.rewrite.source, second.rewrite.source);

    // Different content (same name) misses the cache.
    let other = ompdart_suite::by_name("nw").unwrap();
    session
        .analyze(&bench.unoptimized_file(), other.unoptimized)
        .unwrap();
    assert_eq!(session.cache_stats().analysis_misses, 2);
}

/// BatchDriver: at least two translation units analyzed concurrently, with
/// order-preserving results that match the facade and still simulate
/// correctly.
#[test]
fn batch_driver_matches_sequential_analyses() {
    let inputs: Vec<(String, String)> = ompdart_suite::all_benchmarks()
        .iter()
        .take(4)
        .map(|b| (b.unoptimized_file(), b.unoptimized.to_string()))
        .collect();
    assert!(inputs.len() >= 2);

    let driver = BatchDriver::new().with_threads(4);
    let batch = driver.analyze_all(&inputs);
    assert_eq!(batch.len(), inputs.len());

    for ((name, source), result) in inputs.iter().zip(&batch) {
        let analysis = result.as_ref().expect("batch unit failed");
        assert_eq!(&analysis.parsed.name, name);
        let sequential = Ompdart::builder().build().analyze(name, source).unwrap();
        assert_eq!(
            sequential.rewritten_source(),
            analysis.rewrite.source,
            "{name}: batch result diverges from sequential analysis"
        );
        // The batch-produced mapping must still preserve program semantics.
        let before = simulate_source(source, SimConfig::default()).unwrap();
        let after = simulate_source(&analysis.rewrite.source, SimConfig::default()).unwrap();
        assert_eq!(before.output, after.output, "{name}");
    }
}

/// Regression: `transform_all` (and `analyze_all`) must keep results in
/// input order even when worker threads finish out of order. Twelve units
/// of very different sizes over few threads maximize reordering pressure.
#[test]
fn batch_results_preserve_input_order_with_many_units() {
    let mut inputs: Vec<(String, String)> = Vec::new();
    for i in 0..12 {
        // Alternate tiny units with large bundled benchmarks so completion
        // order differs wildly from submission order.
        if i % 2 == 0 {
            let bench = ompdart_suite::all_benchmarks()[i % 9].clone();
            inputs.push((format!("unit{i}.c"), bench.unoptimized.to_string()));
        } else {
            inputs.push((
                format!("unit{i}.c"),
                format!(
                    "#define N 8\ndouble t{i}[N];\nvoid f{i}() {{\n  #pragma omp target teams distribute parallel for\n  for (int j = 0; j < N; j++) t{i}[j] = {i};\n}}\n"
                ),
            ));
        }
    }
    assert!(inputs.len() > 8);

    let driver = BatchDriver::new().with_threads(3);
    let results = driver.transform_all(&inputs);
    assert_eq!(results.len(), inputs.len());
    for (i, ((name, source), result)) in inputs.iter().zip(&results).enumerate() {
        let result = result.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
        // Slot i must hold the analysis of input i: the tiny odd units
        // mention their own function name, the big even units match the
        // sequential transform of the same source.
        let expected = Ompdart::builder().build().analyze(name, source).unwrap();
        assert_eq!(
            result.transformed_source,
            expected.rewritten_source(),
            "slot {i} holds the wrong unit's result"
        );
        if i % 2 == 1 {
            assert!(
                result.transformed_source.contains(&format!("f{i}")),
                "slot {i} lost its unit"
            );
        }
    }
}

/// Stage errors are typed, carry the failing stage, and convert into the
/// legacy `OmpDartError` for the compatibility wrappers.
#[test]
fn typed_stage_errors_translate_to_legacy_errors() {
    let session = AnalysisSession::new();
    let err = session
        .analyze("broken.c", "int main( { return 0; }\n")
        .unwrap_err();
    assert_eq!(err.stage(), Stage::Parse);
    let legacy: ompdart_core::OmpDartError = err.into();
    assert!(matches!(legacy, ompdart_core::OmpDartError::ParseFailed(_)));

    // The lenient option is honoured by the session exactly like the
    // facade's `accept_existing_mappings`.
    let mapped = ompdart_suite::by_name("ace").unwrap().expert;
    let strict = AnalysisSession::new();
    assert!(matches!(
        strict.analyze("ace_expert.c", mapped),
        Err(StageError::AlreadyMapped { .. })
    ));
    let lenient = AnalysisSession::with_options(OmpDartOptions {
        reject_existing_mappings: false,
        ..OmpDartOptions::default()
    });
    assert!(lenient.analyze("ace_expert.c", mapped).is_ok());
}
