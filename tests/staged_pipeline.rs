//! Integration tests for the staged `AnalysisSession` / `BatchDriver` API:
//! stage-by-stage artifacts must compose to exactly the one-shot
//! `transform` result, the artifact cache must serve repeated analyses
//! without re-running any stage, and the batch driver must analyze several
//! translation units concurrently with deterministic results.

use ompdart_core::pipeline::Stage;
use ompdart_core::{transform, AnalysisSession, BatchDriver, OmpDart, OmpDartOptions, StageError};
use ompdart_sim::{simulate_source, SimConfig};
use std::sync::Arc;
use std::time::Duration;

/// Golden test: running the six stages by hand produces byte-identical
/// output and identical plans/statistics to the legacy one-shot `transform`
/// on every bundled benchmark.
#[test]
fn staged_artifacts_compose_to_the_one_shot_transform() {
    for bench in ompdart_suite::all_benchmarks() {
        let session = AnalysisSession::new();
        let parsed = session
            .parse(&bench.unoptimized_file(), bench.unoptimized)
            .unwrap();
        let graphs = session.graphs(&parsed);
        let accesses = session.accesses(&parsed, &graphs);
        let summaries = session.summaries(&parsed, &accesses);
        let plans = session.plan(&parsed, &graphs, &accesses, &summaries);
        let rewritten = session.rewrite(&parsed, &graphs, &plans);

        let one_shot = transform(&bench.unoptimized_file(), bench.unoptimized).unwrap();
        assert_eq!(
            one_shot.transformed_source, rewritten.source,
            "{}: staged rewrite diverges from one-shot transform",
            bench.name
        );
        assert_eq!(one_shot.stats, plans.stats, "{}", bench.name);
        assert_eq!(one_shot.plans.len(), plans.plans.len(), "{}", bench.name);
        for (a, b) in one_shot.plans.iter().zip(plans.plans.iter()) {
            assert_eq!(a.function, b.function, "{}", bench.name);
            assert_eq!(a.maps.len(), b.maps.len(), "{}", bench.name);
            assert_eq!(a.updates.len(), b.updates.len(), "{}", bench.name);
        }
    }
}

/// The cache returns identical plans for identical source content and skips
/// every stage: counters prove the second run did not re-parse, and the
/// cumulative stage timings do not advance on a hit.
#[test]
fn artifact_cache_returns_identical_plans_without_reparsing() {
    let bench = ompdart_suite::by_name("backprop").unwrap();
    let session = AnalysisSession::new();

    let first = session
        .analyze(&bench.unoptimized_file(), bench.unoptimized)
        .unwrap();
    let stats = session.cache_stats();
    assert_eq!(stats.analysis_misses, 1);
    assert_eq!(stats.parse_misses, 1);
    let spent = session.timings().total();
    assert!(spent > Duration::ZERO);

    let second = session
        .analyze(&bench.unoptimized_file(), bench.unoptimized)
        .unwrap();
    let stats = session.cache_stats();
    assert_eq!(
        stats.analysis_hits, 1,
        "identical content must hit the cache"
    );
    assert_eq!(stats.parse_misses, 1, "the cache hit must skip re-parsing");
    assert_eq!(
        session.timings().total(),
        spent,
        "a cache hit must not spend any stage time"
    );
    assert!(Arc::ptr_eq(&first, &second));
    assert_eq!(first.plans.plans.len(), second.plans.plans.len());
    assert_eq!(first.rewrite.source, second.rewrite.source);

    // Different content (same name) misses the cache.
    let other = ompdart_suite::by_name("nw").unwrap();
    session
        .analyze(&bench.unoptimized_file(), other.unoptimized)
        .unwrap();
    assert_eq!(session.cache_stats().analysis_misses, 2);
}

/// BatchDriver: at least two translation units analyzed concurrently, with
/// order-preserving results that match the sequential wrappers and still
/// simulate correctly.
#[test]
fn batch_driver_matches_sequential_transforms() {
    let inputs: Vec<(String, String)> = ompdart_suite::all_benchmarks()
        .iter()
        .take(4)
        .map(|b| (b.unoptimized_file(), b.unoptimized.to_string()))
        .collect();
    assert!(inputs.len() >= 2);

    let driver = BatchDriver::new().with_threads(4);
    let batch = driver.analyze_all(&inputs);
    assert_eq!(batch.len(), inputs.len());

    for ((name, source), result) in inputs.iter().zip(&batch) {
        let analysis = result.as_ref().expect("batch unit failed");
        assert_eq!(&analysis.parsed.name, name);
        let sequential = OmpDart::new().transform_source(name, source).unwrap();
        assert_eq!(
            sequential.transformed_source, analysis.rewrite.source,
            "{name}: batch result diverges from sequential transform"
        );
        // The batch-produced mapping must still preserve program semantics.
        let before = simulate_source(source, SimConfig::default()).unwrap();
        let after = simulate_source(&analysis.rewrite.source, SimConfig::default()).unwrap();
        assert_eq!(before.output, after.output, "{name}");
    }
}

/// Stage errors are typed, carry the failing stage, and convert into the
/// legacy `OmpDartError` for the compatibility wrappers.
#[test]
fn typed_stage_errors_translate_to_legacy_errors() {
    let session = AnalysisSession::new();
    let err = session
        .analyze("broken.c", "int main( { return 0; }\n")
        .unwrap_err();
    assert_eq!(err.stage(), Stage::Parse);
    let legacy: ompdart_core::OmpDartError = err.into();
    assert!(matches!(legacy, ompdart_core::OmpDartError::ParseFailed(_)));

    // The lenient option is honoured by the session exactly like the
    // one-shot wrapper.
    let mapped = ompdart_suite::by_name("ace").unwrap().expert;
    let strict = AnalysisSession::new();
    assert!(matches!(
        strict.analyze("ace_expert.c", mapped),
        Err(StageError::AlreadyMapped { .. })
    ));
    let lenient = AnalysisSession::with_options(OmpDartOptions {
        reject_existing_mappings: false,
        ..OmpDartOptions::default()
    });
    assert!(lenient.analyze("ace_expert.c", mapped).is_ok());
}
