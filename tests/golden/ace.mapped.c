/* ace (HeCBench) — Allen-Cahn phase-field simulation of dendritic
 * solidification. Six kernels per time step (two stencils, two field
 * updates, two buffer rotations). Unoptimized variant: implicit mappings
 * re-transfer every field six times per step. */
#define N 1024
#define STEPS 6

double phi[N];
double phinew[N];
double lap[N];
double u[N];
double unew[N];
double cur[N];

int main() {
  for (int i = 0; i < N; i++) {
    phi[i] = ((i * 13) % 29) * 0.03 - 0.4;
    u[i] = ((i * 7) % 17) * 0.01;
  }
  #pragma omp target data map(tofrom: phi, u) map(alloc: lap, phinew, cur, unew)
  {
  for (int s = 0; s < STEPS; s++) {
    #pragma omp target teams distribute parallel for
    for (int i = 1; i < N - 1; i++) {
      lap[i] = phi[i - 1] + phi[i + 1] - 2.0 * phi[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 1; i < N - 1; i++) {
      phinew[i] = phi[i] + 0.2 * lap[i] - 0.05 * phi[i] * (phi[i] * phi[i] - 1.0);
    }
    #pragma omp target teams distribute parallel for
    for (int i = 1; i < N - 1; i++) {
      cur[i] = u[i - 1] + u[i + 1] - 2.0 * u[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 1; i < N - 1; i++) {
      unew[i] = u[i] + 0.1 * cur[i] + 0.25 * (phinew[i] - phi[i]);
    }
    #pragma omp target teams distribute parallel for
    for (int i = 1; i < N - 1; i++) {
      phi[i] = phinew[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 1; i < N - 1; i++) {
      u[i] = unew[i];
    }
  }
  }
  double phisum = 0.0;
  double usum = 0.0;
  for (int i = 0; i < N; i++) {
    phisum += phi[i];
    usum += u[i];
  }
  printf("phi %.6f u %.6f\n", phisum, usum);
  return 0;
}
