/* backprop (Rodinia) — trains the weights of connecting nodes on a neural
 * network layer. Two kernels per epoch (forward pass, weight update) with
 * a host error computation between them. Unoptimized variant: the weight
 * matrix bounces between host and device twice per epoch. */
#define NIN 512
#define NHID 64
#define EPOCHS 8

double input[NIN];
double w[NIN * NHID];
double hidden[NHID];
double target[NHID];
double delta[NHID];

int main() {
  double momentum = 0.7;
  double decay = 0.999;
  for (int i = 0; i < NIN; i++) {
    input[i] = ((i * 11) % 23) * 0.02;
  }
  for (int j = 0; j < NHID; j++) {
    target[j] = ((j * 5) % 13) * 0.1;
  }
  for (int i = 0; i < NIN * NHID; i++) {
    w[i] = ((i * 17) % 31) * 0.001;
  }
  #pragma omp target data map(to: input) map(tofrom: w) map(alloc: hidden, delta)
  {
  for (int e = 0; e < EPOCHS; e++) {
    #pragma omp target teams distribute parallel for
    for (int j = 0; j < NHID; j++) {
      double s = 0.0;
      for (int i = 0; i < NIN; i++) {
        s += input[i] * w[i * NHID + j];
      }
      hidden[j] = s / (1.0 + s * s);
    }
    #pragma omp target update from(hidden)
    for (int j = 0; j < NHID; j++) {
      delta[j] = (target[j] - hidden[j]) * 0.3;
    }
    #pragma omp target update to(delta)
    #pragma omp target teams distribute parallel for firstprivate(decay, momentum)
    for (int j = 0; j < NHID; j++) {
      for (int i = 0; i < NIN; i++) {
        w[i * NHID + j] = w[i * NHID + j] * decay + input[i] * delta[j] * momentum;
      }
    }
  }
  }
  double werr = 0.0;
  for (int j = 0; j < NHID; j++) {
    werr += (target[j] - hidden[j]) * (target[j] - hidden[j]);
  }
  printf("err %.6f w0 %.6f\n", werr, w[NHID + 1]);
  return 0;
}
