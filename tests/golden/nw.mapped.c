/* nw (Rodinia) — Needleman-Wunsch global optimization for DNA sequence
 * alignment, processed in anti-diagonal rounds (forward scoring sweep
 * plus traceback buffer rotation). Unoptimized variant: the sequences
 * and score rows are re-sent for every round, and the gap penalty and
 * match bonus scalars ride along implicitly. */
#define LEN 1024
#define ROUNDS 6

int seq1[LEN];
int seq2[LEN];
int score[LEN];
int back[LEN];

int main() {
  int penalty = 2;
  int match = 3;
  for (int i = 0; i < LEN; i++) {
    seq1[i] = (i * 7 + 1) % 4;
    seq2[i] = (i * 11 + 2) % 4;
    score[i] = 0;
    back[i] = 0;
  }
  #pragma omp target data map(to: back, seq1, seq2) map(tofrom: score)
  {
  for (int r = 0; r < ROUNDS; r++) {
    #pragma omp target teams distribute parallel for firstprivate(match, penalty)
    for (int i = 1; i < LEN; i++) {
      int diag = back[i - 1] + (seq1[i] == seq2[i]) * match - (seq1[i] != seq2[i]) * penalty;
      int gap1 = back[i] - penalty;
      int gap2 = score[i - 1] - penalty;
      int best = diag;
      if (gap1 > best) { best = gap1; }
      if (gap2 > best) { best = gap2; }
      score[i] = best;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < LEN; i++) {
      back[i] = score[i];
    }
  }
  }
  int total = 0;
  for (int i = 0; i < LEN; i++) {
    total += score[i];
  }
  printf("alignment %d %d\n", total, score[LEN - 1]);
  return 0;
}
