/* lulesh (HeCBench) — proxy application that simulates shock
 * hydrodynamics on an unstructured mesh (reduced). Fifteen kernels per
 * time step cover force calculation, acceleration, velocity and position
 * integration, kinematics and the material model; the host only needs
 * the per-element time-step constraints after each step. Unoptimized
 * variant: every field bounces between host and device on every kernel. */
#define N 400
#define STEPS 6

double x[N];
double y[N];
double z[N];
double xd[N];
double yd[N];
double zd[N];
double xdd[N];
double ydd[N];
double zdd[N];
double fx[N];
double fy[N];
double fz[N];
double nodalMass[N];
double e[N];
double p[N];
double q[N];
double v[N];
double vol[N];
double volold[N];
double delv[N];
double ss[N];
double arealg[N];
double work[N];
double dtc[N];

int main() {
  for (int i = 0; i < N; i++) {
    x[i] = i * 0.01;
    y[i] = i * 0.02;
    z[i] = i * 0.015;
    xd[i] = 0.0;
    yd[i] = 0.0;
    zd[i] = 0.0;
    nodalMass[i] = 1.0 + (i % 5) * 0.1;
    e[i] = 0.5 + (i % 7) * 0.05;
    p[i] = 0.1;
    q[i] = 0.01;
    v[i] = 1.0;
    vol[i] = 1.0;
    volold[i] = 1.0;
    ss[i] = 1.2;
    work[i] = 0.0;
  }
  double mindtsum = 0.0;
  #pragma omp target data map(to: p, q, y, z, nodalMass, xd, yd, zd, vol, v, ss) map(tofrom: x, e, work) map(alloc: fx, fy, fz, xdd, ydd, zdd, volold, delv, arealg, dtc)
  {
  for (int s = 0; s < STEPS; s++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      fx[i] = 0.0 - (p[i] + q[i]) * (x[i] * 0.001 + 1.0);
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      fy[i] = 0.0 - (p[i] + q[i]) * (y[i] * 0.001 + 1.0);
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      fz[i] = 0.0 - (p[i] + q[i]) * (z[i] * 0.001 + 1.0);
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      xdd[i] = fx[i] / nodalMass[i];
      ydd[i] = fy[i] / nodalMass[i];
      zdd[i] = fz[i] / nodalMass[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      xd[i] += xdd[i] * 0.01;
      yd[i] += ydd[i] * 0.01;
      zd[i] += zdd[i] * 0.01;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      x[i] += xd[i] * 0.01;
      y[i] += yd[i] * 0.01;
      z[i] += zd[i] * 0.01;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      volold[i] = vol[i];
      vol[i] = 1.0 + (x[i] + y[i] + z[i]) * 0.001;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      delv[i] = vol[i] - volold[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      e[i] += (p[i] + q[i]) * delv[i] * 0.5;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      p[i] = e[i] * 0.3 / (v[i] + 0.1);
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      if (delv[i] < 0.0) {
        q[i] = ss[i] * (0.0 - delv[i]) * 2.0;
      } else {
        q[i] = 0.0;
      }
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      ss[i] = (p[i] + e[i]) * 0.4 + 0.8;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      arealg[i] = vol[i] * 0.6 + 0.2;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      work[i] += p[i] * delv[i];
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      dtc[i] = arealg[i] / (ss[i] + 0.01);
    }
    double mindt = 1000.0;
    #pragma omp target update from(dtc)
    for (int i = 0; i < N; i++) {
      if (dtc[i] < mindt) { mindt = dtc[i]; }
    }
    mindtsum += mindt;
  }
  }
  double esum = 0.0;
  double wsum = 0.0;
  for (int i = 0; i < N; i++) {
    esum += e[i];
    wsum += work[i];
  }
  printf("dt %.6f e %.6f w %.6f x %.6f\n", mindtsum, esum, wsum, x[N / 2]);
  return 0;
}
