/* clenergy (HeCBench) — evaluates electrostatic potentials on a lattice
 * by direct Coulomb summation, one z-slice at a time. Unoptimized
 * variant: the atom arrays and the small grid-descriptor struct are
 * re-transferred for every slice. */
#define NATOMS 128
#define VOLS 512
#define SLICES 6

struct Grid {
  double spacing;
  double originx;
  double zscale;
};

struct Grid grid;
double atomx[NATOMS];
double atomy[NATOMS];
double atomq[NATOMS];
double energy[VOLS];
double potential[VOLS];

int main() {
  grid.spacing = 0.5;
  grid.originx = 0.0 - 8.0;
  grid.zscale = 1.25;
  for (int a = 0; a < NATOMS; a++) {
    atomx[a] = ((a * 13) % 41) * 0.4 - 8.0;
    atomy[a] = ((a * 29) % 37) * 0.45 - 8.0;
    atomq[a] = ((a % 7) - 3) * 0.25;
  }
  for (int v = 0; v < VOLS; v++) {
    potential[v] = 0.0;
  }
  #pragma omp target data map(to: grid, atomx, atomy, atomq) map(tofrom: potential) map(alloc: energy)
  {
  for (int slice = 0; slice < SLICES; slice++) {
    #pragma omp target teams distribute parallel for firstprivate(slice)
    for (int v = 0; v < VOLS; v++) {
      double gx = grid.originx + (v % 32) * grid.spacing;
      double gy = grid.originx + (v / 32) * grid.spacing;
      double gz = slice * grid.zscale;
      double e = 0.0;
      for (int a = 0; a < NATOMS; a++) {
        double dx = gx - atomx[a];
        double dy = gy - atomy[a];
        e += atomq[a] / (dx * dx + dy * dy + gz * gz + 1.0);
      }
      energy[v] = e;
    }
    #pragma omp target teams distribute parallel for
    for (int v = 0; v < VOLS; v++) {
      potential[v] += energy[v];
    }
  }
  }
  double total = 0.0;
  for (int v = 0; v < VOLS; v++) {
    total += potential[v];
  }
  printf("potential %.6f\n", total);
  return 0;
}
