/* lulesh (HeCBench), multi-file port — mesh unit. Defines the node- and
 * element-centered fields and the force/acceleration phase (4 kernels).
 * Every unit carries the guarded shared header, so each file parses
 * stand-alone and the concatenation of all three units is itself a valid
 * single translation unit (the golden equivalence the link stage pins). */
#ifndef LULESH_MF_H
#define LULESH_MF_H
#define N 400
#define STEPS 6
extern double x[N];
extern double y[N];
extern double z[N];
extern double xd[N];
extern double yd[N];
extern double zd[N];
extern double xdd[N];
extern double ydd[N];
extern double zdd[N];
extern double fx[N];
extern double fy[N];
extern double fz[N];
extern double nodalMass[N];
extern double e[N];
extern double p[N];
extern double q[N];
extern double v[N];
extern double vol[N];
extern double volold[N];
extern double delv[N];
extern double ss[N];
extern double arealg[N];
extern double work[N];
extern double dtc[N];
void init_mesh();
void calc_forces();
void update_eos();
double reduce_dtc(double *d, int n);
#endif

double x[N];
double y[N];
double z[N];
double xd[N];
double yd[N];
double zd[N];
double xdd[N];
double ydd[N];
double zdd[N];
double fx[N];
double fy[N];
double fz[N];
double nodalMass[N];
double e[N];
double p[N];
double q[N];
double v[N];
double vol[N];
double volold[N];
double delv[N];
double ss[N];
double arealg[N];
double work[N];
double dtc[N];

void init_mesh() {
  for (int i = 0; i < N; i++) {
    x[i] = i * 0.01;
    y[i] = i * 0.02;
    z[i] = i * 0.015;
    xd[i] = 0.0;
    yd[i] = 0.0;
    zd[i] = 0.0;
    nodalMass[i] = 1.0 + (i % 5) * 0.1;
    e[i] = 0.5 + (i % 7) * 0.05;
    p[i] = 0.1;
    q[i] = 0.01;
    v[i] = 1.0;
    vol[i] = 1.0;
    volold[i] = 1.0;
    ss[i] = 1.2;
    work[i] = 0.0;
  }
}

void calc_forces() {
  #pragma omp target data map(to: p, q, x, y, z, nodalMass) map(from: fx, fy, fz, xdd, ydd, zdd)
  {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    fx[i] = 0.0 - (p[i] + q[i]) * (x[i] * 0.001 + 1.0);
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    fy[i] = 0.0 - (p[i] + q[i]) * (y[i] * 0.001 + 1.0);
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    fz[i] = 0.0 - (p[i] + q[i]) * (z[i] * 0.001 + 1.0);
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    xdd[i] = fx[i] / nodalMass[i];
    ydd[i] = fy[i] / nodalMass[i];
    zdd[i] = fz[i] / nodalMass[i];
  }
  }
}
