/* lulesh (HeCBench), multi-file port — material/EOS unit: the equation of
 * state and material model (6 kernels) plus the host-side time-step
 * reduction. `reduce_dtc` takes a plain (non-const) pointer but only
 * *reads* it — exactly the case where closed-world analysis must assume a
 * pessimistic host write at every call site and the link stage's real
 * cross-unit summary wins. */
#ifndef LULESH_MF_H
#define LULESH_MF_H
#define N 400
#define STEPS 6
extern double x[N];
extern double y[N];
extern double z[N];
extern double xd[N];
extern double yd[N];
extern double zd[N];
extern double xdd[N];
extern double ydd[N];
extern double zdd[N];
extern double fx[N];
extern double fy[N];
extern double fz[N];
extern double nodalMass[N];
extern double e[N];
extern double p[N];
extern double q[N];
extern double v[N];
extern double vol[N];
extern double volold[N];
extern double delv[N];
extern double ss[N];
extern double arealg[N];
extern double work[N];
extern double dtc[N];
void init_mesh();
void calc_forces();
void update_eos();
double reduce_dtc(double *d, int n);
#endif

void update_eos() {
  #pragma omp target data map(to: delv, v, vol) map(from: arealg) map(tofrom: p, q, e, ss, work)
  {
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    e[i] += (p[i] + q[i]) * delv[i] * 0.5;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    p[i] = e[i] * 0.3 / (v[i] + 0.1);
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    if (delv[i] < 0.0) {
      q[i] = ss[i] * (0.0 - delv[i]) * 2.0;
    } else {
      q[i] = 0.0;
    }
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    ss[i] = (p[i] + e[i]) * 0.4 + 0.8;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    arealg[i] = vol[i] * 0.6 + 0.2;
  }
  #pragma omp target teams distribute parallel for
  for (int i = 0; i < N; i++) {
    work[i] += p[i] * delv[i];
  }
  }
}

double reduce_dtc(double *d, int n) {
  double mindt = 1000.0;
  for (int i = 0; i < n; i++) {
    if (d[i] < mindt) { mindt = d[i]; }
  }
  return mindt;
}
