/* lulesh (HeCBench), multi-file port — driver unit: the time-step loop
 * with the integration and kinematics kernels (5 kernels), calling into
 * the mesh unit (forces) and the EOS unit (material model, time-step
 * reduction). The kernels and the last host readers of `e`/`work` live in
 * different files, so whole-program liveness across unit boundaries is
 * what keeps the exit copies — and the cross-unit summaries are what keep
 * `reduce_dtc` from forcing a pessimistic write-back every step. */
#ifndef LULESH_MF_H
#define LULESH_MF_H
#define N 400
#define STEPS 6
extern double x[N];
extern double y[N];
extern double z[N];
extern double xd[N];
extern double yd[N];
extern double zd[N];
extern double xdd[N];
extern double ydd[N];
extern double zdd[N];
extern double fx[N];
extern double fy[N];
extern double fz[N];
extern double nodalMass[N];
extern double e[N];
extern double p[N];
extern double q[N];
extern double v[N];
extern double vol[N];
extern double volold[N];
extern double delv[N];
extern double ss[N];
extern double arealg[N];
extern double work[N];
extern double dtc[N];
void init_mesh();
void calc_forces();
void update_eos();
double reduce_dtc(double *d, int n);
#endif

int main() {
  init_mesh();
  double mindtsum = 0.0;
  #pragma omp target data map(to: nodalMass, v) map(from: xdd, ydd, zdd, volold, delv, arealg) map(tofrom: xd, yd, zd, x, y, z, vol, ss, fx, fy, fz, p, q, e, work) map(alloc: dtc)
  {
  for (int s = 0; s < STEPS; s++) {
    calc_forces();
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      xd[i] += xdd[i] * 0.01;
      yd[i] += ydd[i] * 0.01;
      zd[i] += zdd[i] * 0.01;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      x[i] += xd[i] * 0.01;
      y[i] += yd[i] * 0.01;
      z[i] += zd[i] * 0.01;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      volold[i] = vol[i];
      vol[i] = 1.0 + (x[i] + y[i] + z[i]) * 0.001;
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      delv[i] = vol[i] - volold[i];
    }
    update_eos();
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) {
      dtc[i] = arealg[i] / (ss[i] + 0.01);
    }
    #pragma omp target update from(dtc)
    mindtsum += reduce_dtc(dtc, N);
  }
  }
  double esum = 0.0;
  double wsum = 0.0;
  for (int i = 0; i < N; i++) {
    esum += e[i];
    wsum += work[i];
  }
  printf("dt %.6f e %.6f w %.6f x %.6f\n", mindtsum, esum, wsum, x[N / 2]);
  return 0;
}
