/* bfs (Rodinia) — traverses all the connected components in a graph.
 * Level-synchronous frontier expansion: one kernel expands the frontier,
 * one rotates the masks, and the host checks the termination flag each
 * level. Unoptimized variant: the edge lists ride along on every launch. */
#define NN 256
#define DEG 4
#define LEVELS 8

int edges[NN * DEG];
int frontier[NN];
int next[NN];
int cost[NN];
int changed[1];

int main() {
  for (int i = 0; i < NN; i++) {
    edges[i * DEG] = (i + 1) % NN;
    edges[i * DEG + 1] = (i + 7) % NN;
    edges[i * DEG + 2] = (i + 31) % NN;
    edges[i * DEG + 3] = (i * 3 + 5) % NN;
    frontier[i] = 0;
    next[i] = 0;
    cost[i] = 0 - 1;
  }
  frontier[0] = 1;
  cost[0] = 0;
  int reached = 1;
  #pragma omp target data map(to: frontier, edges, next) map(tofrom: cost) map(alloc: changed)
  {
  for (int lvl = 0; lvl < LEVELS; lvl++) {
    changed[0] = 0;
    #pragma omp target update to(changed)
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < NN; i++) {
      if (frontier[i]) {
        for (int k = 0; k < DEG; k++) {
          int j = edges[i * DEG + k];
          if (cost[j] < 0) {
            cost[j] = cost[i] + 1;
            next[j] = 1;
            changed[0] = 1;
          }
        }
      }
    }
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < NN; i++) {
      frontier[i] = next[i];
      next[i] = 0;
    }
    #pragma omp target update from(changed)
    if (changed[0]) {
      reached = reached + 1;
    }
  }
  }
  int total = 0;
  for (int i = 0; i < NN; i++) {
    total += cost[i];
  }
  printf("levels %d cost %d\n", reached, total);
  return 0;
}
