/* accuracy (HeCBench) — classification accuracy of a neural network.
 * Unoptimized variant: no explicit data mappings; every kernel launch
 * relies on the implicit tofrom rules, so the logits matrix is re-sent
 * for every batch. */
#define NSAMPLES 1024
#define NCLASS 8
#define BATCHES 8
#define BATCH 128

double logits[NSAMPLES * NCLASS];
int labels[NSAMPLES];
int hits[NSAMPLES];

int main() {
  double threshold = 0.0005;
  for (int i = 0; i < NSAMPLES; i++) {
    labels[i] = (i * 5 + 3) % NCLASS;
    for (int c = 0; c < NCLASS; c++) {
      logits[i * NCLASS + c] = ((i * 7 + c * 13) % 97) * 0.01;
    }
    if (i % 4) {
      logits[i * NCLASS + labels[i]] += 2.0;
    }
  }
  int correct = 0;
  #pragma omp target data map(to: logits, labels) map(alloc: hits)
  {
  for (int b = 0; b < BATCHES; b++) {
    int base = b * BATCH;
    #pragma omp target teams distribute parallel for firstprivate(base, threshold)
    for (int i = 0; i < BATCH; i++) {
      int s = base + i;
      int best = 0;
      for (int c = 1; c < NCLASS; c++) {
        if (logits[s * NCLASS + c] > logits[s * NCLASS + best] + threshold) {
          best = c;
        }
      }
      hits[s] = (best == labels[s]);
    }
    #pragma omp target update from(hits)
    for (int i = 0; i < BATCH; i++) {
      correct += hits[base + i];
    }
  }
  }
  printf("accuracy %d / %d\n", correct, NSAMPLES);
  return 0;
}
