/* xsbench (HeCBench) — key computational kernel of the Monte-Carlo
 * neutron transport algorithm: randomized macroscopic cross-section
 * lookups over the nuclide grids, one batch of particle histories per
 * outer iteration. Unoptimized variant: the read-only cross-section
 * tables are re-sent for every batch. */
#define GRIDPTS 2048
#define LOOKUPS 1024
#define BATCHES 5

double xs_total[GRIDPTS];
double xs_fission[GRIDPTS];
double results[LOOKUPS];

int main() {
  double flux = 0.7;
  for (int g = 0; g < GRIDPTS; g++) {
    xs_total[g] = ((g * 13) % 101) * 0.01 + 0.1;
    xs_fission[g] = ((g * 7) % 53) * 0.005;
  }
  for (int l = 0; l < LOOKUPS; l++) {
    results[l] = 0.0;
  }
  #pragma omp target data map(to: xs_total, xs_fission) map(tofrom: results)
  {
  for (int b = 0; b < BATCHES; b++) {
    #pragma omp target teams distribute parallel for firstprivate(b, flux)
    for (int l = 0; l < LOOKUPS; l++) {
      int h = (l * 97 + b * 31 + l * l) % GRIDPTS;
      results[l] += xs_total[h] * flux + xs_fission[h] * (1.0 - flux);
    }
  }
  }
  double verification = 0.0;
  for (int l = 0; l < LOOKUPS; l++) {
    verification += results[l];
  }
  printf("verification %.6f\n", verification);
  return 0;
}
