/* hotspot (Rodinia) — thermal simulation estimating processor temperature
 * from the floor plan. One ping-pong stencil kernel per time step; the
 * six physical constants ride along as scalars. Unoptimized variant:
 * the temperature and power grids plus all six scalars are re-mapped on
 * every step. */
#define GRID 32
#define CELLS 1024
#define STEPS 10

double temp[CELLS];
double power[CELLS];
double result[CELLS];

int main() {
  double cap = 0.5;
  double rx = 1.5;
  double ry = 1.2;
  double rz = 80.0;
  double amb = 80.0;
  double stepsize = 0.0625;
  for (int i = 0; i < CELLS; i++) {
    temp[i] = 80.0 + ((i * 7) % 13) * 0.5;
    power[i] = ((i * 11) % 19) * 0.002;
  }
  #pragma omp target data map(to: power) map(tofrom: temp, result)
  {
  for (int s = 0; s < STEPS; s++) {
    #pragma omp target teams distribute parallel for firstprivate(s, stepsize, cap, ry, rx, amb, rz)
    for (int idx = 0; idx < CELLS; idx++) {
      int r = idx / GRID;
      int c = idx % GRID;
      double up = temp[idx];
      double down = temp[idx];
      double left = temp[idx];
      double right = temp[idx];
      if (s % 2) {
        up = result[idx];
        down = result[idx];
        left = result[idx];
        right = result[idx];
        if (r > 0) { up = result[idx - GRID]; }
        if (r < GRID - 1) { down = result[idx + GRID]; }
        if (c > 0) { left = result[idx - 1]; }
        if (c < GRID - 1) { right = result[idx + 1]; }
        double center = result[idx];
        double delta = (stepsize / cap) * (power[idx]
          + (up + down - 2.0 * center) / ry
          + (left + right - 2.0 * center) / rx
          + (amb - center) / rz);
        temp[idx] = center + delta;
      } else {
        if (r > 0) { up = temp[idx - GRID]; }
        if (r < GRID - 1) { down = temp[idx + GRID]; }
        if (c > 0) { left = temp[idx - 1]; }
        if (c < GRID - 1) { right = temp[idx + 1]; }
        double center = temp[idx];
        double delta = (stepsize / cap) * (power[idx]
          + (up + down - 2.0 * center) / ry
          + (left + right - 2.0 * center) / rx
          + (amb - center) / rz);
        result[idx] = center + delta;
      }
    }
  }
  }
  double peak = 0.0;
  for (int i = 0; i < CELLS; i++) {
    if (temp[i] > peak) { peak = temp[i]; }
    if (result[i] > peak) { peak = result[i]; }
  }
  printf("peak %.6f\n", peak);
  return 0;
}
