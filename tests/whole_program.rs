//! Golden tests for the whole-program link stage.
//!
//! The defining property: analyzing `k` translation units as one *linked
//! program* rewrites each unit byte-identically to analyzing the
//! concatenation of all `k` unit sources as a single translation unit —
//! with zero pessimistic unknown-callee fallbacks for intra-program calls.
//! On top of that sit the invalidation guarantees: an interface-preserving
//! edit to one unit re-plans only that unit's edited function, an
//! interface-*changing* edit re-plans exactly the dependent functions in
//! other units, and a persistent-store warm start re-seeds the
//! function-plan cache so the first edit after a restart is already
//! incremental.

use ompdart_core::{
    AnalysisSession, Ompdart, ProgramDriver, ProgramError, ProvenanceFact, UnitServe,
};
use ompdart_suite::{lulesh_multifile, lulesh_multifile_concat};
use std::sync::Arc;

const HEADER: &str = "\
#ifndef SHARED_H
#define SHARED_H
#define N 32
extern double data[N];
extern double out[N];
void scale(double *p, int n);
double checksum(const double *p, int n);
#endif
";

fn unit_main() -> String {
    format!(
        "{HEADER}double data[N];
double out[N];
int main() {{
  for (int i = 0; i < N; i++) data[i] = i * 0.5;
  for (int it = 0; it < 3; it++) {{
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) out[i] = data[i] * 2.0;
    scale(out, N);
  }}
  printf(\"%f\\n\", checksum(out, N));
  return 0;
}}
"
    )
}

fn unit_helpers() -> String {
    // `scale` only *writes* its argument: strictly weaker than the
    // pessimistic read+write fallback, so linking observably improves the
    // caller's mapping (no `update from` before the call).
    format!(
        "{HEADER}void scale(double *p, int n) {{
  for (int i = 0; i < n; i++) p[i] = 0.25 * n;
}}
double checksum(const double *p, int n) {{
  double s = 0.0;
  for (int i = 0; i < n; i++) s = s + p[i];
  return s;
}}
"
    )
}

fn two_unit_program() -> Vec<(String, String)> {
    vec![
        ("prog_main.c".to_string(), unit_main()),
        ("prog_helpers.c".to_string(), unit_helpers()),
    ]
}

fn owned(units: &[(&str, &str)]) -> Vec<(String, String)> {
    units
        .iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect()
}

/// Linked multi-unit analysis == single-unit analysis of the concatenation,
/// byte for byte, with zero unknown-callee fallbacks.
#[test]
fn linked_program_matches_concatenated_single_unit() {
    let inputs = two_unit_program();
    let driver = ProgramDriver::new();
    let program = driver.analyze_program(&inputs).expect("link failed");

    let concat_src: String = inputs.iter().map(|(_, s)| s.as_str()).collect();
    let single = AnalysisSession::new();
    let cold = single
        .analyze("concat.c", &concat_src)
        .expect("concat failed");

    let linked_concat = program.concatenated_rewrite();
    assert_eq!(
        linked_concat, cold.rewrite.source,
        "linked rewrite must equal the single-unit rewrite of the concatenation"
    );

    // Every intra-program call resolved to a real summary.
    assert_eq!(program.stats().unknown_callee_fallbacks, 0);
    // ...while the same units analyzed as closed worlds fall back.
    let closed = AnalysisSession::new();
    let solo = closed
        .analyze(&inputs[0].0, &inputs[0].1)
        .expect("solo failed");
    assert!(
        solo.plans.stats.unknown_callee_fallbacks > 0,
        "the closed-world analysis of the main unit must hit the fallback"
    );
    assert_ne!(
        solo.rewrite.source, program.units[0].rewrite.source,
        "linking must actually change the main unit's mapping"
    );
}

/// Acceptance golden: the three-file lulesh port's linked rewrite is
/// byte-identical to the single-file (concatenated) version, with zero
/// pessimistic fallbacks for intra-program calls.
#[test]
fn lulesh_multifile_golden() {
    let inputs = owned(&lulesh_multifile());
    let driver = ProgramDriver::new();
    let program = driver.analyze_program(&inputs).expect("link failed");

    let concat = lulesh_multifile_concat();
    let cold = AnalysisSession::new()
        .analyze("lulesh_mf_concat.c", &concat)
        .expect("concat analysis failed");
    assert_eq!(
        program.concatenated_rewrite(),
        cold.rewrite.source,
        "linked lulesh must equal the concatenated single-unit rewrite"
    );
    let stats = program.stats();
    assert_eq!(
        stats.unknown_callee_fallbacks, 0,
        "no intra-program call may fall back to the pessimistic assumption"
    );
    assert_eq!(stats.kernels, 15, "the port keeps lulesh's 15 kernels");

    // The driver's mapping decisions record their cross-unit origins: the
    // `reduce_dtc` read-only summary from the EOS unit decides an update.
    let main_unit = &program.units[2];
    let cross_unit_detail = main_unit
        .plans
        .plans
        .iter()
        .flat_map(|p| p.provenances())
        .any(|p| p.detail.contains("cross-unit summary of `reduce_dtc`"));
    assert!(
        cross_unit_detail,
        "a provenance in the driver unit must cite the cross-unit summary:\n{}",
        main_unit.explain()
    );

    // Closed-world analysis of the driver unit alone hits the fallback.
    let solo = AnalysisSession::new()
        .analyze(&inputs[2].0, &inputs[2].1)
        .unwrap();
    assert!(solo.plans.stats.unknown_callee_fallbacks > 0);
}

/// A one-unit program is the degenerate case: byte-identical to the plain
/// single-unit session path.
#[test]
fn single_unit_program_is_degenerate() {
    let (name, source) = ("only.c".to_string(), unit_main());
    let driver = ProgramDriver::new();
    let program = driver
        .analyze_program(&[(name.clone(), source.clone())])
        .expect("link failed");
    let plain = AnalysisSession::new().analyze(&name, &source).unwrap();
    assert_eq!(program.units[0].rewrite.source, plain.rewrite.source);
    assert_eq!(program.units[0].plans.stats, plain.plans.stats);
    assert_eq!(program.units[0].plans.plans, plain.plans.plans);
}

/// An interface-preserving edit to one unit re-plans only the edited
/// function of that unit; every other unit is served from the linked cache
/// without planning anything.
#[test]
fn interface_preserving_edit_replans_only_the_edited_unit() {
    let inputs = owned(&lulesh_multifile());
    let session = Arc::new(AnalysisSession::new());
    let driver = ProgramDriver::with_session(Arc::clone(&session));
    driver.analyze_program(&inputs).expect("cold link failed");

    // A comment inside `update_eos`'s body: content changes, the exported
    // interface (prototypes, summaries, referenced vars) does not.
    let mut edited = inputs.clone();
    edited[1].1 = edited[1].1.replacen(
        "e[i] += (p[i] + q[i])",
        "/* tweak */ e[i] += (p[i] + q[i])",
        1,
    );
    assert_ne!(edited[1].1, inputs[1].1);

    let before = session.cache_stats();
    let program = driver.analyze_program(&edited).expect("warm link failed");
    let after = session.cache_stats();

    assert_eq!(
        after.function_plan_misses - before.function_plan_misses,
        1,
        "only `update_eos` may be re-planned"
    );
    assert_eq!(program.served[0], UnitServe::Cached, "mesh unit untouched");
    assert_eq!(
        program.served[2],
        UnitServe::Cached,
        "driver unit untouched"
    );
    assert!(matches!(
        program.served[1],
        UnitServe::Planned {
            replanned: 1,
            reused: 1
        }
    ));

    // The incremental result equals a cold analysis of the edited program.
    let cold = ProgramDriver::new().analyze_program(&edited).unwrap();
    assert_eq!(program.concatenated_rewrite(), cold.concatenated_rewrite());
}

/// An interface-*changing* edit (the helper turns from reader into writer)
/// re-plans the dependent function in the other unit — exactly once — while
/// independent functions keep their cached plans.
#[test]
fn interface_change_replans_dependents_in_other_units() {
    let inputs = owned(&lulesh_multifile());
    let session = Arc::new(AnalysisSession::new());
    let driver = ProgramDriver::with_session(Arc::clone(&session));
    driver.analyze_program(&inputs).expect("cold link failed");

    // `reduce_dtc` now also writes its argument: its exported summary (and
    // therefore the EOS unit's interface) changes.
    let mut edited = inputs.clone();
    edited[1].1 = edited[1].1.replacen(
        "if (d[i] < mindt) { mindt = d[i]; }",
        "if (d[i] < mindt) { mindt = d[i]; d[i] = mindt; }",
        1,
    );
    assert_ne!(edited[1].1, inputs[1].1);

    let before = session.cache_stats();
    let program = driver.analyze_program(&edited).expect("warm link failed");
    let after = session.cache_stats();

    // Re-planned: `reduce_dtc` (edited) and `main` (its caller in another
    // unit). The mesh unit's functions don't depend on the EOS interface,
    // so they relocate from the cache even though the unit re-plans.
    assert_eq!(
        after.function_plan_misses - before.function_plan_misses,
        2,
        "exactly the edited function and its cross-unit caller re-plan"
    );
    assert!(matches!(
        program.served[2],
        UnitServe::Planned { replanned: 1, .. }
    ));
    assert!(matches!(
        program.served[0],
        UnitServe::Planned {
            replanned: 0,
            reused: 2
        }
    ));

    let cold = ProgramDriver::new().analyze_program(&edited).unwrap();
    assert_eq!(program.concatenated_rewrite(), cold.concatenated_rewrite());
}

/// Unknown extern callees produce a dedicated provenance fact anchored at
/// the call site instead of silently inheriting the pessimistic effect.
#[test]
fn unknown_callee_pessimism_is_explained() {
    let session = AnalysisSession::new();
    let source = unit_main();
    let analysis = session.analyze("prog_main.c", &source).unwrap();
    let plan = analysis
        .plans
        .plans
        .iter()
        .find(|p| p.function == "main")
        .expect("main must have a plan");
    let unknown: Vec<_> = plan
        .provenances()
        .into_iter()
        .filter(|p| p.fact == ProvenanceFact::UnknownCalleePessimistic)
        .collect();
    assert!(
        !unknown.is_empty(),
        "the pessimistic `scale` call must be explained:\n{}",
        analysis.explain()
    );
    for p in &unknown {
        assert!(
            p.detail.contains("`scale`") || p.detail.contains("`checksum`"),
            "the provenance names the unknown callee: {}",
            p.detail
        );
        let span = p.span.expect("call-site span must be recorded");
        let snippet = analysis.parsed.file.snippet(span);
        assert!(
            snippet.contains("scale") || snippet.contains("checksum"),
            "span must point at the call site, got `{snippet}`"
        );
    }
    // The explain rendering surfaces the fact key.
    assert!(analysis.explain().contains("unknown_callee_pessimistic"));
}

/// Whole-program analyses warm-start from the persistent store: a second
/// driver over the same cache dir rewrites byte-identically with zero
/// planned functions, and the *first edit after the restart* is already
/// incremental thanks to the persisted function-plan keys.
#[test]
fn program_store_warm_start_and_seeded_first_edit() {
    let dir = std::env::temp_dir().join(format!("ompdart-wp-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let inputs = owned(&lulesh_multifile());

    let first = Ompdart::builder().cache_dir(&dir).build();
    let cold = first.analyze_program(&inputs).expect("cold run failed");
    assert!(cold
        .served
        .iter()
        .all(|s| matches!(s, UnitServe::Planned { .. })));

    // "Process restart": fresh session, same cache dir.
    let second = Ompdart::builder().cache_dir(&dir).build();
    let warm = second.analyze_program(&inputs).expect("warm run failed");
    assert!(
        warm.served.iter().all(|s| *s == UnitServe::Store),
        "all units must be served from the store: {:?}",
        warm.served
    );
    assert_eq!(
        warm.concatenated_rewrite(),
        cold.concatenated_rewrite(),
        "store-served program rewrite diverges"
    );
    let stats = second.session().cache_stats();
    assert_eq!(stats.function_plan_misses, 0, "{stats:?}");

    // First edit after the warm start: the persisted per-function keys
    // seeded the plan cache, so only the edited function re-plans.
    let mut edited = inputs.clone();
    edited[1].1 = edited[1].1.replacen(
        "e[i] += (p[i] + q[i])",
        "/* warm */ e[i] += (p[i] + q[i])",
        1,
    );
    let program = second.analyze_program(&edited).expect("edit run failed");
    let stats = second.session().cache_stats();
    assert_eq!(
        stats.function_plan_misses, 1,
        "the warm-started first edit must already be incremental: {stats:?}"
    );
    assert!(matches!(
        program.served[1],
        UnitServe::Planned {
            replanned: 1,
            reused: 1
        }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Duplicate definitions across units are a link error, not silent
/// last-writer-wins behavior.
#[test]
fn duplicate_definitions_are_rejected() {
    let inputs = vec![
        ("a.c".to_string(), "void f() { }\n".to_string()),
        ("b.c".to_string(), "void f() { }\n".to_string()),
    ];
    let err = ProgramDriver::new().analyze_program(&inputs).unwrap_err();
    match err {
        ProgramError::DuplicateFunction { function, units } => {
            assert_eq!(function, "f");
            assert_eq!(units, ["a.c".to_string(), "b.c".to_string()]);
        }
        other => panic!("expected DuplicateFunction, got {other:?}"),
    }

    // A parse failure in any unit names the failing unit.
    let inputs = vec![
        ("ok.c".to_string(), "void g() { }\n".to_string()),
        (
            "broken.c".to_string(),
            "int main( { return 0; }\n".to_string(),
        ),
    ];
    let err = ProgramDriver::new().analyze_program(&inputs).unwrap_err();
    match err {
        ProgramError::Unit { name, .. } => assert_eq!(name, "broken.c"),
        other => panic!("expected Unit error, got {other:?}"),
    }
}

/// Output preservation end to end: the linked program's mapped
/// concatenation simulates to the same output as the unmapped program.
#[test]
fn linked_lulesh_preserves_program_output() {
    use ompdart_sim::{simulate_source, SimConfig};

    let inputs = owned(&lulesh_multifile());
    let program = ProgramDriver::new().analyze_program(&inputs).unwrap();
    let before = simulate_source(&lulesh_multifile_concat(), SimConfig::default()).unwrap();
    let after = simulate_source(&program.concatenated_rewrite(), SimConfig::default()).unwrap();
    assert_eq!(before.output, after.output);
}
