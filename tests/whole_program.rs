//! Golden tests for the whole-program link stage.
//!
//! The defining property: analyzing `k` translation units as one *linked
//! program* rewrites each unit byte-identically to analyzing the
//! concatenation of all `k` unit sources as a single translation unit —
//! with zero pessimistic unknown-callee fallbacks for intra-program calls.
//! On top of that sit the invalidation guarantees: an interface-preserving
//! edit to one unit re-plans only that unit's edited function, an
//! interface-*changing* edit re-plans exactly the dependent functions in
//! other units, and a persistent-store warm start re-seeds the
//! function-plan cache so the first edit after a restart is already
//! incremental.

use ompdart_core::{
    AnalysisSession, Ompdart, ProgramDriver, ProgramError, ProvenanceFact, UnitServe,
};
use ompdart_suite::{lulesh_multifile, lulesh_multifile_concat};
use std::sync::Arc;

/// Counter deltas between two cache-stats snapshots, for the stage-miss
/// assertions below.
fn delta(
    before: ompdart_core::CacheStats,
    after: ompdart_core::CacheStats,
) -> (u64, u64, u64, u64) {
    (
        after.function_access_misses - before.function_access_misses,
        after.function_summary_misses - before.function_summary_misses,
        after.function_plan_misses - before.function_plan_misses,
        after.relink_reseeded_functions - before.relink_reseeded_functions,
    )
}

const HEADER: &str = "\
#ifndef SHARED_H
#define SHARED_H
#define N 32
extern double data[N];
extern double out[N];
void scale(double *p, int n);
double checksum(const double *p, int n);
#endif
";

fn unit_main() -> String {
    format!(
        "{HEADER}double data[N];
double out[N];
int main() {{
  for (int i = 0; i < N; i++) data[i] = i * 0.5;
  for (int it = 0; it < 3; it++) {{
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) out[i] = data[i] * 2.0;
    scale(out, N);
  }}
  printf(\"%f\\n\", checksum(out, N));
  return 0;
}}
"
    )
}

fn unit_helpers() -> String {
    // `scale` only *writes* its argument: strictly weaker than the
    // pessimistic read+write fallback, so linking observably improves the
    // caller's mapping (no `update from` before the call).
    format!(
        "{HEADER}void scale(double *p, int n) {{
  for (int i = 0; i < n; i++) p[i] = 0.25 * n;
}}
double checksum(const double *p, int n) {{
  double s = 0.0;
  for (int i = 0; i < n; i++) s = s + p[i];
  return s;
}}
"
    )
}

fn two_unit_program() -> Vec<(String, String)> {
    vec![
        ("prog_main.c".to_string(), unit_main()),
        ("prog_helpers.c".to_string(), unit_helpers()),
    ]
}

fn owned(units: &[(&str, &str)]) -> Vec<(String, String)> {
    units
        .iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect()
}

/// Linked multi-unit analysis == single-unit analysis of the concatenation,
/// byte for byte, with zero unknown-callee fallbacks.
#[test]
fn linked_program_matches_concatenated_single_unit() {
    let inputs = two_unit_program();
    let driver = ProgramDriver::new();
    let program = driver.analyze_program(&inputs).expect("link failed");

    let concat_src: String = inputs.iter().map(|(_, s)| s.as_str()).collect();
    let single = AnalysisSession::new();
    let cold = single
        .analyze("concat.c", &concat_src)
        .expect("concat failed");

    let linked_concat = program.concatenated_rewrite();
    assert_eq!(
        linked_concat, cold.rewrite.source,
        "linked rewrite must equal the single-unit rewrite of the concatenation"
    );

    // Every intra-program call resolved to a real summary.
    assert_eq!(program.stats().unknown_callee_fallbacks, 0);
    // ...while the same units analyzed as closed worlds fall back.
    let closed = AnalysisSession::new();
    let solo = closed
        .analyze(&inputs[0].0, &inputs[0].1)
        .expect("solo failed");
    assert!(
        solo.plans.stats.unknown_callee_fallbacks > 0,
        "the closed-world analysis of the main unit must hit the fallback"
    );
    assert_ne!(
        solo.rewrite.source, program.units[0].rewrite.source,
        "linking must actually change the main unit's mapping"
    );
}

/// Acceptance golden: the three-file lulesh port's linked rewrite is
/// byte-identical to the single-file (concatenated) version, with zero
/// pessimistic fallbacks for intra-program calls.
#[test]
fn lulesh_multifile_golden() {
    let inputs = owned(&lulesh_multifile());
    let driver = ProgramDriver::new();
    let program = driver.analyze_program(&inputs).expect("link failed");

    let concat = lulesh_multifile_concat();
    let cold = AnalysisSession::new()
        .analyze("lulesh_mf_concat.c", &concat)
        .expect("concat analysis failed");
    assert_eq!(
        program.concatenated_rewrite(),
        cold.rewrite.source,
        "linked lulesh must equal the concatenated single-unit rewrite"
    );
    let stats = program.stats();
    assert_eq!(
        stats.unknown_callee_fallbacks, 0,
        "no intra-program call may fall back to the pessimistic assumption"
    );
    assert_eq!(stats.kernels, 15, "the port keeps lulesh's 15 kernels");

    // The driver's mapping decisions record their cross-unit origins: the
    // `reduce_dtc` read-only summary from the EOS unit decides an update.
    let main_unit = &program.units[2];
    let cross_unit_detail = main_unit
        .plans
        .plans
        .iter()
        .flat_map(|p| p.provenances())
        .any(|p| p.detail.contains("cross-unit summary of `reduce_dtc`"));
    assert!(
        cross_unit_detail,
        "a provenance in the driver unit must cite the cross-unit summary:\n{}",
        main_unit.explain()
    );

    // Closed-world analysis of the driver unit alone hits the fallback.
    let solo = AnalysisSession::new()
        .analyze(&inputs[2].0, &inputs[2].1)
        .unwrap();
    assert!(solo.plans.stats.unknown_callee_fallbacks > 0);
}

/// A one-unit program is the degenerate case: byte-identical to the plain
/// single-unit session path.
#[test]
fn single_unit_program_is_degenerate() {
    let (name, source) = ("only.c".to_string(), unit_main());
    let driver = ProgramDriver::new();
    let program = driver
        .analyze_program(&[(name.clone(), source.clone())])
        .expect("link failed");
    let plain = AnalysisSession::new().analyze(&name, &source).unwrap();
    assert_eq!(program.units[0].rewrite.source, plain.rewrite.source);
    assert_eq!(program.units[0].plans.stats, plain.plans.stats);
    assert_eq!(program.units[0].plans.plans, plain.plans.plans);
}

/// An interface-preserving edit to one unit re-plans only the edited
/// function of that unit; every other unit is served from the linked cache
/// without planning anything.
#[test]
fn interface_preserving_edit_replans_only_the_edited_unit() {
    let inputs = owned(&lulesh_multifile());
    let session = Arc::new(AnalysisSession::new());
    let driver = ProgramDriver::with_session(Arc::clone(&session));
    driver.analyze_program(&inputs).expect("cold link failed");

    // A comment inside `update_eos`'s body: content changes, the exported
    // interface (prototypes, summaries, referenced vars) does not.
    let mut edited = inputs.clone();
    edited[1].1 = edited[1].1.replacen(
        "e[i] += (p[i] + q[i])",
        "/* tweak */ e[i] += (p[i] + q[i])",
        1,
    );
    assert_ne!(edited[1].1, inputs[1].1);

    let before = session.cache_stats();
    let program = driver.analyze_program(&edited).expect("warm link failed");
    let after = session.cache_stats();

    assert_eq!(
        after.function_plan_misses - before.function_plan_misses,
        1,
        "only `update_eos` may be re-planned"
    );
    assert_eq!(program.served[0], UnitServe::Cached, "mesh unit untouched");
    assert_eq!(
        program.served[2],
        UnitServe::Cached,
        "driver unit untouched"
    );
    assert!(matches!(
        program.served[1],
        UnitServe::Planned {
            replanned: 1,
            reused: 1
        }
    ));

    // The incremental result equals a cold analysis of the edited program.
    let cold = ProgramDriver::new().analyze_program(&edited).unwrap();
    assert_eq!(program.concatenated_rewrite(), cold.concatenated_rewrite());
}

/// An interface-*changing* edit (the helper turns from reader into writer)
/// re-plans the dependent function in the other unit — exactly once — while
/// units that never call into the edited unit keep their whole analyses:
/// the imports fingerprint is dependency-aware, so only the import cone
/// even re-probes the caches.
#[test]
fn interface_change_replans_dependents_in_other_units() {
    let inputs = owned(&lulesh_multifile());
    let session = Arc::new(AnalysisSession::new());
    let driver = ProgramDriver::with_session(Arc::clone(&session));
    driver.analyze_program(&inputs).expect("cold link failed");

    // `reduce_dtc` now also writes its argument: its exported summary (and
    // therefore the EOS unit's interface) changes.
    let mut edited = inputs.clone();
    edited[1].1 = edited[1].1.replacen(
        "if (d[i] < mindt) { mindt = d[i]; }",
        "if (d[i] < mindt) { mindt = d[i]; d[i] = mindt; }",
        1,
    );
    assert_ne!(edited[1].1, inputs[1].1);

    let before = session.cache_stats();
    let program = driver.analyze_program(&edited).expect("warm link failed");
    let after = session.cache_stats();

    // Re-planned: `reduce_dtc` (edited) and `main` (its caller in another
    // unit). The mesh unit names no EOS-unit callee, so its imported
    // surface is unchanged and the whole unit rides the identity fast
    // path — it never touches the plan cache at all.
    assert_eq!(
        after.function_plan_misses - before.function_plan_misses,
        2,
        "exactly the edited function and its cross-unit caller re-plan"
    );
    assert!(matches!(
        program.served[2],
        UnitServe::Planned { replanned: 1, .. }
    ));
    assert_eq!(
        program.served[0],
        UnitServe::Cached,
        "the mesh unit observes nothing from the EOS unit"
    );

    let cold = ProgramDriver::new().analyze_program(&edited).unwrap();
    assert_eq!(program.concatenated_rewrite(), cold.concatenated_rewrite());
}

/// The function-granular incremental core, end to end on a three-unit
/// program: a one-function edit re-runs access collection, local
/// summarization, and planning for **exactly one function**, the
/// incremental relink re-seeds only that function's call-graph cone (here:
/// just `main`, which nobody calls), and the result is byte-identical to a
/// cold link of the edited program.
#[test]
fn one_function_edit_misses_one_access_one_summary_one_plan_and_reseeds_its_cone() {
    let inputs = owned(&lulesh_multifile());
    let session = Arc::new(AnalysisSession::new());
    let driver = ProgramDriver::with_session(Arc::clone(&session));
    driver.analyze_program(&inputs).expect("cold link failed");

    // A *summary-changing* edit inside `main` (unit 2): the host write of
    // `work` is new in main's local summary, so the relink must re-derive
    // main — and only main, since no function calls it.
    let mut edited = inputs.clone();
    edited[2].1 = edited[2].1.replacen(
        "double esum = 0.0;",
        "double esum = 0.0;\n  work[0] = work[0];",
        1,
    );
    assert_ne!(edited[2].1, inputs[2].1);

    let before = session.cache_stats();
    let program = driver.analyze_program(&edited).expect("warm link failed");
    let after = session.cache_stats();
    let (access_misses, summary_misses, plan_misses, reseeded) = delta(before, after);
    assert_eq!(access_misses, 1, "only the edited function re-collects");
    assert_eq!(summary_misses, 1, "only the edited function re-summarizes");
    assert_eq!(plan_misses, 1, "only the edited function re-plans");
    assert_eq!(
        reseeded, 1,
        "the relink must re-seed exactly main's call-graph cone (main alone)"
    );

    let cold = ProgramDriver::new().analyze_program(&edited).unwrap();
    assert_eq!(
        program.concatenated_rewrite(),
        cold.concatenated_rewrite(),
        "incremental relink must be byte-identical to a cold link"
    );
    assert_eq!(program.link_passes, cold.link_passes);

    // An interface-preserving comment edit changes no local summary value:
    // the relink re-seeds *nothing* (the summary artifact still re-runs
    // for the edited function — one miss — but its value is unchanged).
    let mut commented = edited.clone();
    commented[1].1 = commented[1].1.replacen(
        "e[i] += (p[i] + q[i])",
        "/* tweak */ e[i] += (p[i] + q[i])",
        1,
    );
    let before = session.cache_stats();
    let program = driver.analyze_program(&commented).expect("relink failed");
    let after = session.cache_stats();
    let (access_misses, summary_misses, plan_misses, reseeded) = delta(before, after);
    assert_eq!(access_misses, 1);
    assert_eq!(summary_misses, 1);
    assert_eq!(plan_misses, 1);
    assert_eq!(
        reseeded, 0,
        "a value-preserving edit must not re-seed the fixed point"
    );
    let cold = ProgramDriver::new().analyze_program(&commented).unwrap();
    assert_eq!(program.concatenated_rewrite(), cold.concatenated_rewrite());

    // An unchanged relink re-seeds nothing and misses nothing.
    let before = session.cache_stats();
    driver.analyze_program(&commented).expect("relink failed");
    let after = session.cache_stats();
    assert_eq!(delta(before, after), (0, 0, 0, 0));
}

/// An edit that changes a *callee's* summary re-seeds the callee plus its
/// transitive callers — the reverse call-graph cone — and nothing else.
#[test]
fn relink_reseeds_the_reverse_call_graph_cone() {
    let inputs = owned(&lulesh_multifile());
    let session = Arc::new(AnalysisSession::new());
    let driver = ProgramDriver::with_session(Arc::clone(&session));
    driver.analyze_program(&inputs).expect("cold link failed");

    // `update_eos` (EOS unit) gains a host write of `e`: its summary
    // changes, and `main` (driver unit) calls it. Cone = {update_eos, main}.
    let mut edited = inputs.clone();
    edited[1].1 = edited[1].1.replacen(
        "void update_eos() {",
        "void update_eos() {\n  e[0] = e[0];",
        1,
    );
    assert_ne!(edited[1].1, inputs[1].1);

    let before = session.cache_stats();
    let program = driver.analyze_program(&edited).expect("warm link failed");
    let after = session.cache_stats();
    assert_eq!(
        after.relink_reseeded_functions - before.relink_reseeded_functions,
        2,
        "exactly update_eos and its caller main must be re-seeded"
    );
    let cold = ProgramDriver::new().analyze_program(&edited).unwrap();
    assert_eq!(program.concatenated_rewrite(), cold.concatenated_rewrite());
}

/// Cross-unit `static` functions link as unit-private symbols: two units
/// defining a same-named static are no longer rejected as duplicates, each
/// unit's calls resolve to its own static, and the two statics keep
/// independent summaries (one writes its argument, the other only reads
/// it) with zero pessimistic fallbacks.
#[test]
fn same_named_statics_link_as_unit_private_symbols() {
    let header = "\
#ifndef S_H
#define S_H
#define N 32
extern double abuf[N];
extern double bbuf[N];
void run_a();
void run_b();
#endif
";
    let unit_a = format!(
        "{header}double abuf[N];
static void helper(double *p, int n) {{
  for (int i = 0; i < n; i++) p[i] = 0.5;
}}
void run_a() {{
  for (int it = 0; it < 3; it++) {{
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) abuf[i] += 1.0;
    helper(abuf, N);
  }}
}}
"
    );
    let unit_b = format!(
        "{header}double bbuf[N];
double bsum;
static void helper(double *p, int n) {{
  for (int i = 0; i < n; i++) bsum = bsum + p[i];
}}
void run_b() {{
  for (int it = 0; it < 3; it++) {{
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) bbuf[i] += 2.0;
    helper(bbuf, N);
  }}
}}
"
    );
    let inputs = vec![("sa.c".to_string(), unit_a), ("sb.c".to_string(), unit_b)];

    let driver = ProgramDriver::new();
    let program = driver.link(&inputs).expect("statics must link");

    // Independent summaries under unit-private symbols.
    let a = program
        .linked
        .summaries
        .summary("helper@sa.c")
        .expect("sa.c's static must be summarized");
    assert!(a.param_effects[0].host_write, "sa.c's helper writes");
    assert!(!a.param_effects[0].host_read, "sa.c's helper never reads");
    let b = program
        .linked
        .summaries
        .summary("helper@sb.c")
        .expect("sb.c's static must be summarized");
    assert!(b.param_effects[0].host_read, "sb.c's helper reads");
    assert!(!b.param_effects[0].host_write, "sb.c's helper never writes");
    assert!(
        program.linked.summaries.summary("helper").is_none(),
        "no unit may export a plain `helper` symbol"
    );

    // Each unit's calls resolved to its own static: no pessimistic
    // fallbacks anywhere, and the full analysis goes through cleanly.
    let analysis = driver.analyze_program(&inputs).expect("analyze failed");
    assert_eq!(analysis.stats().unknown_callee_fallbacks, 0);
    let a_rewrite = &analysis.units[0].rewrite.source;
    let b_rewrite = &analysis.units[1].rewrite.source;
    assert!(a_rewrite.contains("#pragma omp target data"));
    assert!(b_rewrite.contains("#pragma omp target data"));
    // The read-only helper forces a copy-out before the host read; the
    // write-only helper instead needs the device refreshed afterwards.
    assert!(
        b_rewrite.contains("target update from(bbuf"),
        "sb.c's host read requires an update from:\n{b_rewrite}"
    );
    assert!(
        a_rewrite.contains("target update to(abuf"),
        "sa.c's host write requires an update to:\n{a_rewrite}"
    );

    // Non-static duplicates are still rejected (satellite does not weaken
    // the duplicate-definition check).
    let clash = vec![
        ("x.c".to_string(), "void f() { }\n".to_string()),
        ("y.c".to_string(), "void f() { }\n".to_string()),
    ];
    assert!(matches!(
        ProgramDriver::new().analyze_program(&clash),
        Err(ProgramError::DuplicateFunction { .. })
    ));
}

/// The opt-in pessimistic-globals mode: an unknown extern callee is
/// assumed to clobber every global, which forces re-synchronization
/// around the call — explained with the `unknown_callee_pessimistic`
/// provenance at the call site. The default mode keeps the documented
/// arguments-only assumption.
#[test]
fn pessimistic_globals_mode_clobbers_globals_at_unknown_calls() {
    let src = "\
#define N 16
double data[N];
void external_touch(int step);
int main() {
  for (int it = 0; it < 3; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) data[i] += 1.0;
    external_touch(it);
  }
  printf(\"%f\\n\", data[1]);
  return 0;
}
";
    // Default: the unknown callee takes no pointer, so it is assumed to
    // touch nothing — the mapping stays hoisted with no per-step updates.
    let default_tool = Ompdart::builder().build();
    let default_analysis = default_tool.analyze("pg.c", src).unwrap();
    assert_eq!(default_analysis.stats().unknown_callee_fallbacks, 0);
    assert!(
        !default_analysis
            .rewritten_source()
            .contains("target update"),
        "default mode must not re-synchronize:\n{}",
        default_analysis.rewritten_source()
    );

    // Opt-in: the callee clobbers `data` on the host every iteration.
    let tool = Ompdart::builder().pessimistic_globals(true).build();
    let analysis = tool.analyze("pg.c", src).unwrap();
    assert!(analysis.stats().unknown_callee_fallbacks > 0);
    assert!(
        analysis.rewritten_source().contains("target update"),
        "clobbered globals must be re-synchronized around the call:\n{}",
        analysis.rewritten_source()
    );
    let pessimistic: Vec<_> = analysis
        .plans()
        .iter()
        .flat_map(|p| p.provenances())
        .filter(|p| p.fact == ProvenanceFact::UnknownCalleePessimistic)
        .collect();
    assert!(
        !pessimistic.is_empty(),
        "the clobber must be explained:\n{}",
        analysis.explain()
    );
    assert!(
        pessimistic
            .iter()
            .any(|p| p.detail.contains("pessimistic-globals")
                && p.detail.contains("`external_touch`")),
        "the provenance must cite the mode and the callee"
    );
    // The span anchors at the call site.
    let cited = pessimistic.iter().any(|p| {
        p.span
            .is_some_and(|s| analysis.source_file().snippet(s).contains("external_touch"))
    });
    assert!(cited, "the provenance span must point at the call site");
}

/// The clobber is *transitive*: a helper that calls an unknown extern
/// carries the global clobber in its own interprocedural summary, so a
/// caller of the helper re-synchronizes around the helper call even though
/// the extern call site is a level of indirection away.
#[test]
fn pessimistic_globals_mode_is_transitive_through_summaries() {
    let src = "\
#define N 16
double data[N];
void external_touch(int step);
void helper(int step) {
  external_touch(step);
}
int main() {
  for (int it = 0; it < 3; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) data[i] += 1.0;
    helper(it);
  }
  printf(\"%f\\n\", data[1]);
  return 0;
}
";
    let default_tool = Ompdart::builder().build();
    let default_analysis = default_tool.analyze("pgt.c", src).unwrap();
    assert!(
        !default_analysis
            .rewritten_source()
            .contains("target update"),
        "default mode must not re-synchronize:\n{}",
        default_analysis.rewritten_source()
    );

    let tool = Ompdart::builder().pessimistic_globals(true).build();
    let analysis = tool.analyze("pgt.c", src).unwrap();
    assert!(
        analysis.rewritten_source().contains("target update"),
        "the clobber must reach main through helper's summary:\n{}",
        analysis.rewritten_source()
    );
    // The summary-level clobber also survives the simulator: the
    // transformed program still computes what the original computes.
    use ompdart_sim::{simulate_source, SimConfig};
    let before = simulate_source(src, SimConfig::default()).unwrap();
    let after = simulate_source(analysis.rewritten_source(), SimConfig::default()).unwrap();
    assert_eq!(before.output, after.output);
}

/// Unknown extern callees produce a dedicated provenance fact anchored at
/// the call site instead of silently inheriting the pessimistic effect.
#[test]
fn unknown_callee_pessimism_is_explained() {
    let session = AnalysisSession::new();
    let source = unit_main();
    let analysis = session.analyze("prog_main.c", &source).unwrap();
    let plan = analysis
        .plans
        .plans
        .iter()
        .find(|p| p.function == "main")
        .expect("main must have a plan");
    let unknown: Vec<_> = plan
        .provenances()
        .into_iter()
        .filter(|p| p.fact == ProvenanceFact::UnknownCalleePessimistic)
        .collect();
    assert!(
        !unknown.is_empty(),
        "the pessimistic `scale` call must be explained:\n{}",
        analysis.explain()
    );
    for p in &unknown {
        assert!(
            p.detail.contains("`scale`") || p.detail.contains("`checksum`"),
            "the provenance names the unknown callee: {}",
            p.detail
        );
        let span = p.span.expect("call-site span must be recorded");
        let snippet = analysis.parsed.file.snippet(span);
        assert!(
            snippet.contains("scale") || snippet.contains("checksum"),
            "span must point at the call site, got `{snippet}`"
        );
    }
    // The explain rendering surfaces the fact key.
    assert!(analysis.explain().contains("unknown_callee_pessimistic"));
}

/// Whole-program analyses warm-start from the persistent store: a second
/// driver over the same cache dir rewrites byte-identically with zero
/// planned functions, and the *first edit after the restart* is already
/// incremental thanks to the persisted function-plan keys.
#[test]
fn program_store_warm_start_and_seeded_first_edit() {
    let dir = std::env::temp_dir().join(format!("ompdart-wp-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let inputs = owned(&lulesh_multifile());

    let first = Ompdart::builder().cache_dir(&dir).build();
    let cold = first.analyze_program(&inputs).expect("cold run failed");
    assert!(cold
        .served
        .iter()
        .all(|s| matches!(s, UnitServe::Planned { .. })));

    // "Process restart": fresh session, same cache dir.
    let second = Ompdart::builder().cache_dir(&dir).build();
    let warm = second.analyze_program(&inputs).expect("warm run failed");
    assert!(
        warm.served.iter().all(|s| *s == UnitServe::Store),
        "all units must be served from the store: {:?}",
        warm.served
    );
    assert_eq!(
        warm.concatenated_rewrite(),
        cold.concatenated_rewrite(),
        "store-served program rewrite diverges"
    );
    let stats = second.session().cache_stats();
    assert_eq!(stats.function_plan_misses, 0, "{stats:?}");

    // First edit after the warm start: the persisted per-function keys
    // seeded the plan cache, so only the edited function re-plans.
    let mut edited = inputs.clone();
    edited[1].1 = edited[1].1.replacen(
        "e[i] += (p[i] + q[i])",
        "/* warm */ e[i] += (p[i] + q[i])",
        1,
    );
    let program = second.analyze_program(&edited).expect("edit run failed");
    let stats = second.session().cache_stats();
    assert_eq!(
        stats.function_plan_misses, 1,
        "the warm-started first edit must already be incremental: {stats:?}"
    );
    assert!(matches!(
        program.served[1],
        UnitServe::Planned {
            replanned: 1,
            reused: 1
        }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Duplicate definitions across units are a link error, not silent
/// last-writer-wins behavior.
#[test]
fn duplicate_definitions_are_rejected() {
    let inputs = vec![
        ("a.c".to_string(), "void f() { }\n".to_string()),
        ("b.c".to_string(), "void f() { }\n".to_string()),
    ];
    let err = ProgramDriver::new().analyze_program(&inputs).unwrap_err();
    match err {
        ProgramError::DuplicateFunction { function, units } => {
            assert_eq!(function, "f");
            assert_eq!(units, ["a.c".to_string(), "b.c".to_string()]);
        }
        other => panic!("expected DuplicateFunction, got {other:?}"),
    }

    // A parse failure in any unit names the failing unit.
    let inputs = vec![
        ("ok.c".to_string(), "void g() { }\n".to_string()),
        (
            "broken.c".to_string(),
            "int main( { return 0; }\n".to_string(),
        ),
    ];
    let err = ProgramDriver::new().analyze_program(&inputs).unwrap_err();
    match err {
        ProgramError::Unit { name, .. } => assert_eq!(name, "broken.c"),
        other => panic!("expected Unit error, got {other:?}"),
    }
}

/// Output preservation end to end: the linked program's mapped
/// concatenation simulates to the same output as the unmapped program.
#[test]
fn linked_lulesh_preserves_program_output() {
    use ompdart_sim::{simulate_source, SimConfig};

    let inputs = owned(&lulesh_multifile());
    let program = ProgramDriver::new().analyze_program(&inputs).unwrap();
    let before = simulate_source(&lulesh_multifile_concat(), SimConfig::default()).unwrap();
    let after = simulate_source(&program.concatenated_rewrite(), SimConfig::default()).unwrap();
    assert_eq!(before.output, after.output);
}

/// The round-level identity fast path: re-analyzing a byte-identical
/// program serves every unit from the previous round — zero function-plan
/// misses, zero relocations (all units `Cached`), `fast_path_hits == N` —
/// and the rewrites are byte-identical to the cold round.
#[test]
fn identity_fast_path_serves_unchanged_rounds_wholesale() {
    let inputs = owned(&lulesh_multifile());
    let session = Arc::new(AnalysisSession::new());
    let driver = ProgramDriver::with_session(Arc::clone(&session));
    let cold = driver.analyze_program(&inputs).expect("cold link failed");

    let before = session.cache_stats();
    let (warm, profile) = driver
        .analyze_program_profiled(&inputs)
        .expect("warm round failed");
    let after = session.cache_stats();

    assert_eq!(
        after.function_plan_misses - before.function_plan_misses,
        0,
        "a warm round must re-plan nothing"
    );
    assert_eq!(
        after.fast_path_hits - before.fast_path_hits,
        inputs.len() as u64,
        "every unit must be served by the identity fast path"
    );
    assert!(
        warm.served.iter().all(|s| *s == UnitServe::Cached),
        "a warm round must relocate nothing: {:?}",
        warm.served
    );
    assert_eq!(profile.units, inputs.len());
    assert_eq!(profile.fast_path_units, inputs.len());
    assert_eq!(
        warm.concatenated_rewrite(),
        cold.concatenated_rewrite(),
        "the fast path must return byte-identical rewrites"
    );
    assert_eq!(warm.link_passes, cold.link_passes);

    // The fast path keeps serving on every subsequent unchanged round.
    let before = session.cache_stats();
    driver.analyze_program(&inputs).expect("third round failed");
    let after = session.cache_stats();
    assert_eq!(
        after.fast_path_hits - before.fast_path_hits,
        inputs.len() as u64
    );
}

/// The unit-level identity fast path on edit rounds: an
/// interface-preserving edit to one unit leaves every *other* unit's
/// content and imported surface unchanged, so those units bypass even the
/// linked artifact cache and reuse the previous round's analyses outright.
#[test]
fn identity_fast_path_reuses_untouched_units_on_edit_rounds() {
    let inputs = owned(&lulesh_multifile());
    let session = Arc::new(AnalysisSession::new());
    let driver = ProgramDriver::with_session(Arc::clone(&session));
    driver.analyze_program(&inputs).expect("cold link failed");

    let mut edited = inputs.clone();
    edited[1].1 = edited[1].1.replacen(
        "e[i] += (p[i] + q[i])",
        "/* tweak */ e[i] += (p[i] + q[i])",
        1,
    );
    assert_ne!(edited[1].1, inputs[1].1);

    let before = session.cache_stats();
    let (program, profile) = driver
        .analyze_program_profiled(&edited)
        .expect("edit round failed");
    let after = session.cache_stats();

    assert_eq!(
        after.fast_path_hits - before.fast_path_hits,
        (inputs.len() - 1) as u64,
        "every unit but the edited one must ride the per-unit fast path"
    );
    assert_eq!(profile.fast_path_units, inputs.len() - 1);
    assert_eq!(program.served[0], UnitServe::Cached);
    assert_eq!(program.served[2], UnitServe::Cached);
    assert!(matches!(program.served[1], UnitServe::Planned { .. }));

    let cold = ProgramDriver::new().analyze_program(&edited).unwrap();
    assert_eq!(program.concatenated_rewrite(), cold.concatenated_rewrite());
}

/// Byte-identity is pinned at every worker count: the same program linked
/// with 1, 2, 4, and 8 threads — cold and warm — produces identical
/// rewrites and link passes.
#[test]
fn results_are_byte_identical_at_every_thread_count() {
    let inputs = owned(&lulesh_multifile());
    let reference = ProgramDriver::new()
        .with_threads(1)
        .analyze_program(&inputs)
        .expect("reference link failed");
    for threads in [2usize, 4, 8] {
        let driver = ProgramDriver::new().with_threads(threads);
        let cold = driver.analyze_program(&inputs).expect("cold link failed");
        assert_eq!(
            cold.concatenated_rewrite(),
            reference.concatenated_rewrite(),
            "cold link at {threads} threads must match the sequential result"
        );
        assert_eq!(cold.link_passes, reference.link_passes);
        let warm = driver.analyze_program(&inputs).expect("warm round failed");
        assert_eq!(
            warm.concatenated_rewrite(),
            reference.concatenated_rewrite(),
            "warm round at {threads} threads must match the sequential result"
        );
    }
}
