//! Property-based tests over the whole pipeline.
//!
//! Random (but well-formed) MiniC offload programs are generated from a
//! small grammar and pushed through parser, analysis, rewriting and the
//! offload simulator. The key invariants:
//!
//! * the transformed program still parses,
//! * OMPDart never changes program output (no stale-data bugs introduced),
//! * OMPDart never increases the number of bytes moved,
//! * the reference-count semantics of the device data environment hold for
//!   arbitrary nesting sequences.

use ompdart_core::OmpDart;
use ompdart_frontend::omp::MapType;
use ompdart_frontend::parser::parse_str;
use ompdart_sim::{
    simulate_source, DeviceEnv, Memory, ObjectKind, SimConfig, TransferProfile, Value,
};
use proptest::prelude::*;

/// A small statement menu used to build random host/device interleavings
/// around a single global array.
#[derive(Clone, Debug)]
enum Piece {
    HostInit(u8),
    HostAccumulate,
    KernelAdd(u8),
    KernelScale(u8),
    KernelInLoop { iters: u8, add: u8 },
    HostPrint,
}

fn piece_strategy() -> impl Strategy<Value = Piece> {
    prop_oneof![
        (0u8..5).prop_map(Piece::HostInit),
        Just(Piece::HostAccumulate),
        (1u8..4).prop_map(Piece::KernelAdd),
        (1u8..3).prop_map(Piece::KernelScale),
        ((2u8..5), (1u8..3)).prop_map(|(iters, add)| Piece::KernelInLoop { iters, add }),
        Just(Piece::HostPrint),
    ]
}

/// Render a random program. It always contains at least one kernel so the
/// tool has something to do, and always prints a final checksum.
fn render_program(pieces: &[Piece]) -> String {
    let mut body = String::new();
    for piece in pieces {
        match piece {
            Piece::HostInit(v) => {
                body.push_str(&format!(
                    "  for (int i = 0; i < N; i++) data[i] = {v} + i % 3;\n"
                ));
            }
            Piece::HostAccumulate => {
                body.push_str("  for (int i = 0; i < N; i++) checksum += data[i];\n");
            }
            Piece::KernelAdd(v) => {
                body.push_str(&format!(
                    "  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) data[i] += {v};\n"
                ));
            }
            Piece::KernelScale(v) => {
                body.push_str(&format!(
                    "  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) data[i] = data[i] * {v} + 1;\n"
                ));
            }
            Piece::KernelInLoop { iters, add } => {
                body.push_str(&format!(
                    "  for (int it = 0; it < {iters}; it++) {{\n    #pragma omp target teams distribute parallel for\n    for (int i = 0; i < N; i++) data[i] += {add};\n  }}\n"
                ));
            }
            Piece::HostPrint => {
                body.push_str("  printf(\"probe %d\\n\", data[7] + checksum);\n");
            }
        }
    }
    format!(
        "#define N 48\nint data[N];\nint main() {{\n  int checksum = 0;\n{body}  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) data[i] += 1;\n  for (int i = 0; i < N; i++) checksum += data[i];\n  printf(\"final %d\\n\", checksum);\n  return 0;\n}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Transformation preserves semantics and never moves more data.
    #[test]
    fn transformation_preserves_semantics(pieces in proptest::collection::vec(piece_strategy(), 1..6)) {
        let src = render_program(&pieces);
        let (_file, parsed) = parse_str("random.c", &src);
        prop_assert!(parsed.is_ok(), "generated program failed to parse:\n{src}");

        let result = OmpDart::new().transform_source("random.c", &src);
        let result = match result {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("transform failed: {e}\n{src}"))),
        };

        // The transformed source must still be a valid program.
        let (_f2, reparsed) = parse_str("random_out.c", &result.transformed_source);
        prop_assert!(reparsed.is_ok(), "transformed program failed to parse:\n{}", result.transformed_source);

        let before = simulate_source(&src, SimConfig::default()).expect("baseline failed");
        let after = simulate_source(&result.transformed_source, SimConfig::default())
            .expect("transformed program failed");
        prop_assert_eq!(&before.output, &after.output,
            "output changed\noriginal:\n{}\ntransformed:\n{}", src, result.transformed_source);
        prop_assert!(after.profile.total_bytes() <= before.profile.total_bytes(),
            "transformation increased data movement ({} -> {})\n{}",
            before.profile.total_bytes(), after.profile.total_bytes(), result.transformed_source);
        prop_assert!(after.profile.total_calls() <= before.profile.total_calls());
    }

    /// Device data-environment reference counting: for an arbitrary sequence
    /// of nested map types, data is copied to the device only on the 0->1
    /// transition and back only on the 1->0 transition, and presence ends
    /// balanced.
    #[test]
    fn device_env_reference_counting(map_types in proptest::collection::vec(0u8..4, 1..8)) {
        let to_type = |v: u8| match v {
            0 => MapType::To,
            1 => MapType::From,
            2 => MapType::ToFrom,
            _ => MapType::Alloc,
        };
        let mut mem = Memory::new();
        let obj = mem.alloc("a", ObjectKind::Array { dims: vec![16] }, 8, true);
        for i in 0..16 {
            mem.write(obj, i, Value::Double(i as f64));
        }
        let mut dev = DeviceEnv::new();
        let mut profile = TransferProfile::default();
        let kinds: Vec<MapType> = map_types.iter().map(|v| to_type(*v)).collect();

        // Enter all mappings (nested), then exit in reverse order.
        for mt in &kinds {
            dev.map_enter(&mem, obj, *mt, 128, &mut profile);
        }
        prop_assert_eq!(dev.ref_count(obj), kinds.len() as u32);
        // At most one HtoD copy can have happened, and only if the OUTERMOST
        // mapping requests it.
        let expected_htod = u64::from(kinds[0].copies_to_device());
        prop_assert_eq!(profile.htod_calls, expected_htod);

        for mt in kinds.iter().rev() {
            dev.map_exit(&mut mem, obj, *mt, 128, &mut profile);
        }
        prop_assert!(!dev.is_present(obj), "object must be released after balanced exits");
        // At most one DtoH copy, and only if the outermost mapping requests it.
        let expected_dtoh = u64::from(kinds[0].copies_to_host());
        prop_assert_eq!(profile.dtoh_calls, expected_dtoh);
    }

    /// The frontend round-trips arbitrary integer expressions built from a
    /// constrained grammar: parse(print(parse(e))) == parse(e) semantically
    /// (same constant value).
    #[test]
    fn expression_constant_folding_is_stable(a in 0i64..100, b in 1i64..50, c in 0i64..20) {
        let src = format!("int main() {{ return ({a} + {b} * {c}) - ({a} / {b}) + ({c} << 1); }}\n");
        let expected = (a + b * c) - (a / b) + (c << 1);
        let out = simulate_source(&src, SimConfig::default()).expect("run failed");
        prop_assert_eq!(out.exit_code, expected);
    }
}
