//! Property-based tests over the whole pipeline.
//!
//! Random (but well-formed) MiniC offload programs are generated from a
//! small grammar and pushed through parser, analysis, rewriting and the
//! offload simulator. The key invariants:
//!
//! * the transformed program still parses,
//! * OMPDart never changes program output (no stale-data bugs introduced),
//! * OMPDart never increases the number of bytes moved,
//! * the reference-count semantics of the device data environment hold for
//!   arbitrary nesting sequences.

use ompdart_core::pipeline::Stage;
use ompdart_core::plan::{
    CollapseSpec, EnterDataSpec, ExitDataSpec, FirstPrivateSpec, MapSpec, MappingPlan, Placement,
    Provenance, ProvenanceFact, UpdateDirection, UpdateSpec,
};
use ompdart_core::Ompdart;
use ompdart_frontend::ast::NodeId;
use ompdart_frontend::omp::MapType;
use ompdart_frontend::parser::parse_str;
use ompdart_frontend::source::Span;
use ompdart_sim::{
    simulate_source, DeviceEnv, Memory, ObjectKind, SimConfig, TransferProfile, Value,
};
use proptest::prelude::*;

/// A small statement menu used to build random host/device interleavings
/// around a single global array.
#[derive(Clone, Debug)]
enum Piece {
    HostInit(u8),
    HostAccumulate,
    KernelAdd(u8),
    KernelScale(u8),
    KernelInLoop { iters: u8, add: u8 },
    HostPrint,
}

fn piece_strategy() -> impl Strategy<Value = Piece> {
    prop_oneof![
        (0u8..5).prop_map(Piece::HostInit),
        Just(Piece::HostAccumulate),
        (1u8..4).prop_map(Piece::KernelAdd),
        (1u8..3).prop_map(Piece::KernelScale),
        ((2u8..5), (1u8..3)).prop_map(|(iters, add)| Piece::KernelInLoop { iters, add }),
        Just(Piece::HostPrint),
    ]
}

/// Render a random program. It always contains at least one kernel so the
/// tool has something to do, and always prints a final checksum.
fn render_program(pieces: &[Piece]) -> String {
    let mut body = String::new();
    for piece in pieces {
        match piece {
            Piece::HostInit(v) => {
                body.push_str(&format!(
                    "  for (int i = 0; i < N; i++) data[i] = {v} + i % 3;\n"
                ));
            }
            Piece::HostAccumulate => {
                body.push_str("  for (int i = 0; i < N; i++) checksum += data[i];\n");
            }
            Piece::KernelAdd(v) => {
                body.push_str(&format!(
                    "  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) data[i] += {v};\n"
                ));
            }
            Piece::KernelScale(v) => {
                body.push_str(&format!(
                    "  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) data[i] = data[i] * {v} + 1;\n"
                ));
            }
            Piece::KernelInLoop { iters, add } => {
                body.push_str(&format!(
                    "  for (int it = 0; it < {iters}; it++) {{\n    #pragma omp target teams distribute parallel for\n    for (int i = 0; i < N; i++) data[i] += {add};\n  }}\n"
                ));
            }
            Piece::HostPrint => {
                body.push_str("  printf(\"probe %d\\n\", data[7] + checksum);\n");
            }
        }
    }
    format!(
        "#define N 48\nint data[N];\nint main() {{\n  int checksum = 0;\n{body}  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) data[i] += 1;\n  for (int i = 0; i < N; i++) checksum += data[i];\n  printf(\"final %d\\n\", checksum);\n  return 0;\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Generators for arbitrary (well-formed) MappingPlans
// ---------------------------------------------------------------------------

fn var_name(i: u8) -> String {
    format!("v{i}")
}

fn provenance_strategy() -> impl Strategy<Value = Provenance> {
    (
        0usize..Stage::ALL.len(),
        0usize..ProvenanceFact::all().len(),
        // 0 = no span; otherwise a span at (n, n + 7).
        0u32..100,
        0u8..4,
    )
        .prop_map(|(stage, fact, span_start, detail)| Provenance {
            stage: Stage::ALL[stage],
            fact: ProvenanceFact::all()[fact],
            span: if span_start == 0 {
                None
            } else {
                Some(Span::new(span_start, span_start + 7))
            },
            detail: match detail {
                0 => String::new(),
                1 => "plain detail".to_string(),
                2 => "quotes \" and \\ backslashes\nand newlines".to_string(),
                _ => "unicode: π ≈ 3, done".to_string(),
            },
        })
}

fn section_strategy() -> impl Strategy<Value = Option<String>> {
    (0u8..4).prop_map(|v| match v {
        0 => None,
        1 => Some("n".to_string()),
        2 => Some("rows * cols".to_string()),
        _ => Some("0".to_string()), // degenerate bound: renders as `[:]`
    })
}

fn map_spec_strategy() -> impl Strategy<Value = MapSpec> {
    (
        (0u8..8),
        (0u8..4),
        section_strategy(),
        provenance_strategy(),
    )
        .prop_map(|(var, mt, section_length, provenance)| MapSpec {
            var: var_name(var),
            map_type: match mt {
                0 => MapType::To,
                1 => MapType::From,
                2 => MapType::ToFrom,
                _ => MapType::Alloc,
            },
            section_length,
            provenance,
        })
}

fn update_spec_strategy() -> impl Strategy<Value = UpdateSpec> {
    ((0u8..8), (0u32..64), (0u8..4), provenance_strategy()).prop_map(
        |(var, anchor, bits, provenance)| UpdateSpec {
            var: var_name(var),
            direction: if bits & 1 == 0 {
                UpdateDirection::To
            } else {
                UpdateDirection::From
            },
            anchor: NodeId(anchor),
            placement: if bits & 2 == 0 {
                Placement::Before
            } else {
                Placement::After
            },
            section_length: None,
            provenance,
        },
    )
}

fn firstprivate_strategy() -> impl Strategy<Value = FirstPrivateSpec> {
    ((0u8..8), (0u32..64), provenance_strategy()).prop_map(|(var, kernel, provenance)| {
        FirstPrivateSpec {
            kernel: NodeId(kernel),
            var: var_name(var),
            provenance,
        }
    })
}

fn enter_spec_strategy() -> impl Strategy<Value = EnterDataSpec> {
    (
        (0u8..8),
        (0u8..2),
        (0u32..64),
        (0u8..2),
        section_strategy(),
        provenance_strategy(),
    )
        .prop_map(
            |(var, mt, anchor, place, section_length, provenance)| EnterDataSpec {
                var: var_name(var),
                map_type: if mt == 0 { MapType::To } else { MapType::Alloc },
                anchor: NodeId(anchor),
                placement: if place == 0 {
                    Placement::Before
                } else {
                    Placement::After
                },
                section_length,
                provenance,
            },
        )
}

fn exit_spec_strategy() -> impl Strategy<Value = ExitDataSpec> {
    (
        (0u8..8),
        (0u8..3),
        (0u32..64),
        (0u8..2),
        section_strategy(),
        provenance_strategy(),
    )
        .prop_map(
            |(var, mt, anchor, place, section_length, provenance)| ExitDataSpec {
                var: var_name(var),
                map_type: match mt {
                    0 => MapType::From,
                    1 => MapType::Delete,
                    _ => MapType::Release,
                },
                anchor: NodeId(anchor),
                placement: if place == 0 {
                    Placement::Before
                } else {
                    Placement::After
                },
                section_length,
                provenance,
            },
        )
}

fn collapse_spec_strategy() -> impl Strategy<Value = CollapseSpec> {
    ((0u32..64), (2u32..6), provenance_strategy()).prop_map(|(kernel, depth, provenance)| {
        CollapseSpec {
            kernel: NodeId(kernel),
            depth,
            provenance,
        }
    })
}

fn plan_strategy() -> impl Strategy<Value = MappingPlan> {
    (
        proptest::collection::vec(map_spec_strategy(), 0..5),
        proptest::collection::vec(update_spec_strategy(), 0..5),
        proptest::collection::vec(firstprivate_strategy(), 0..4),
        proptest::collection::vec(enter_spec_strategy(), 0..4),
        proptest::collection::vec(exit_spec_strategy(), 0..4),
        proptest::collection::vec(collapse_spec_strategy(), 0..3),
        (0u32..3, 0u32..200),
    )
        .prop_map(
            |(maps, updates, firstprivate, enter_data, exit_data, collapses, (shape, base))| {
                MappingPlan {
                    function: format!("fn_{base}"),
                    region_start: if shape == 0 { None } else { Some(NodeId(base)) },
                    region_end: if shape == 0 {
                        None
                    } else {
                        Some(NodeId(base + 9))
                    },
                    attach_to_kernel: if shape == 2 {
                        Some(NodeId(base + 1))
                    } else {
                        None
                    },
                    kernels: (0..shape).map(|k| NodeId(base + k)).collect(),
                    maps,
                    updates,
                    firstprivate,
                    enter_data,
                    exit_data,
                    collapses,
                }
            },
        )
}

/// True when `needle` is a (byte-)subsequence of `haystack`: the pure
/// insertion invariant of the rewriter — everything of the original text
/// survives, in order.
fn is_subsequence(needle: &[u8], haystack: &[u8]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|b| it.any(|h| h == b))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Rewriting generated sources — including ones carrying multibyte
    /// UTF-8 in comments before and between the target loops — never
    /// panics, and because the rewriter only ever *inserts*, the original
    /// text is always a subsequence of the output.
    #[test]
    fn rewriting_is_pure_insertion_and_never_panics(
        pieces in proptest::collection::vec(piece_strategy(), 1..6),
        decor in 0u8..8,
    ) {
        let mut src = render_program(&pieces);
        // Sprinkle non-ASCII comments into the environment and the body:
        // every span downstream of one is displaced by non-char-boundary
        // byte offsets.
        if decor & 1 != 0 {
            src = format!("// café ≤ ∞ λ — entête\n{src}");
        }
        if decor & 2 != 0 {
            src = src.replacen(
                "int checksum = 0;",
                "int checksum = 0; // ∑ ≥ 0 ✓",
                1,
            );
        }
        if decor & 4 != 0 {
            src = src.replacen("#define N 48", "#define N 48 // größe", 1);
        }
        let analysis = match Ompdart::builder().build().analyze("utf8.c", &src) {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(format!("analysis failed: {e}\n{src}"))),
        };
        let out = analysis.rewritten_source();
        prop_assert!(
            is_subsequence(src.as_bytes(), out.as_bytes()),
            "rewrite dropped or reordered original text\noriginal:\n{src}\noutput:\n{out}"
        );
        prop_assert!(std::str::from_utf8(out.as_bytes()).is_ok());
        let (_f, reparsed) = parse_str("utf8_out.c", out);
        prop_assert!(reparsed.is_ok(), "transformed program failed to parse:\n{out}");
    }

    /// Incremental re-analysis after an arbitrary one-function edit agrees
    /// byte for byte with a cold analysis of the edited source.
    #[test]
    fn incremental_reanalysis_agrees_with_cold(
        pieces in proptest::collection::vec(piece_strategy(), 1..5),
        extra in 1u8..4,
    ) {
        let src = render_program(&pieces);
        let session = ompdart_core::AnalysisSession::new();
        if session.analyze("inc.c", &src).is_err() {
            return Err(TestCaseError::reject("base program failed to analyze"));
        }
        // Edit main's body by appending more kernel work.
        let edited = src.replacen(
            "  #pragma omp target teams distribute parallel for\n",
            &format!(
                "  for (int e = 0; e < {extra}; e++) data[e] += {extra};\n  #pragma omp target teams distribute parallel for\n"
            ),
            1,
        );
        prop_assert!(edited != src);
        let incremental = match session.analyze("inc.c", &edited) {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(format!("incremental analysis failed: {e}\n{edited}"))),
        };
        let cold = ompdart_core::AnalysisSession::new();
        let fresh = cold.analyze("inc.c", &edited).unwrap();
        prop_assert_eq!(&fresh.rewrite.source, &incremental.rewrite.source);
        prop_assert_eq!(&fresh.plans.plans, &incremental.plans.plans);
    }

    /// Unstructured lifetimes: for arbitrary generated programs, planning
    /// with `--lifetimes` (enter/exit data at phase boundaries, collapse on
    /// perfect nests) keeps the host-visible output byte-identical and
    /// never moves more data than the implicit mappings.
    #[test]
    fn lifetimes_mode_preserves_semantics(pieces in proptest::collection::vec(piece_strategy(), 1..6)) {
        let src = render_program(&pieces);
        let analysis = match Ompdart::builder().lifetimes(true).build().analyze("lt.c", &src) {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(format!("lifetimes analysis failed: {e}\n{src}"))),
        };
        let transformed = analysis.rewritten_source();
        let (_f, reparsed) = parse_str("lt_out.c", transformed);
        prop_assert!(reparsed.is_ok(), "transformed program failed to parse:\n{transformed}");
        prop_assert!(analysis.plans().iter().all(|p| p.fully_justified()),
            "unjustified lifetime construct in plans for:\n{src}");
        // Lifetime placement is all-or-nothing per function: a plan that
        // placed enter/exit specs holds no structured maps.
        for plan in analysis.plans() {
            if !plan.enter_data.is_empty() || !plan.exit_data.is_empty() {
                prop_assert!(plan.maps.is_empty(),
                    "plan mixes structured maps with lifetime specs:\n{plan:#?}");
            }
        }
        let before = simulate_source(&src, SimConfig::default()).expect("baseline failed");
        let after = simulate_source(transformed, SimConfig::default())
            .expect("lifetimes program failed");
        prop_assert_eq!(&before.output, &after.output,
            "lifetimes placement changed output\noriginal:\n{src}\ntransformed:\n{transformed}");
        prop_assert!(after.profile.total_bytes() <= before.profile.total_bytes(),
            "lifetimes placement increased data movement ({} -> {})\n{transformed}",
            before.profile.total_bytes(), after.profile.total_bytes());
    }

    /// With lifetimes on, incremental re-analysis after a one-function edit
    /// (which relocates enter/exit/collapse specs onto the fresh parse's
    /// node ids) agrees byte for byte — rewrite and full plan set — with a
    /// cold analysis of the edited source.
    #[test]
    fn lifetimes_incremental_agrees_with_cold(
        pieces in proptest::collection::vec(piece_strategy(), 1..5),
        extra in 1u8..4,
    ) {
        let mut options = ompdart_core::OmpDartOptions::default();
        options.dataflow.lifetimes = true;
        let src = render_program(&pieces);
        let session = ompdart_core::AnalysisSession::with_options(options);
        if session.analyze("lt_inc.c", &src).is_err() {
            return Err(TestCaseError::reject("base program failed to analyze"));
        }
        let edited = src.replacen(
            "  #pragma omp target teams distribute parallel for\n",
            &format!(
                "  for (int e = 0; e < {extra}; e++) data[e] += {extra};\n  #pragma omp target teams distribute parallel for\n"
            ),
            1,
        );
        prop_assert!(edited != src);
        let incremental = match session.analyze("lt_inc.c", &edited) {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(format!("incremental lifetimes analysis failed: {e}\n{edited}"))),
        };
        let cold = ompdart_core::AnalysisSession::with_options(options);
        let fresh = cold.analyze("lt_inc.c", &edited).unwrap();
        prop_assert_eq!(&fresh.rewrite.source, &incremental.rewrite.source);
        prop_assert_eq!(&fresh.plans.plans, &incremental.plans.plans);
    }

    /// The versioned JSON serialization is the identity under round-trip
    /// for arbitrary generated plans: `from_json(to_json(p)) == p`, both
    /// per plan and for whole documents.
    #[test]
    fn plan_json_round_trip_is_identity(plans in proptest::collection::vec(plan_strategy(), 1..4)) {
        for plan in &plans {
            let json = plan.to_json();
            let back = match MappingPlan::from_json(&json) {
                Ok(p) => p,
                Err(e) => return Err(TestCaseError::fail(format!("from_json failed: {e}\n{json}"))),
            };
            prop_assert_eq!(&back, plan, "single-plan round trip diverged:\n{}", json);
            // Serialization is deterministic: a second trip is stable.
            prop_assert_eq!(back.to_json(), json);
        }
        let doc = ompdart_core::plans_to_json(&plans);
        let back = match ompdart_core::plans_from_json(&doc) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("document parse failed: {e}\n{doc}"))),
        };
        prop_assert_eq!(back, plans, "document round trip diverged");
    }

    /// Transformation preserves semantics and never moves more data.
    #[test]
    fn transformation_preserves_semantics(pieces in proptest::collection::vec(piece_strategy(), 1..6)) {
        let src = render_program(&pieces);
        let (_file, parsed) = parse_str("random.c", &src);
        prop_assert!(parsed.is_ok(), "generated program failed to parse:\n{src}");

        let analysis = match Ompdart::builder().build().analyze("random.c", &src) {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(format!("analysis failed: {e}\n{src}"))),
        };
        let transformed = analysis.rewritten_source();

        // The transformed source must still be a valid program.
        let (_f2, reparsed) = parse_str("random_out.c", transformed);
        prop_assert!(reparsed.is_ok(), "transformed program failed to parse:\n{transformed}");

        // Every construct must justify itself (the IR acceptance bar).
        prop_assert!(analysis.plans().iter().all(|p| p.fully_justified()),
            "unjustified construct in plans for:\n{src}");

        let before = simulate_source(&src, SimConfig::default()).expect("baseline failed");
        let after = simulate_source(transformed, SimConfig::default())
            .expect("transformed program failed");
        prop_assert_eq!(&before.output, &after.output,
            "output changed\noriginal:\n{src}\ntransformed:\n{transformed}");
        prop_assert!(after.profile.total_bytes() <= before.profile.total_bytes(),
            "transformation increased data movement ({} -> {})\n{transformed}",
            before.profile.total_bytes(), after.profile.total_bytes());
        prop_assert!(after.profile.total_calls() <= before.profile.total_calls());
    }

    /// Device data-environment reference counting: for an arbitrary sequence
    /// of nested map types, data is copied to the device only on the 0->1
    /// transition and back only on the 1->0 transition, and presence ends
    /// balanced.
    #[test]
    fn device_env_reference_counting(map_types in proptest::collection::vec(0u8..4, 1..8)) {
        let to_type = |v: u8| match v {
            0 => MapType::To,
            1 => MapType::From,
            2 => MapType::ToFrom,
            _ => MapType::Alloc,
        };
        let mut mem = Memory::new();
        let obj = mem.alloc("a", ObjectKind::Array { dims: vec![16] }, 8, true);
        for i in 0..16 {
            mem.write(obj, i, Value::Double(i as f64));
        }
        let mut dev = DeviceEnv::new();
        let mut profile = TransferProfile::default();
        let kinds: Vec<MapType> = map_types.iter().map(|v| to_type(*v)).collect();

        // Enter all mappings (nested), then exit in reverse order.
        for mt in &kinds {
            dev.map_enter(&mem, obj, *mt, 128, &mut profile);
        }
        prop_assert_eq!(dev.ref_count(obj), kinds.len() as u32);
        // At most one HtoD copy can have happened, and only if the OUTERMOST
        // mapping requests it.
        let expected_htod = u64::from(kinds[0].copies_to_device());
        prop_assert_eq!(profile.htod_calls, expected_htod);

        for mt in kinds.iter().rev() {
            dev.map_exit(&mut mem, obj, *mt, 128, &mut profile);
        }
        prop_assert!(!dev.is_present(obj), "object must be released after balanced exits");
        // At most one DtoH copy, and only if the outermost mapping requests it.
        let expected_dtoh = u64::from(kinds[0].copies_to_host());
        prop_assert_eq!(profile.dtoh_calls, expected_dtoh);
    }

    /// The frontend round-trips arbitrary integer expressions built from a
    /// constrained grammar: parse(print(parse(e))) == parse(e) semantically
    /// (same constant value).
    #[test]
    fn expression_constant_folding_is_stable(a in 0i64..100, b in 1i64..50, c in 0i64..20) {
        let src = format!("int main() {{ return ({a} + {b} * {c}) - ({a} / {b}) + ({c} << 1); }}\n");
        let expected = (a + b * c) - (a / b) + (c << 1);
        let out = simulate_source(&src, SimConfig::default()).expect("run failed");
        prop_assert_eq!(out.exit_code, expected);
    }
}

// ---------------------------------------------------------------------------
// Whole-program link stage: arbitrary splits agree with the concatenation
// ---------------------------------------------------------------------------

/// What one generated helper function does; every variant touches globals
/// (and possibly calls an earlier helper) so splits produce real cross-unit
/// summary and liveness dependencies.
#[derive(Clone, Copy, Debug)]
enum HelperKind {
    HostFill(u8),
    KernelAdd(u8),
    KernelScale(u8),
    HostSum,
}

fn helper_kind_strategy() -> impl Strategy<Value = HelperKind> {
    prop_oneof![
        (0u8..4).prop_map(HelperKind::HostFill),
        (1u8..4).prop_map(HelperKind::KernelAdd),
        (1u8..3).prop_map(HelperKind::KernelScale),
        Just(HelperKind::HostSum),
    ]
}

/// The guarded shared header every generated unit carries: the split
/// concatenation stays a well-formed single translation unit.
fn program_header(helper_count: usize) -> String {
    let mut h = String::from(
        "#ifndef GEN_H\n#define GEN_H\n#define N 40\nextern double field[N];\nextern double acc;\n",
    );
    for i in 0..helper_count {
        h.push_str(&format!("void h{i}();\n"));
    }
    h.push_str("#endif\n");
    h
}

/// Render helper `i`. `call_prev` additionally calls `h{i-1}`, creating
/// call chains that cross unit boundaries under most splits.
fn render_helper(i: usize, kind: HelperKind, call_prev: bool) -> String {
    let mut body = String::new();
    match kind {
        HelperKind::HostFill(v) => {
            body.push_str(&format!(
                "  for (int i = 0; i < N; i++) field[i] = {v} + i % 5;\n"
            ));
        }
        HelperKind::KernelAdd(v) => {
            body.push_str(&format!(
                "  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) field[i] += {v};\n"
            ));
        }
        HelperKind::KernelScale(v) => {
            body.push_str(&format!(
                "  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) field[i] = field[i] * {v} + 1.0;\n"
            ));
        }
        HelperKind::HostSum => {
            body.push_str("  for (int i = 0; i < N; i++) acc = acc + field[i];\n");
        }
    }
    if call_prev && i > 0 {
        body.push_str(&format!("  h{}();\n", i - 1));
    }
    format!("void h{i}() {{\n{body}}}\n")
}

/// Split the generated functions into `k` units at positions driven by
/// `cuts`; each unit carries the shared header, the globals live in the
/// first unit, `main` in the last.
fn split_units(
    header: &str,
    functions: &[String],
    cuts: u64,
    units_wanted: usize,
) -> Vec<(String, String)> {
    let n = functions.len();
    let k = units_wanted.clamp(1, n);
    // Assign each function to a unit: a monotone map derived from `cuts`.
    let mut assignment = Vec::with_capacity(n);
    let mut unit = 0usize;
    for (i, _) in functions.iter().enumerate() {
        let remaining_funcs = n - i;
        let remaining_units = k - unit - 1;
        let advance =
            remaining_units > 0 && (remaining_funcs <= remaining_units || (cuts >> i) & 1 == 1);
        assignment.push(unit);
        if advance {
            unit += 1;
        }
    }
    let used = assignment.last().copied().unwrap_or(0) + 1;
    let mut out: Vec<(String, String)> = (0..used)
        .map(|u| {
            let mut text = header.to_string();
            if u == 0 {
                text.push_str("double field[N];\ndouble acc;\n");
            }
            (format!("gen_unit{u}.c"), text)
        })
        .collect();
    for (func, unit) in functions.iter().zip(&assignment) {
        out[*unit].1.push_str(func);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// For any split of a generated multi-function program into k units,
    /// linked whole-program analysis rewrites byte-identically to a
    /// single-unit analysis of the concatenated unit sources — and no
    /// intra-program call ever falls back to the pessimistic assumption.
    #[test]
    fn any_program_split_agrees_with_concatenation(
        kinds in proptest::collection::vec(helper_kind_strategy(), 2..6),
        call_mask in 0u64..256,
        cuts in 0u64..256,
        units_wanted in 1usize..4,
    ) {
        let helper_count = kinds.len();
        let header = program_header(helper_count);
        let mut functions: Vec<String> = kinds
            .iter()
            .enumerate()
            .map(|(i, kind)| render_helper(i, *kind, (call_mask >> i) & 1 == 1))
            .collect();
        let mut main_body = String::new();
        for i in 0..helper_count {
            main_body.push_str(&format!("  h{i}();\n"));
        }
        functions.push(format!(
            "int main() {{\n{main_body}  printf(\"%f %f\\n\", acc, field[3]);\n  return 0;\n}}\n"
        ));

        let units = split_units(&header, &functions, cuts, units_wanted);
        let concat: String = units.iter().map(|(_, s)| s.as_str()).collect();

        let program = match ompdart_core::ProgramDriver::new().analyze_program(&units) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("link failed: {e}\n{concat}"))),
        };
        let cold = match ompdart_core::AnalysisSession::new().analyze("gen_concat.c", &concat) {
            Ok(a) => a,
            Err(e) => return Err(TestCaseError::fail(format!("concat analysis failed: {e}\n{concat}"))),
        };
        let linked: String = program.units.iter().map(|u| u.rewrite.source.as_str()).collect();
        prop_assert_eq!(
            &linked, &cold.rewrite.source,
            "linked != concatenated for split {:?}\n{}", cuts, concat
        );
        prop_assert_eq!(program.stats().unknown_callee_fallbacks, 0);
    }
}

// ---------------------------------------------------------------------------
// SCC-parallel link fixed point: arbitrary call graphs agree everywhere
// ---------------------------------------------------------------------------

/// The guarded header for the arbitrary-call-graph generator.
fn graph_header(n: usize) -> String {
    let mut h =
        String::from("#ifndef SCCGEN_H\n#define SCCGEN_H\n#define N 40\nextern double field[N];\n");
    for i in 0..n {
        h.push_str(&format!("void g{i}();\n"));
    }
    h.push_str("#endif\n");
    h
}

/// Render graph function `i`: it always touches the shared global (so
/// summaries are non-trivial), optionally launches a kernel, and calls
/// every `j` whose bit is set in row `i` of the edge mask — including
/// self-loops, back edges, and mutual recursion, so the condensation has
/// genuinely cyclic components.
fn render_graph_fn(i: usize, n: usize, edges: u64, kernel: bool) -> String {
    let mut body = format!("  field[{}] += 1.0;\n", i % 40);
    if kernel {
        body.push_str(
            "  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) field[i] += 1.0;\n",
        );
    }
    for j in 0..n {
        if (edges >> (i * n + j)) & 1 == 1 {
            body.push_str(&format!("  if (field[{i}] > 100.0) {{ g{j}(); }}\n"));
        }
    }
    format!("void g{i}() {{\n{body}}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// For an arbitrary call graph — cycles, mutual recursion, and
    /// unit-private `static` helpers included — split across units:
    ///
    /// * the SCC-wavefront merged fixed point is byte-identical to the
    ///   sequential reference sweep (at any worker count),
    /// * the linked whole-program rewrite is byte-identical to analyzing
    ///   the concatenated single translation unit,
    /// * no intra-program call falls back to the pessimistic assumption.
    #[test]
    fn scc_parallel_link_matches_sequential_and_concatenation(
        n in 3usize..8,
        edges in 0u64..u64::MAX,
        kernels in 0u64..256,
        cuts in 0u64..256,
        units_wanted in 2usize..4,
    ) {
        let header = graph_header(n);
        let functions: Vec<String> = (0..n)
            .map(|i| render_graph_fn(i, n, edges, (kernels >> i) & 1 == 1))
            .collect();

        // Assign the graph functions to units (monotone split from `cuts`).
        let k = units_wanted.clamp(1, n);
        let mut assignment = Vec::with_capacity(n);
        let mut unit = 0usize;
        for i in 0..n {
            let remaining_funcs = n - i;
            let remaining_units = k - unit - 1;
            let advance = remaining_units > 0
                && (remaining_funcs <= remaining_units || (cuts >> i) & 1 == 1);
            assignment.push(unit);
            if advance {
                unit += 1;
            }
        }
        let used = assignment.last().copied().unwrap_or(0) + 1;
        let mut units: Vec<(String, String)> = (0..used)
            .map(|u| {
                let mut text = header.clone();
                if u == 0 {
                    text.push_str("double field[N];\n");
                }
                // A unit-private `static` helper plus its in-unit caller:
                // the mangled `name@unit` path is on every split. Unique
                // names keep the concatenation a valid single unit.
                text.push_str(&format!(
                    "static void priv{u}() {{\n  field[1] += 2.0;\n}}\nvoid wrap{u}() {{\n  priv{u}();\n}}\n"
                ));
                (format!("scc_unit{u}.c"), text)
            })
            .collect();
        for (func, unit) in functions.iter().zip(&assignment) {
            units[*unit].1.push_str(func);
        }
        let mut main_body = String::new();
        for i in 0..n {
            main_body.push_str(&format!("  g{i}();\n"));
        }
        for u in 0..used {
            main_body.push_str(&format!("  wrap{u}();\n"));
        }
        units[used - 1].1.push_str(&format!(
            "int main() {{\n{main_body}  printf(\"%f\\n\", field[3]);\n  return 0;\n}}\n"
        ));
        let concat: String = units.iter().map(|(_, s)| s.as_str()).collect();

        // Linked (SCC-wavefront) analysis == concatenated single unit.
        let driver = ompdart_core::ProgramDriver::new();
        let program_analysis = match driver.analyze_program(&units) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("link failed: {e}\n{concat}"))),
        };
        let cold = match ompdart_core::AnalysisSession::new().analyze("scc_concat.c", &concat) {
            Ok(a) => a,
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "concat analysis failed: {e}\n{concat}"
                )))
            }
        };
        let linked: String = program_analysis
            .units
            .iter()
            .map(|u| u.rewrite.source.as_str())
            .collect();
        prop_assert_eq!(
            &linked, &cold.rewrite.source,
            "linked != concatenated for edges {:#x} cuts {:#x}\n{}", edges, cuts, concat
        );
        prop_assert_eq!(program_analysis.stats().unknown_callee_fallbacks, 0);

        // The merged fixed point: wavefront engine (several worker
        // counts) byte-identical to the sequential reference sweep.
        let options = ompdart_core::OmpDartOptions::default();
        let program = driver.link(&units).expect("relink of the same inputs");
        let sequential =
            ompdart_core::Program::propagate_merged_sequential(&program.units, &options);
        for threads in [1usize, 4] {
            let parallel =
                ompdart_core::Program::propagate_merged(&program.units, &options, threads);
            prop_assert!(
                parallel.same_summaries(&sequential),
                "parallel({threads}) != sequential for edges {:#x}\n{}", edges, concat
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Cold-path overhaul: edit rounds and thread counts never move the output
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// For any generated multi-unit program, the interned cold path, the
    /// identity-fast-path warm round, the dirty-cone edit round, and every
    /// link worker count produce byte-identical rewrites *and* identical
    /// plan JSON. A fresh driver analyzing the edited program cold is the
    /// oracle for the warm edit round.
    #[test]
    fn edit_rounds_and_thread_counts_preserve_rewrites_and_plan_json(
        kinds in proptest::collection::vec(helper_kind_strategy(), 2..6),
        call_mask in 0u64..256,
        cuts in 0u64..256,
        units_wanted in 2usize..4,
        threads in 1usize..5,
    ) {
        let helper_count = kinds.len();
        let header = program_header(helper_count);
        let mut functions: Vec<String> = kinds
            .iter()
            .enumerate()
            .map(|(i, kind)| render_helper(i, *kind, (call_mask >> i) & 1 == 1))
            .collect();
        let mut main_body = String::new();
        for i in 0..helper_count {
            main_body.push_str(&format!("  h{i}();\n"));
        }
        functions.push(format!(
            "int main() {{\n{main_body}  printf(\"%f %f\\n\", acc, field[3]);\n  return 0;\n}}\n"
        ));
        let units = split_units(&header, &functions, cuts, units_wanted);

        let outputs = |program: &ompdart_core::ProgramAnalysis| -> Vec<(String, String)> {
            program
                .units
                .iter()
                .map(|u| {
                    let a = ompdart_core::Analysis::from_unit(std::sync::Arc::clone(u));
                    (a.rewritten_source().to_string(), a.plans_json())
                })
                .collect()
        };

        let driver = ompdart_core::ProgramDriver::new().with_threads(threads);
        let cold = match driver.analyze_program(&units) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("cold link failed: {e}"))),
        };
        let cold_out = outputs(&cold);

        // Warm unchanged round: the identity fast path must not move a byte.
        let warm = driver.analyze_program(&units).unwrap();
        prop_assert_eq!(&outputs(&warm), &cold_out, "warm round moved the output");

        // Single-threaded oracle for the same inputs.
        let oracle = ompdart_core::ProgramDriver::new()
            .with_threads(1)
            .analyze_program(&units)
            .unwrap();
        prop_assert_eq!(&outputs(&oracle), &cold_out, "thread count moved the output");

        // Edit one unit's body, re-analyze warm (dirty-cone edit path),
        // and compare against a fresh cold analysis of the edited program.
        let mut edited = units.clone();
        let last = edited.len() - 1;
        edited[last].1.push_str("void gen_extra() { acc = acc + 1.0; }\n");
        let warm_edit = driver.analyze_program(&edited).unwrap();
        let cold_edit = ompdart_core::ProgramDriver::new()
            .with_threads(threads)
            .analyze_program(&edited)
            .unwrap();
        prop_assert_eq!(
            &outputs(&warm_edit), &outputs(&cold_edit),
            "edit round disagrees with cold analysis of the edited program"
        );
    }
}
