//! Compatibility pins for the deprecated pre-facade API.
//!
//! `OmpDart::transform_source`, the free `transform`, `OmpDart::analyze_unit`
//! and `AnalysisSession::transform` remain as thin `#[deprecated]` wrappers
//! over the `Ompdart` builder facade; these tests pin their behavior to the
//! new API byte for byte so the wrappers cannot silently drift. This is the
//! only place (outside the wrappers themselves) allowed to use them.
#![allow(deprecated)]

use ompdart_core::{
    transform, AnalysisSession, MappingPlan, OmpDart, OmpDartError, OmpDartOptions, Ompdart,
    RegionPlan,
};
use ompdart_frontend::diag::Diagnostics;
use ompdart_frontend::parser::parse_str;

const SRC: &str = "\
#define N 32
double a[N];
int main() {
  for (int it = 0; it < 4; it++) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < N; i++) a[i] += 1.0;
  }
  printf(\"%f\\n\", a[0]);
  return 0;
}
";

/// All three legacy entry points produce the same rewrite as the facade.
#[test]
fn legacy_wrappers_match_the_facade() {
    let facade = Ompdart::builder().build().analyze("demo.c", SRC).unwrap();

    let via_free = transform("demo.c", SRC).unwrap();
    assert_eq!(via_free.transformed_source, facade.rewritten_source());
    assert_eq!(via_free.stats, facade.stats());
    assert_eq!(&via_free.plans[..], facade.plans());

    let via_struct = OmpDart::new().transform_source("demo.c", SRC).unwrap();
    assert_eq!(via_struct.transformed_source, facade.rewritten_source());

    let via_session = AnalysisSession::new().transform("demo.c", SRC).unwrap();
    assert_eq!(via_session.transformed_source, facade.rewritten_source());
}

/// Legacy error types still surface through the wrappers.
#[test]
fn legacy_errors_are_preserved() {
    let err = transform("broken.c", "int main( { return 0; }\n").unwrap_err();
    assert!(matches!(err, OmpDartError::ParseFailed(_)));

    let mapped = "\
#define N 8
double a[N];
void f() {
  #pragma omp target data map(tofrom: a)
  {
    #pragma omp target
    for (int i = 0; i < N; i++) a[i] = i;
  }
}
";
    let err = OmpDart::new()
        .transform_source("mapped.c", mapped)
        .unwrap_err();
    assert!(matches!(err, OmpDartError::AlreadyMapped { .. }));
    let lenient = OmpDart::with_options(OmpDartOptions {
        reject_existing_mappings: false,
        ..OmpDartOptions::default()
    });
    assert!(lenient.transform_source("mapped.c", mapped).is_ok());
}

/// `analyze_unit` on a borrowed AST matches the facade's plans and stats.
#[test]
fn analyze_unit_matches_facade_plans() {
    let (_file, parsed) = parse_str("demo.c", SRC);
    assert!(parsed.is_ok());
    let mut diags = Diagnostics::new();
    let (plans, stats) = OmpDart::new().analyze_unit(&parsed.unit, &mut diags);

    let facade = Ompdart::builder().build().analyze("demo.c", SRC).unwrap();
    assert_eq!(&plans[..], facade.plans());
    assert_eq!(stats, facade.stats());
}

/// The old `RegionPlan` name remains a usable alias of `MappingPlan`.
#[test]
fn region_plan_alias_still_resolves() {
    let plan: RegionPlan = MappingPlan {
        function: "f".into(),
        ..Default::default()
    };
    let as_mapping: &MappingPlan = &plan;
    assert_eq!(as_mapping.construct_count(), 0);
}
