//! End-to-end tests of `ompdartd` — the concurrent analysis daemon.
//!
//! Covered here:
//! * response parity: a daemon `analyze` returns byte-identical rewritten
//!   sources (and render-identical plan documents) to the one-shot API;
//! * the program registry: two clients interleaving edits to two
//!   *different* programs stay warm — every warm round re-plans exactly
//!   the edited function and never cold-relinks;
//! * protocol robustness: oversized prefixes, invalid JSON, unknown
//!   request types, wrong versions, and truncated frames all produce
//!   structured errors (or a clean connection close) without killing the
//!   daemon or poisoning any program session;
//! * durable shutdown: a SIGTERM'd daemon drains, flushes its stores, and
//!   a restart over the same cache directory starts warm.
//!
//! Signal state is process-global, and the daemon binds real sockets, so
//! every test serializes on [`daemon_lock`].

use ompdart_core::plan::Json;
use ompdart_core::Ompdart;
use ompdart_server::daemon::{DaemonConfig, DaemonHandle, Endpoint};
use ompdart_server::registry::RegistryConfig;
use ompdart_server::{protocol, signal, Client, ClientError};
use ompdart_suite::lulesh_multifile;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn daemon_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A per-test scratch directory (unique per test name, wiped on entry).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ompdartd-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn spawn_daemon(socket: PathBuf, cache_dir: Option<PathBuf>) -> DaemonHandle {
    DaemonHandle::spawn(DaemonConfig {
        endpoint: Endpoint::Unix(socket),
        registry: RegistryConfig {
            cache_dir,
            ..RegistryConfig::default()
        },
        workers: 4,
        quiet: true,
    })
    .expect("daemon must bind its socket")
}

fn lulesh_units() -> Vec<(String, String)> {
    lulesh_multifile()
        .iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect()
}

fn stat(result: &Json, field: &str) -> i64 {
    result
        .get("request_stats")
        .and_then(|s| s.get(field))
        .and_then(Json::as_int)
        .unwrap_or(-1)
}

fn serves(result: &Json) -> Vec<String> {
    result
        .get("units")
        .and_then(Json::as_array)
        .map(|units| {
            units
                .iter()
                .filter_map(|u| u.get("serve").and_then(Json::as_str))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

/// Daemon responses are byte-identical to the one-shot API: same rewritten
/// sources, same plan documents; a repeat request is served cached; and a
/// `shutdown` request tears the daemon down cleanly (socket file removed).
#[test]
fn daemon_analyze_matches_one_shot_api_byte_for_byte() {
    let _guard = daemon_lock();
    let dir = scratch("parity");
    let socket = dir.join("d.sock");
    let handle = spawn_daemon(socket.clone(), None);
    let units = lulesh_units();

    let mut client = Client::connect(handle.endpoint()).expect("connect");
    let result = client.analyze_sources("lulesh", &units).expect("analyze");

    // One-shot reference: the same whole-program analysis, fresh session.
    let tool = Ompdart::builder().build();
    let reference = tool.analyze_program(&units).expect("direct analyze");

    let got = result.get("units").and_then(Json::as_array).unwrap();
    assert_eq!(got.len(), units.len());
    for (i, unit) in got.iter().enumerate() {
        assert_eq!(
            unit.get("rewritten_source").and_then(Json::as_str).unwrap(),
            reference.units[i].rewrite.source.as_str(),
            "unit {i} rewritten source must be byte-identical"
        );
        let direct_plans = Json::parse(&reference.units[i].plans_json()).unwrap();
        assert_eq!(
            unit.get("plans").unwrap().render(),
            direct_plans.render(),
            "unit {i} plan document must match"
        );
    }
    assert_eq!(
        result.get("link_passes").and_then(Json::as_int).unwrap(),
        reference.link_passes as i64
    );

    // Identical content again: everything cached, nothing re-planned.
    let again = client
        .analyze_sources("lulesh", &units)
        .expect("re-analyze");
    assert!(serves(&again).iter().all(|s| s == "cached"), "{again:?}");
    assert_eq!(stat(&again, "function_plan_misses"), 0);

    // `explain` hovers the provenance facts at a kernel-body access.
    let (name, source) = &units[2];
    let kernel_line = source
        .lines()
        .position(|l| l.contains("xd[i] += xdd[i] * 0.01;"))
        .expect("driver unit has the integration kernel")
        + 1;
    let hover = client
        .explain("lulesh", name, source, kernel_line as u32, 8)
        .expect("explain");
    let facts = hover.get("facts").and_then(Json::as_array).unwrap();
    assert!(
        !facts.is_empty(),
        "a kernel statement must carry provenance facts: {hover:?}"
    );
    for fact in facts {
        assert!(fact.get("fact").and_then(Json::as_str).is_some());
        assert!(fact.get("detail").and_then(Json::as_str).is_some());
    }

    client.shutdown().expect("shutdown request");
    handle.join();
    assert!(!socket.exists(), "socket file must be removed on shutdown");
}

/// Satellite: the program registry. Two clients interleave edit rounds to
/// two different programs concurrently; every warm round re-plans exactly
/// the one edited function (`function_plan_misses == 1`) with the reseed
/// bounded by the dirty cone — a cold relink would re-plan every function.
#[test]
fn interleaved_clients_on_two_programs_never_cold_relink() {
    let _guard = daemon_lock();
    let dir = scratch("registry");
    let handle = spawn_daemon(dir.join("d.sock"), None);
    let endpoint = handle.endpoint().clone();

    const ROUNDS: usize = 3;
    fn drive(
        endpoint: Endpoint,
        program: &str,
        edit_unit: usize,
        edit_at: &str,
    ) -> (i64, Vec<(i64, i64, Vec<String>)>) {
        let mut client = Client::connect(&endpoint).expect("connect");
        let mut units = lulesh_units();
        // Keyed content per program so alpha and beta are truly distinct
        // programs, not shared-content cache aliases.
        units[0].1 = format!("/* program {program} */\n{}", units[0].1);
        let cold = client.analyze_sources(program, &units).expect("cold");
        let cold_misses = stat(&cold, "function_plan_misses");
        let mut warm_stats = Vec::new();
        for round in 0..ROUNDS {
            // An interface-preserving body edit of one function.
            units[edit_unit].1 =
                units[edit_unit]
                    .1
                    .replacen(edit_at, &format!("/* r{round} */ {edit_at}"), 1);
            let warm = client.analyze_sources(program, &units).expect("warm");
            warm_stats.push((
                stat(&warm, "function_plan_misses"),
                stat(&warm, "relink_reseeded_functions"),
                serves(&warm),
            ));
        }
        (cold_misses, warm_stats)
    }

    // Two OS threads, two programs, two different edit sites, running
    // concurrently against one daemon.
    let (for_alpha, for_beta) = (endpoint.clone(), endpoint.clone());
    let alpha = std::thread::spawn(move || drive(for_alpha, "alpha", 1, "e[i] += (p[i] + q[i])"));
    let beta =
        std::thread::spawn(move || drive(for_beta, "beta", 0, "xdd[i] = fx[i] / nodalMass[i];"));
    let (alpha_cold, alpha_warm) = alpha.join().expect("alpha thread");
    let (beta_cold, beta_warm) = beta.join().expect("beta thread");

    for (program, cold_misses, warm) in [
        ("alpha", alpha_cold, &alpha_warm),
        ("beta", beta_cold, &beta_warm),
    ] {
        assert!(
            cold_misses > 1,
            "{program}: the cold link must plan the whole program"
        );
        for (round, (plan_misses, reseeded, serves)) in warm.iter().enumerate() {
            assert_eq!(
                *plan_misses, 1,
                "{program} round {round}: exactly the edited function re-plans \
                 (a cold relink would re-plan all {cold_misses}); serves={serves:?}"
            );
            assert!(
                (0..=2).contains(reseeded),
                "{program} round {round}: reseed must stay within the dirty cone"
            );
            assert!(
                serves.iter().any(|s| s.starts_with("planned")),
                "{program} round {round}: the edited unit must be re-planned: {serves:?}"
            );
            assert!(
                serves.iter().filter(|s| *s == "cached").count() >= serves.len() - 1,
                "{program} round {round}: untouched units must be cache-served: {serves:?}"
            );
        }
    }

    // Both programs are live in the registry, each with its own counters.
    let mut client = Client::connect(&endpoint).expect("connect");
    let stats = client.stats().expect("stats");
    let keys: Vec<&str> = stats
        .get("programs")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|p| p.get("program").and_then(Json::as_str))
        .collect();
    assert_eq!(keys, vec!["alpha", "beta"]);
    client.shutdown().expect("shutdown");
    handle.join();
}

/// Satellite: protocol robustness. Malformed input of every kind yields a
/// structured error — and afterwards the same daemon still serves a real
/// request on the same program, so nothing was poisoned.
#[test]
fn malformed_frames_and_requests_do_not_kill_the_daemon() {
    let _guard = daemon_lock();
    let dir = scratch("robust");
    let handle = spawn_daemon(dir.join("d.sock"), None);
    let endpoint = handle.endpoint().clone();
    let unit = vec![(
        "one.c".to_string(),
        "#define N 16\ndouble a[N];\nint main() {\n  for (int it = 0; it < 2; it++) {\n    #pragma omp target teams distribute parallel for\n    for (int i = 0; i < N; i++) a[i] += 1.0;\n  }\n  printf(\"%f\\n\", a[0]);\n  return 0;\n}\n"
            .to_string(),
    )];

    // Seed the program so later rounds can prove the session stayed warm.
    let mut seed = Client::connect(&endpoint).expect("connect");
    seed.analyze_sources("robust", &unit).expect("seed analyze");

    // Invalid JSON in a well-formed frame: bad_json, connection stays up.
    let mut client = Client::connect(&endpoint).expect("connect");
    let raw = client
        .raw_round_trip("this is not json")
        .expect("round trip");
    let response = Json::parse(&raw).expect("error response is JSON");
    assert_eq!(
        response
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_json")
    );
    // ... and the *same connection* still serves real work.
    let ok = client
        .analyze_sources("robust", &unit)
        .expect("still alive");
    assert_eq!(serves(&ok), vec!["cached".to_string()]);

    // Unknown request type: bad_request.
    let raw = client
        .raw_round_trip(r#"{"version": 1, "id": 9, "request": "transmogrify"}"#)
        .expect("round trip");
    let response = Json::parse(&raw).unwrap();
    assert_eq!(
        response
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_request")
    );
    assert_eq!(response.get("id").and_then(Json::as_int), Some(9));

    // Wrong protocol version: bad_request.
    let raw = client
        .raw_round_trip(r#"{"version": 99, "id": 10, "request": "stats"}"#)
        .expect("round trip");
    assert_eq!(
        Json::parse(&raw)
            .unwrap()
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_request")
    );

    // Oversized length prefix: structured bad_frame, then a hard close
    // (the stream cannot be re-synchronized).
    let mut conn = endpoint.connect().expect("connect raw");
    {
        use std::io::Write;
        conn.write_all(&u32::MAX.to_be_bytes()).unwrap();
        conn.flush().unwrap();
    }
    let response = protocol::read_frame(&mut conn).expect("bad_frame response");
    assert_eq!(
        Json::parse(&response)
            .unwrap()
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_frame")
    );
    assert!(
        matches!(
            protocol::read_frame(&mut conn),
            Err(protocol::FrameError::Closed)
        ),
        "the daemon must close after a framing violation"
    );

    // A truncated frame (half a length prefix, then disconnect) must not
    // take the daemon down either.
    {
        use std::io::Write;
        let mut conn = endpoint.connect().expect("connect raw");
        conn.write_all(&[0u8, 0]).unwrap();
        conn.flush().unwrap();
        drop(conn);
    }

    // After all of the abuse: a brand-new client gets a warm answer.
    let mut fresh = Client::connect(&endpoint).expect("connect");
    let ok = fresh
        .analyze_sources("robust", &unit)
        .expect("daemon alive");
    assert_eq!(serves(&ok), vec!["cached".to_string()]);
    fresh.shutdown().expect("shutdown");
    handle.join();
}

/// Satellite: the plan format version flows through the wire protocol. A
/// current plan document validates (and the response names the version);
/// an old-version document gets a structured `bad_request`, not a dead
/// daemon.
#[test]
fn check_plans_reports_version_and_rejects_old_documents() {
    let _guard = daemon_lock();
    let dir = scratch("plans");
    let handle = spawn_daemon(dir.join("d.sock"), None);
    let mut client = Client::connect(handle.endpoint()).expect("connect");

    // A genuine current-version document, straight from the one-shot API.
    let units = vec![(
        "k.c".to_string(),
        "#define N 8\ndouble a[N];\nint main() {\n  #pragma omp target teams distribute parallel for\n  for (int i = 0; i < N; i++) a[i] += 1.0;\n  printf(\"%f\\n\", a[0]);\n  return 0;\n}\n"
            .to_string(),
    )];
    let tool = Ompdart::builder().build();
    let reference = tool.analyze_program(&units).expect("direct analyze");
    let doc = reference.units[0].plans_json();

    let ok = client.check_plans(&doc).expect("current doc validates");
    assert_eq!(ok.get("valid").and_then(Json::as_bool), Some(true));
    assert_eq!(
        ok.get("format_version").and_then(Json::as_int),
        Some(i64::from(ompdart_core::plan::PLAN_FORMAT_VERSION)),
        "the response must name the plan format this build reads"
    );
    assert!(ok.get("plans").and_then(Json::as_int).unwrap_or(0) >= 1);

    // The same document stamped with the previous format version: a
    // structured bad_request naming both versions.
    let old = doc.replacen("\"version\": 2", "\"version\": 1", 1);
    assert_ne!(old, doc, "the rendered document must carry its version");
    let err = client.check_plans(&old).expect_err("v1 must be rejected");
    match err {
        ClientError::Remote { kind, message } => {
            assert_eq!(kind, "bad_request");
            assert!(
                message.contains("version 1") && message.contains("version 2"),
                "error must name both versions: {message}"
            );
        }
        other => panic!("expected a structured remote error, got {other:?}"),
    }

    // Missing `plans` field: bad_request, and the connection stays usable.
    let raw = client
        .raw_round_trip(r#"{"version": 1, "id": 77, "request": "check_plans"}"#)
        .expect("round trip");
    assert_eq!(
        Json::parse(&raw)
            .unwrap()
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_request")
    );
    let ok = client.check_plans(&doc).expect("connection still serves");
    assert_eq!(ok.get("valid").and_then(Json::as_bool), Some(true));

    client.shutdown().expect("shutdown");
    handle.join();
}

/// Satellite: durable shutdown. SIGTERM drains and flushes every program
/// store; a new daemon over the same cache directory serves the same
/// program from the persistent store without re-planning anything.
#[test]
fn sigterm_flushes_stores_and_a_restart_starts_warm() {
    let _guard = daemon_lock();
    let dir = scratch("sigterm");
    let cache = dir.join("cache");
    let units = lulesh_units();

    let handle = spawn_daemon(dir.join("d.sock"), Some(cache.clone()));
    let mut client = Client::connect(handle.endpoint()).expect("connect");
    let cold = client.analyze_sources("lulesh", &units).expect("cold");
    assert!(stat(&cold, "function_plan_misses") > 0);
    drop(client);

    // The real signal path: raise SIGTERM against the installed handler
    // (exactly what an external `kill` delivers), then join the daemon's
    // drain-and-flush epilogue.
    signal::deliver(signal::SIGTERM);
    handle.join();
    assert!(cache.exists(), "the flushed store must be on disk");

    // A fresh daemon over the same cache directory: the program session
    // starts warm from the store — no function is re-planned.
    let restarted = spawn_daemon(dir.join("d2.sock"), Some(cache));
    let mut client = Client::connect(restarted.endpoint()).expect("connect");
    let warm = client.analyze_sources("lulesh", &units).expect("warm");
    assert_eq!(
        stat(&warm, "function_plan_misses"),
        0,
        "restart must serve from the persistent store: {warm:?}"
    );
    assert!(
        serves(&warm).iter().all(|s| s == "store" || s == "cached"),
        "every unit must come from the store: {:?}",
        serves(&warm)
    );
    client.shutdown().expect("shutdown");
    restarted.join();
}

/// Satellite: warm whole-program rounds report the identity fast path in
/// the wire protocol. The repeat request's `request_stats.fast_path_hits`
/// equals the unit count, and the `stats` verb's per-program entry carries
/// the additive `profile` object with the same `fast_path_units` — `null`
/// before the program's first whole-program request would have been.
#[test]
fn warm_rounds_report_fast_path_hits_over_the_wire() {
    let _guard = daemon_lock();
    let dir = scratch("fastpath");
    let socket = dir.join("d.sock");
    let handle = spawn_daemon(socket.clone(), None);
    let units = lulesh_units();

    let mut client = Client::connect(handle.endpoint()).expect("connect");
    let cold = client.analyze_sources("lulesh", &units).expect("cold");
    assert_eq!(
        stat(&cold, "fast_path_hits"),
        0,
        "a cold round has no previous round to fast-path from: {cold:?}"
    );

    let warm = client.analyze_sources("lulesh", &units).expect("warm");
    assert_eq!(
        stat(&warm, "fast_path_hits"),
        units.len() as i64,
        "a warm unchanged round must serve every unit via the fast path: {warm:?}"
    );
    assert_eq!(stat(&warm, "function_plan_misses"), 0);
    assert!(serves(&warm).iter().all(|s| s == "cached"));

    // The stats verb surfaces the last round's driver profile.
    let stats = client.stats().expect("stats");
    let program = stats
        .get("programs")
        .and_then(Json::as_array)
        .and_then(|p| p.first())
        .expect("one live program");
    let profile = program.get("profile").expect("profile field present");
    assert_eq!(
        profile.get("fast_path_units").and_then(Json::as_int),
        Some(units.len() as i64),
        "the profile must record the fast-path round: {profile:?}"
    );
    assert_eq!(
        profile.get("units").and_then(Json::as_int),
        Some(units.len() as i64)
    );
    assert!(
        profile.get("total_us").and_then(Json::as_int).is_some(),
        "the profile must carry phase timings: {profile:?}"
    );
    // The warm round was an edit-path round, so the additive
    // `edit_profile` object carries its one-edit phase timings too.
    assert_eq!(profile.get("edit_path").and_then(Json::as_bool), Some(true));
    let edit_profile = program.get("edit_profile").expect("edit_profile field");
    assert_eq!(
        edit_profile.get("fast_path_units").and_then(Json::as_int),
        Some(units.len() as i64),
        "the edit profile must record the warm round: {edit_profile:?}"
    );
    assert!(
        edit_profile.get("total_us").and_then(Json::as_int).is_some(),
        "the edit profile must carry one-edit phase timings: {edit_profile:?}"
    );
    // Cumulative session counters also expose the fast path.
    assert_eq!(
        program
            .get("stats")
            .and_then(|s| s.get("fast_path_hits"))
            .and_then(Json::as_int),
        Some(units.len() as i64)
    );
    client.shutdown().expect("shutdown");
    handle.join();
}
